//! Sharded checker campaigns: the (app × scheme × window-chunk) grid fans
//! out across a fleet-style worker pool with deterministic,
//! worker-count-invariant results.
//!
//! Determinism is structural, mirroring `gecko_fleet::campaign`:
//!
//! * Work items are **fixed-size window chunks** derived only from the
//!   spec (never from the worker count), claimed from an atomic cursor.
//! * Each chunk carries its **own memo table**, so memo-hit counters do
//!   not depend on which worker explored a neighboring chunk.
//! * Per-chunk results are merged **in item order** after the pool joins;
//!   shrinking runs after the merge, on the first violation per pair.
//!
//! The pool itself is `gecko_fleet`'s supervised pool: a chunk that
//! panics is quarantined into a structured [`RunFailure`] instead of
//! killing the campaign, budgets and bounded retry apply per chunk, and a
//! [`Journal`] of completed chunks lets a killed campaign resume
//! bit-exactly. Checker journal lines use their own vocabulary
//! (`chunk_done`) on top of the fleet's line format; a journaled
//! violation stores only its schedule and outcome — the
//! [`Blame`](crate::verdict::Blame) context is rebuilt on resume by
//! [`crate::shrink::replay`], which is deterministic.

use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use gecko_apps::App;
use gecko_compiler::{fingerprint_program, CompileError, CompileOptions, ProgramFingerprints};
use gecko_fleet::journal::{decode_header, encode_header, field, parse_flat_json, JsonScalar};
use gecko_fleet::telemetry::json_kv;
use gecko_fleet::{
    quarantine, run_supervised, AttemptFail, ChaosSink, ChaosSpec, Event, FleetCounters, Frontier,
    Journal, NullSink, PoolConfig, ProgramCache, RunFailure, SupervisorSpec, TelemetrySink,
};
use gecko_sim::device::CompiledApp;
use gecko_sim::{SchemeKind, Simulator, Value};
use gecko_store::Verdict;

use crate::explore::{
    check_windows, check_windows_resumed, golden_steps, ExploreConfig, GoldenError, NullObserver,
    SlabPrefix,
};
use crate::memostore::{MemoStore, SlabWriter};
use crate::shrink::{replay, shrink_schedule};
use crate::verdict::{CheckStats, InjectionKind, PairReport, PlannedInjection, Violation};
use crate::Outcome;

thread_local! {
    /// Worker-local simulator carry: `(pair, golden position, simulator)`
    /// left behind by the last chunk this worker completed. When the same
    /// worker claims the adjacent chunk of the same pair — the common case
    /// under the frontier's contiguous leases — the carried simulator is
    /// already positioned on the chunk's first window and the O(start)
    /// re-advance is skipped. Pure wall-clock: the golden-trace state at a
    /// step is unique, so a carried simulator is bit-identical to a fresh
    /// one advanced to the same step, and `CheckStats` never count the
    /// repositioning either way.
    static SIM_CARRY: RefCell<Option<(usize, u64, Simulator)>> = const { RefCell::new(None) };
}

/// What to check: the (apps × schemes) grid plus exploration policy.
#[derive(Debug, Clone)]
pub struct CheckSpec {
    /// Campaign name (telemetry label).
    pub name: String,
    /// Applications to check. Owned `App` values, not names, so custom
    /// programs (regression counterexamples, WAR probes) check the same
    /// way as the bundled benchmarks; see [`CheckSpec::app_names`].
    pub apps: Vec<App>,
    /// Schemes to check each app under.
    pub schemes: Vec<SchemeKind>,
    /// Compiler options for the instrumented schemes.
    pub compile: CompileOptions,
    /// Exploration policy.
    pub explore: ExploreConfig,
    /// Windows per work item. Fixed-size chunks keep results independent
    /// of the worker count.
    pub chunk_windows: u64,
    /// Shrink the first violation of each failing pair.
    pub shrink: bool,
    /// Replay budget for the shrinker, per pair.
    pub shrink_budget: u64,
}

impl CheckSpec {
    /// A spec with the default exploration policy and no grid.
    pub fn new(name: impl Into<String>) -> CheckSpec {
        CheckSpec {
            name: name.into(),
            apps: Vec::new(),
            schemes: Vec::new(),
            compile: CompileOptions::default(),
            explore: ExploreConfig::default(),
            chunk_windows: 512,
            shrink: true,
            shrink_budget: 200,
        }
    }

    /// Builder: adds apps.
    pub fn apps(mut self, apps: impl IntoIterator<Item = App>) -> CheckSpec {
        self.apps.extend(apps);
        self
    }

    /// Builder: adds bundled apps by name.
    ///
    /// # Errors
    ///
    /// [`CheckError::UnknownApp`] for a name `gecko_apps` does not know.
    pub fn app_names(mut self, names: &[&str]) -> Result<CheckSpec, CheckError> {
        for name in names {
            let app = gecko_apps::app_by_name(name)
                .ok_or_else(|| CheckError::UnknownApp(name.to_string()))?;
            self.apps.push(app);
        }
        Ok(self)
    }

    /// Builder: adds schemes.
    pub fn schemes(mut self, schemes: impl IntoIterator<Item = SchemeKind>) -> CheckSpec {
        self.schemes.extend(schemes);
        self
    }

    /// Builder: replaces the exploration policy.
    pub fn explore(mut self, explore: ExploreConfig) -> CheckSpec {
        self.explore = explore;
        self
    }

    /// Builder: replaces the chunk size (clamped to ≥ 1).
    pub fn chunk_windows(mut self, windows: u64) -> CheckSpec {
        self.chunk_windows = windows.max(1);
        self
    }

    /// FNV-1a fingerprint of everything a resumed journal must agree on:
    /// the grid (via the chunk run keys), the exploration policy, the
    /// compile options, and the shrink policy.
    fn fingerprint(&self, run_keys: &[u64]) -> u64 {
        let e = &self.explore;
        let mut h = FNV_OFFSET;
        h = fnv_str(h, &self.name);
        h = fnv_u64(h, run_keys.len() as u64);
        for &key in run_keys {
            h = fnv_u64(h, key);
        }
        h = fnv_u64(h, e.depth as u64);
        h = fnv_u64(h, e.power_failure_windows as u64);
        h = fnv_u64(h, e.emi_windows as u64);
        h = fnv_u64(h, e.fault_windows as u64);
        h = fnv_u64(h, e.refail_horizon);
        h = fnv_u64(h, e.memoize as u64);
        h = fnv_u64(h, e.max_windows.unwrap_or(u64::MAX));
        h = fnv_u64(h, e.seed);
        h = fnv_u64(h, e.fast_forward as u64);
        h = fnv_u64(h, self.compile.wcet_budget_cycles.unwrap_or(u64::MAX));
        h = fnv_u64(h, self.compile.prune as u64);
        h = fnv_u64(h, self.compile.max_slice_insts as u64);
        // Fingerprint the *effective* chunk size: the run loop clamps a
        // raw 0 (possible via the pub field) to 1, so two specs that
        // differ only in 0-vs-1 chunk the grid identically and must hash
        // identically — otherwise a resume journal written by one would
        // be spuriously dropped by the other.
        h = fnv_u64(h, self.chunk_windows.max(1));
        h = fnv_u64(h, self.shrink as u64);
        h = fnv_u64(h, self.shrink_budget);
        h
    }
}

/// Why a check could not run.
#[derive(Debug)]
pub enum CheckError {
    /// An app name `gecko_apps` does not know.
    UnknownApp(String),
    /// No (app, scheme) pairs to check.
    EmptyGrid,
    /// A cell failed to compile.
    Compile {
        /// Application name.
        app: String,
        /// Scheme of the failing cell.
        scheme: SchemeKind,
        /// The compiler's error.
        error: CompileError,
    },
    /// A cell's failure-free golden run failed, so there is no reference
    /// to check against.
    Golden {
        /// Application name.
        app: String,
        /// Scheme of the failing cell.
        scheme: SchemeKind,
        /// What went wrong.
        error: GoldenError,
    },
    /// The resume journal belongs to a different spec.
    Journal(String),
}

impl fmt::Display for CheckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckError::UnknownApp(name) => write!(f, "unknown app {name:?}"),
            CheckError::EmptyGrid => write!(f, "empty check grid (no apps or no schemes)"),
            CheckError::Compile { app, scheme, error } => {
                write!(f, "compiling {app}/{}: {error}", scheme.name())
            }
            CheckError::Golden { app, scheme, error } => {
                write!(f, "golden run of {app}/{}: {error}", scheme.name())
            }
            CheckError::Journal(msg) => write!(f, "resume journal rejected: {msg}"),
        }
    }
}

impl std::error::Error for CheckError {}

/// Checks a single pre-compiled artifact, sequentially. This is the
/// single-pair core the campaign shards; it is also the entry point for
/// checking artifacts that never came from the stock pipeline (e.g. a
/// deliberately miscompiled program in a regression test).
///
/// # Errors
///
/// [`CheckError::Golden`] when the failure-free run fails, leaving
/// nothing to check against.
pub fn check_compiled(
    compiled: &CompiledApp,
    explore: &ExploreConfig,
) -> Result<PairReport, CheckError> {
    let golden = golden_steps(compiled, explore.seed).map_err(|error| CheckError::Golden {
        app: compiled.app.name.to_string(),
        scheme: compiled.scheme,
        error,
    })?;
    let windows = explore.max_windows.map_or(golden, |m| m.min(golden));
    let (stats, violations) = check_windows(compiled, explore, 0, windows, golden);
    let mut report = PairReport {
        app: compiled.app.name.to_string(),
        scheme: compiled.scheme,
        golden_steps: golden,
        depth: explore.depth,
        stats,
        violations,
        counterexample: None,
    };
    if let Some(first) = report.violations.first() {
        report.counterexample = Some(shrink_schedule(
            compiled,
            explore,
            &first.schedule,
            golden,
            200,
        ));
    }
    Ok(report)
}

/// Compiles and checks one (app, scheme) pair, sequentially.
///
/// # Errors
///
/// [`CheckError::Compile`] or [`CheckError::Golden`] for a broken cell.
pub fn check_app(
    app: &App,
    scheme: SchemeKind,
    options: &CompileOptions,
    explore: &ExploreConfig,
) -> Result<PairReport, CheckError> {
    let compiled =
        CompiledApp::build(app, scheme, options).map_err(|error| CheckError::Compile {
            app: app.name.to_string(),
            scheme,
            error,
        })?;
    check_compiled(&compiled, explore)
}

// ---------------------------------------------------------------------------
// Chunk identity + journal codec
// ---------------------------------------------------------------------------

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x1000_0000_01b3;

pub(crate) fn fnv_u64(mut h: u64, v: u64) -> u64 {
    for byte in v.to_le_bytes() {
        h = (h ^ byte as u64).wrapping_mul(FNV_PRIME);
    }
    h
}

pub(crate) fn fnv_str(mut h: u64, s: &str) -> u64 {
    h = fnv_u64(h, s.len() as u64);
    for byte in s.bytes() {
        h = (h ^ byte as u64).wrapping_mul(FNV_PRIME);
    }
    h
}

/// Stable identity of one chunk: content-addressed by (app, scheme,
/// window range), so it survives spec reordering-neutral edits and keys
/// the chaos/backoff/journal streams.
fn chunk_run_key(app: &str, scheme: SchemeKind, start: u64, end: u64) -> u64 {
    let mut h = FNV_OFFSET;
    h = fnv_str(h, app);
    h = fnv_str(h, scheme.name());
    h = fnv_u64(h, start);
    h = fnv_u64(h, end);
    h
}

/// Journal line kind for one completed checker chunk (the checker's
/// `run_done` analogue; the header line is shared with `gecko_fleet`).
const CHUNK_DONE: &str = "chunk_done";

/// A violation as journaled: schedule + outcome only. `Blame` is derived
/// state and is rebuilt by a deterministic [`replay`] on resume.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct JournaledViolation {
    pub(crate) window: u64,
    pub(crate) schedule: Vec<PlannedInjection>,
    pub(crate) outcome: Outcome,
}

#[derive(Debug, PartialEq)]
struct JournaledChunk {
    item: usize,
    stats: CheckStats,
    violations: Vec<JournaledViolation>,
}

/// Why one `chunk_done` journal line could not be decoded. Split so the
/// prune classifier and resume diagnostics can tell dead weight from
/// forward-compatible records.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum ChunkLineError {
    /// Structurally broken (half-written, wrong field types): invisible
    /// to every decoder, safe to prune.
    Malformed {
        /// Dotted path of the offending field.
        path: String,
    },
    /// Well-formed but using a vocabulary this binary does not know —
    /// e.g. an injection tag introduced by a newer release. Kept on
    /// prune (a newer binary could still resume from it) and surfaced as
    /// a resume-time diagnostic instead of being silently dropped.
    UnknownTag {
        /// Dotted path of the offending field.
        path: String,
        /// The unrecognized tag text.
        tag: String,
    },
}

/// A diagnostic from decoding a resume journal: which line failed, where
/// in the record, and why. Returned by [`check_journal_diagnostics`] and
/// emitted as `journal_line_undecodable` telemetry on resume.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalDiagnostic {
    /// 0-based line number in the journal.
    pub line: usize,
    /// Dotted path of the offending field (`viols[2].schedule[1]`).
    pub path: String,
    /// Human-readable description of the failure.
    pub message: String,
}

impl fmt::Display for JournalDiagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "journal line {}: {} at {}",
            self.line, self.message, self.path
        )
    }
}

impl JournalDiagnostic {
    fn from_error(line: usize, error: &ChunkLineError) -> JournalDiagnostic {
        match error {
            ChunkLineError::Malformed { path } => JournalDiagnostic {
                line,
                path: path.clone(),
                message: "malformed chunk record".to_string(),
            },
            ChunkLineError::UnknownTag { path, tag } => JournalDiagnostic {
                line,
                path: path.clone(),
                message: format!("unknown tag {tag:?} (newer vocabulary?)"),
            },
        }
    }
}

/// `"12p,3c"` — offset plus a one-letter injection kind per element.
pub(crate) fn encode_schedule(schedule: &[PlannedInjection]) -> String {
    let parts: Vec<String> = schedule
        .iter()
        .map(|inj| {
            let k = match inj.kind {
                InjectionKind::PowerFailure => 'p',
                InjectionKind::SpoofedCheckpoint => 'c',
                InjectionKind::SpoofedWakeup => 'w',
                InjectionKind::InstructionSkip => 'k',
                InjectionKind::InstructionCorrupt => 'x',
            };
            format!("{}{}", inj.after_steps, k)
        })
        .collect();
    parts.join(",")
}

pub(crate) fn decode_schedule(
    text: &str,
    path: &str,
) -> Result<Vec<PlannedInjection>, ChunkLineError> {
    if text.is_empty() {
        return Ok(Vec::new());
    }
    text.split(',')
        .enumerate()
        .map(|(i, part)| {
            let malformed = || ChunkLineError::Malformed {
                path: format!("{path}[{i}]"),
            };
            // Split before the final *character* (not byte): an unknown
            // multi-byte tag must decode into a diagnostic, not a panic.
            let (num, kind) = match part.char_indices().last() {
                Some((at, _)) => part.split_at(at),
                None => return Err(malformed()),
            };
            let kind = match kind {
                "p" => InjectionKind::PowerFailure,
                "c" => InjectionKind::SpoofedCheckpoint,
                "w" => InjectionKind::SpoofedWakeup,
                "k" => InjectionKind::InstructionSkip,
                "x" => InjectionKind::InstructionCorrupt,
                other => {
                    return Err(ChunkLineError::UnknownTag {
                        path: format!("{path}[{i}]"),
                        tag: other.to_string(),
                    })
                }
            };
            Ok(PlannedInjection {
                after_steps: num.parse().map_err(|_| malformed())?,
                kind,
            })
        })
        .collect()
}

pub(crate) fn encode_outcome(outcome: Outcome) -> String {
    match outcome {
        Outcome::Clean => "clean".to_string(),
        // `Word` is i32; store the bit pattern so parsing stays unsigned.
        Outcome::Corrupt { got } => format!("corrupt.{}", got as u32),
        Outcome::Stuck => "stuck".to_string(),
    }
}

pub(crate) fn decode_outcome(text: &str, path: &str) -> Result<Outcome, ChunkLineError> {
    match text {
        "clean" => Ok(Outcome::Clean),
        "stuck" => Ok(Outcome::Stuck),
        _ => match text.strip_prefix("corrupt.") {
            Some(bits) => {
                let bits: u32 = bits.parse().map_err(|_| ChunkLineError::Malformed {
                    path: path.to_string(),
                })?;
                Ok(Outcome::Corrupt { got: bits as i32 })
            }
            None => Err(ChunkLineError::UnknownTag {
                path: path.to_string(),
                tag: text.to_string(),
            }),
        },
    }
}

/// One completed chunk as a single journal line (single-line records are
/// torn-write safe by construction: a half-written line fails to parse
/// and the chunk is simply re-run).
fn encode_chunk(run_key: u64, item: usize, stats: &CheckStats, violations: &[Violation]) -> String {
    let viols: Vec<String> = violations
        .iter()
        .map(|v| {
            format!(
                "{}|{}|{}",
                v.window,
                encode_schedule(&v.schedule),
                encode_outcome(v.outcome)
            )
        })
        .collect();
    json_kv(&[
        ("kind", Value::Str(CHUNK_DONE.to_string())),
        ("run_key", Value::U64(run_key)),
        ("item", Value::U64(item as u64)),
        ("windows", Value::U64(stats.windows)),
        ("forks", Value::U64(stats.forks)),
        ("explored", Value::U64(stats.explored)),
        ("memo_hits", Value::U64(stats.memo_hits)),
        ("steps", Value::U64(stats.steps)),
        ("violations", Value::U64(stats.violations)),
        ("viols", Value::Str(viols.join(";"))),
    ])
}

/// Decodes one `chunk_done` line's parsed fields. `None` means the line
/// is not a chunk record at all (foreign vocabulary); `Some(Err(_))` is a
/// chunk record this binary cannot use, with a path-carrying reason.
/// Shared between journal replay and the prune classifier so both agree
/// on what "decodable" means.
fn decode_chunk_line(
    fields: &[(String, JsonScalar)],
) -> Option<Result<(u64, JournaledChunk), ChunkLineError>> {
    if field(fields, "kind")?.as_str()? != CHUNK_DONE {
        return None;
    }
    Some(decode_chunk_fields(fields))
}

fn decode_chunk_fields(
    fields: &[(String, JsonScalar)],
) -> Result<(u64, JournaledChunk), ChunkLineError> {
    let u = |name: &str| {
        field(fields, name)
            .and_then(JsonScalar::as_u64)
            .ok_or_else(|| ChunkLineError::Malformed {
                path: name.to_string(),
            })
    };
    let run_key = u("run_key")?;
    let stats = CheckStats {
        windows: u("windows")?,
        forks: u("forks")?,
        explored: u("explored")?,
        memo_hits: u("memo_hits")?,
        steps: u("steps")?,
        violations: u("violations")?,
    };
    let viols_text = field(fields, "viols")
        .and_then(JsonScalar::as_str)
        .ok_or_else(|| ChunkLineError::Malformed {
            path: "viols".to_string(),
        })?;
    let mut violations = Vec::new();
    if !viols_text.is_empty() {
        for (vi, part) in viols_text.split(';').enumerate() {
            let mut cols = part.splitn(3, '|');
            let col = |cols: &mut std::str::SplitN<'_, char>, name: &str| {
                cols.next()
                    .map(str::to_string)
                    .ok_or_else(|| ChunkLineError::Malformed {
                        path: format!("viols[{vi}].{name}"),
                    })
            };
            let window: u64 =
                col(&mut cols, "window")?
                    .parse()
                    .map_err(|_| ChunkLineError::Malformed {
                        path: format!("viols[{vi}].window"),
                    })?;
            let schedule = decode_schedule(
                &col(&mut cols, "schedule")?,
                &format!("viols[{vi}].schedule"),
            )?;
            let outcome =
                decode_outcome(&col(&mut cols, "outcome")?, &format!("viols[{vi}].outcome"))?;
            violations.push(JournaledViolation {
                window,
                schedule,
                outcome,
            });
        }
    }
    Ok((
        run_key,
        JournaledChunk {
            item: u("item")? as usize,
            stats,
            violations,
        },
    ))
}

/// A decoded checker journal: header (if any), completed chunks keyed by
/// run key, and one diagnostic per chunk line that failed to decode.
type DecodedJournal = (
    Option<(String, u64)>,
    HashMap<u64, JournaledChunk>,
    Vec<JournalDiagnostic>,
);

/// Replays a checker journal: header (if any) plus completed chunks keyed
/// by run key, plus one diagnostic per chunk line that failed to decode.
/// Unparseable non-chunk lines are skipped; later duplicates win.
fn decode_chunks(lines: &[String]) -> DecodedJournal {
    let mut header = None;
    let mut chunks = HashMap::new();
    let mut diagnostics = Vec::new();
    for (i, line) in lines.iter().enumerate() {
        if let Some(h) = decode_header(line) {
            header.get_or_insert(h);
            continue;
        }
        let Some(fields) = parse_flat_json(line) else {
            continue;
        };
        match decode_chunk_line(&fields) {
            Some(Ok((run_key, chunk))) => {
                chunks.insert(run_key, chunk);
            }
            Some(Err(error)) => diagnostics.push(JournalDiagnostic::from_error(i, &error)),
            None => {}
        }
    }
    (header, chunks, diagnostics)
}

/// Scans a checker journal and returns one diagnostic per `chunk_done`
/// line that could not be decoded, with the dotted path of the offending
/// field. Records using unknown tags — a journal written by a newer
/// vocabulary — are reported here (and re-explored on resume) rather
/// than silently dropped.
pub fn check_journal_diagnostics(lines: &[String]) -> Vec<JournalDiagnostic> {
    decode_chunks(lines).2
}

/// Classifies a checker journal for [`gecko_store::LogCompactor`]: marks
/// [`Verdict::Delete`] on exactly the lines no decoder — present or
/// future — can use: unparseable garbage, duplicate headers,
/// structurally broken `chunk_done` lines, and `chunk_done` lines
/// superseded by a later record with the same run key. Lines in a
/// foreign but parseable vocabulary are kept, and so are `chunk_done`
/// lines carrying *unknown tags* (a newer writer's records): pruning
/// those would destroy data a newer binary could still resume from.
pub fn classify_check_lines(lines: &[String]) -> Vec<Verdict> {
    let mut verdicts = vec![Verdict::Keep; lines.len()];
    let mut saw_header = false;
    // Latest decodable chunk_done line per run key wins; all earlier
    // ones are dead weight the decoder would overwrite anyway.
    let mut last_chunk: HashMap<u64, usize> = HashMap::new();
    for (i, line) in lines.iter().enumerate() {
        if decode_header(line).is_some() {
            if saw_header {
                verdicts[i] = Verdict::Delete; // decode keeps the first
            }
            saw_header = true;
            continue;
        }
        let Some(fields) = parse_flat_json(line) else {
            verdicts[i] = Verdict::Delete; // garbage: decoder skips it
            continue;
        };
        match decode_chunk_line(&fields) {
            Some(Ok((run_key, _))) => {
                if let Some(prev) = last_chunk.insert(run_key, i) {
                    verdicts[prev] = Verdict::Delete;
                }
            }
            // Structurally broken: invisible to every decoder.
            Some(Err(ChunkLineError::Malformed { .. })) => verdicts[i] = Verdict::Delete,
            // Unknown vocabulary: forward-compatible data, keep it.
            Some(Err(ChunkLineError::UnknownTag { .. })) => {}
            // Not a chunk record: a foreign writer's line, keep it.
            None => {}
        }
    }
    verdicts
}

/// One claimable unit of checker work: a window chunk of one pair.
#[derive(Debug, Clone, Copy)]
struct WorkItem {
    pair: usize,
    start: u64,
    end: u64,
}

/// A runnable checker campaign: spec + workers + telemetry sink +
/// supervision policy.
pub struct CheckCampaign {
    spec: CheckSpec,
    workers: usize,
    sink: Arc<dyn TelemetrySink>,
    sup: SupervisorSpec,
    journal: Option<Arc<Journal>>,
    memo: Option<Arc<MemoStore>>,
    steal_bias: u64,
    halt_after: Option<u64>,
    kill_switch: Option<Arc<std::sync::atomic::AtomicBool>>,
}

impl CheckCampaign {
    /// A campaign over `spec` with one worker and no telemetry.
    pub fn new(spec: CheckSpec) -> CheckCampaign {
        CheckCampaign {
            spec,
            workers: 1,
            sink: Arc::new(NullSink),
            sup: SupervisorSpec::default(),
            journal: None,
            memo: None,
            steal_bias: 500,
            halt_after: None,
            kill_switch: None,
        }
    }

    /// Sets the worker-thread count (builder style; clamped to ≥ 1).
    /// Results are bit-identical for any value.
    pub fn workers(mut self, workers: usize) -> CheckCampaign {
        self.workers = workers.max(1);
        self
    }

    /// Attaches a telemetry sink (builder style).
    pub fn sink(mut self, sink: Arc<dyn TelemetrySink>) -> CheckCampaign {
        self.sink = sink;
        self
    }

    /// Replaces the supervision policy (builder style). Note that the
    /// checker enforces the *step* budget post hoc — an exploration is
    /// not sliceable the way a metrics run is — so `max_steps` flags
    /// runaway chunks after the fact rather than interrupting them; by
    /// default chunks have no step cap (exploration work is structurally
    /// bounded per fork by the explore budget).
    pub fn supervisor(mut self, sup: SupervisorSpec) -> CheckCampaign {
        self.sup = sup;
        self
    }

    /// Sets the chaos-injection policy (builder style), keeping the rest
    /// of the supervision policy.
    pub fn chaos(mut self, chaos: ChaosSpec) -> CheckCampaign {
        self.sup.chaos = chaos;
        self
    }

    /// Attaches a journal (builder style): completed chunks are appended
    /// as they finish, and chunks already present are skipped on [`run`]
    /// (their violations' blame context is rebuilt by deterministic
    /// replay).
    ///
    /// [`run`]: CheckCampaign::run
    pub fn journal(mut self, journal: Arc<Journal>) -> CheckCampaign {
        self.journal = Some(journal);
        self
    }

    /// Alias for [`CheckCampaign::journal`], reading as intent.
    pub fn resume(self, journal: Arc<Journal>) -> CheckCampaign {
        self.journal(journal)
    }

    /// Attaches a durable memo store (builder style): every chunk's
    /// logical-state memo table and completion frontier persist through
    /// [`MemoStore`] as the chunk explores, and a later campaign over the
    /// same spec answers complete chunks from disk, resumes partial ones
    /// mid-chunk, and re-explores only chunks whose blamed compiled
    /// regions changed (DESIGN.md §18). Results are bit-identical with
    /// and without a store, cold or warm.
    pub fn memo(mut self, memo: Arc<MemoStore>) -> CheckCampaign {
        self.memo = Some(memo);
        self
    }

    /// Sets the work-stealing split bias in permille — the fraction of a
    /// stolen lease its victim keeps (builder style; clamped to ≤ 999,
    /// default 500 = halving). Pure scheduling: results are bit-identical
    /// for any value.
    pub fn steal_bias(mut self, permille: u64) -> CheckCampaign {
        self.steal_bias = permille;
        self
    }

    /// Stops claiming new chunks once `n` have been accounted this
    /// session (builder style) — the deterministic kill switch the
    /// resume tests use.
    pub fn halt_after(mut self, n: u64) -> CheckCampaign {
        self.halt_after = Some(n);
        self
    }

    /// Attaches a cooperative kill switch (builder style), mirroring
    /// `gecko_fleet::Campaign::kill_switch`: when the flag flips true,
    /// workers finish the window chunk they are exploring, journal it,
    /// and stop claiming new chunks (`halted` in the report). A journaled
    /// check campaign then resumes bit-exactly.
    pub fn kill_switch(mut self, stop: Arc<std::sync::atomic::AtomicBool>) -> CheckCampaign {
        self.kill_switch = Some(stop);
        self
    }

    /// The spec this campaign will run.
    pub fn spec(&self) -> &CheckSpec {
        &self.spec
    }

    /// Executes the campaign: compile and measure golden traces (in pair
    /// order), fan window chunks out across the supervised pool, merge in
    /// item order, then shrink each failing pair's first violation.
    ///
    /// A chunk that panics (or blows its budget, or keeps failing
    /// transiently) is quarantined into [`CheckReport::failures`]; every
    /// other chunk's result — including violations found by sibling
    /// chunks, which still shrink — is unaffected.
    ///
    /// # Errors
    ///
    /// The first (in pair order) compile or golden-run error, or
    /// [`CheckError::Journal`] when a resume journal's fingerprint does
    /// not match this spec.
    pub fn run(&self) -> Result<CheckReport, CheckError> {
        let spec = &self.spec;
        if spec.apps.is_empty() || spec.schemes.is_empty() {
            return Err(CheckError::EmptyGrid);
        }
        let started = Instant::now();
        let cache = ProgramCache::new();

        // Phase 1 (sequential, pair order): compile + golden trace.
        struct Pair {
            compiled: Arc<CompiledApp>,
            golden: u64,
            windows: u64,
        }
        let mut pairs = Vec::with_capacity(spec.apps.len() * spec.schemes.len());
        for app in &spec.apps {
            for &scheme in &spec.schemes {
                let (compiled, _) =
                    cache
                        .get_or_compile(app, scheme, &spec.compile)
                        .map_err(|error| CheckError::Compile {
                            app: app.name.to_string(),
                            scheme,
                            error,
                        })?;
                let golden = golden_steps(&compiled, spec.explore.seed).map_err(|error| {
                    CheckError::Golden {
                        app: app.name.to_string(),
                        scheme,
                        error,
                    }
                })?;
                let windows = spec.explore.max_windows.map_or(golden, |m| m.min(golden));
                pairs.push(Pair {
                    compiled,
                    golden,
                    windows,
                });
            }
        }

        // Fixed-size chunks, in pair order: the item list depends only on
        // the spec, never on the worker count.
        let mut items = Vec::new();
        // Clamp the raw field like the builder does: a 0 set through the
        // pub field must chunk (and fingerprint) exactly like 1, not
        // loop forever.
        let chunk_windows = spec.chunk_windows.max(1);
        for (pair, p) in pairs.iter().enumerate() {
            let mut start = 0;
            while start < p.windows {
                let end = (start + chunk_windows).min(p.windows);
                items.push(WorkItem { pair, start, end });
                start = end;
            }
            if p.windows == 0 {
                // Degenerate (empty) trace: still emit one no-op item so
                // the pair appears in the report.
                items.push(WorkItem {
                    pair,
                    start: 0,
                    end: 0,
                });
            }
        }

        let workers = self.workers.min(items.len()).max(1);
        let chaos = self.sup.chaos;
        let sink: Arc<dyn TelemetrySink> = if chaos.sink_fail_per_mille > 0 {
            Arc::new(ChaosSink::new(
                Arc::clone(&self.sink),
                chaos.seed,
                chaos.sink_fail_per_mille,
            ))
        } else {
            Arc::clone(&self.sink)
        };

        let run_keys: Vec<u64> = items
            .iter()
            .map(|item| {
                let p = &pairs[item.pair];
                chunk_run_key(p.compiled.app.name, p.compiled.scheme, item.start, item.end)
            })
            .collect();
        let fingerprint = spec.fingerprint(&run_keys);

        // Region fingerprints, one per pair, when a memo store is
        // attached: the identity change-driven invalidation keys on (a
        // persisted slab stays valid if the whole program is unchanged,
        // or if every region its exploration blamed is unchanged).
        let fps: Vec<ProgramFingerprints> = if self.memo.is_some() {
            pairs
                .iter()
                .map(|p| fingerprint_program(&p.compiled.program, &p.compiled.recovery))
                .collect()
        } else {
            Vec::new()
        };
        let memo_generation = self.memo.as_ref().map(|m| m.begin(&spec.name, fingerprint));

        // Restore completed chunks from the journal (and stamp the header
        // on a fresh one). A journaled violation carries no blame — that
        // is rebuilt here by replaying its schedule, and the chunk is
        // rejected (re-run) if the replay disagrees with the journal.
        let mut skip = vec![false; items.len()];
        let mut restored: Vec<Option<(CheckStats, Vec<Violation>)>> = Vec::new();
        restored.resize_with(items.len(), || None);
        let mut journal_diagnostics = 0u64;
        if let Some(journal) = &self.journal {
            let (header, chunks, diagnostics) = decode_chunks(&journal.lines());
            journal_diagnostics = diagnostics.len() as u64;
            // Surface undecodable chunk lines instead of silently
            // re-exploring them: an unknown tag means the journal was
            // written by a different (likely newer) vocabulary.
            for d in &diagnostics {
                sink.emit(Event::new(
                    "journal_line_undecodable",
                    vec![
                        ("line", Value::U64(d.line as u64)),
                        ("path", Value::Str(d.path.clone())),
                        ("message", Value::Str(d.message.clone())),
                    ],
                ));
            }
            match header {
                Some((name, fp)) if fp != fingerprint => {
                    return Err(CheckError::Journal(format!(
                        "journal belongs to check {name:?} (fingerprint {fp:#018x}), \
                         not this spec (fingerprint {fingerprint:#018x})"
                    )));
                }
                Some(_) => {}
                None => journal.append(&encode_header(&spec.name, fingerprint)),
            }
            for (i, key) in run_keys.iter().enumerate() {
                let Some(chunk) = chunks.get(key) else {
                    continue;
                };
                if chunk.item != i {
                    continue;
                }
                let p = &pairs[items[i].pair];
                let mut violations = Vec::with_capacity(chunk.violations.len());
                let mut consistent = true;
                for jv in &chunk.violations {
                    let (outcome, blame) =
                        replay(&p.compiled, &spec.explore, &jv.schedule, p.golden);
                    if outcome != jv.outcome {
                        consistent = false;
                        break;
                    }
                    violations.push(Violation {
                        window: jv.window,
                        schedule: jv.schedule.clone(),
                        outcome,
                        blame,
                    });
                }
                if consistent {
                    skip[i] = true;
                    restored[i] = Some((chunk.stats, violations));
                }
            }
        }

        // Memo restore pass (after the journal's — this campaign's own
        // completed chunks win). A complete slab answers the whole chunk
        // from disk; a partial slab becomes a [`SlabPrefix`] and the
        // chunk resumes mid-slab. Violations are replay-validated exactly
        // like journaled ones before anything is trusted.
        let mut prefixes: Vec<Mutex<Option<SlabPrefix>>> = Vec::new();
        prefixes.resize_with(items.len(), Default::default);
        let mut memo_windows = 0u64;
        if let Some(memo) = &self.memo {
            for (i, key) in run_keys.iter().enumerate() {
                if skip[i] {
                    continue;
                }
                let item = items[i];
                let p = &pairs[item.pair];
                let Some(slab) = memo.restore(*key, p.golden, &fps[item.pair]) else {
                    continue;
                };
                let mut violations = Vec::with_capacity(slab.violations.len());
                let mut consistent = true;
                for jv in &slab.violations {
                    let (outcome, blame) =
                        replay(&p.compiled, &spec.explore, &jv.schedule, p.golden);
                    if outcome != jv.outcome {
                        consistent = false;
                        break;
                    }
                    violations.push(Violation {
                        window: jv.window,
                        schedule: jv.schedule.clone(),
                        outcome,
                        blame,
                    });
                }
                if !consistent {
                    continue;
                }
                memo_windows += slab.done;
                if slab.done >= slab.total {
                    skip[i] = true;
                    restored[i] = Some((slab.stats, violations));
                } else {
                    *prefixes[i].lock().unwrap_or_else(|p| p.into_inner()) = Some(SlabPrefix {
                        windows_done: slab.done,
                        stats: slab.stats,
                        violations,
                        regions: slab.regions,
                        memo: slab.memo,
                    });
                }
            }
        }
        let resumed = skip.iter().filter(|&&s| s).count() as u64;

        sink.emit(Event::new(
            "check_started",
            vec![
                ("campaign", Value::Str(spec.name.clone())),
                ("pairs", Value::U64(pairs.len() as u64)),
                ("items", Value::U64(items.len() as u64)),
                ("workers", Value::U64(workers as u64)),
                ("resumed", Value::U64(resumed)),
            ],
        ));

        // The step budget is enforced post hoc (see
        // [`CheckCampaign::supervisor`]); unset means uncapped, not the
        // fleet's workload-derived default.
        let mut budget = self.sup.resolve_budget(0.0);
        budget.max_steps = self.sup.max_steps.unwrap_or(u64::MAX);

        // Work-stealing frontier: one contiguous index range per pair, so
        // a worker's lease is a run of adjacent chunks (the simulator-
        // carry fast path) and it steals across pairs only when its own
        // run dries up. Skipped (restored) indices stay inside the ranges
        // — the pool accounts for them without re-running anything.
        let mut ranges: Vec<(usize, usize)> = Vec::new();
        let mut prev_pair = usize::MAX;
        for (i, item) in items.iter().enumerate() {
            if item.pair == prev_pair {
                ranges.last_mut().expect("non-empty on repeat pair").1 = i + 1;
            } else {
                ranges.push((i, i + 1));
                prev_pair = item.pair;
            }
        }
        let frontier = Frontier::new(&ranges, workers).with_bias(self.steal_bias);

        let pool_cfg = PoolConfig {
            workers,
            run_keys: &run_keys,
            skip: &skip,
            sup: &self.sup,
            budget,
            halt_after: self.halt_after.map(|n| n + resumed),
            stop: self.kill_switch.as_deref(),
            claim: Some(&frontier),
            sink: &sink,
        };
        let journal = self.journal.as_deref();
        let pool = run_supervised(&pool_cfg, |i, attempt, budget, attempt_started| {
            let item = items[i];
            let p = &pairs[item.pair];
            // A restored partial slab is taken (not cloned): a retry after
            // a failed attempt re-explores from scratch, which is the
            // uninterrupted run by definition.
            let prefix = prefixes[i].lock().unwrap_or_else(|e| e.into_inner()).take();
            let prefix_done = prefix.as_ref().map_or(0, |pre| pre.windows_done);
            // Reuse this worker's parked simulator when it is positioned
            // exactly on this chunk's first unchecked window (see
            // `SIM_CARRY`); otherwise a fresh one re-advances.
            let carry = SIM_CARRY.with(|c| match c.borrow_mut().take() {
                Some((pair, pos, sim)) if pair == item.pair && pos == item.start + prefix_done => {
                    Some(sim)
                }
                _ => None,
            });
            let (outcome, end_sim) = if let Some(memo) = &self.memo {
                let mut writer = SlabWriter::new(
                    memo,
                    &fps[item.pair],
                    run_keys[i],
                    item.start,
                    item.end,
                    p.golden,
                    prefix_done,
                );
                let out = check_windows_resumed(
                    &p.compiled,
                    &spec.explore,
                    item.start,
                    item.end,
                    p.golden,
                    carry,
                    prefix,
                    &mut writer,
                );
                writer.finish(&out.0);
                out
            } else {
                check_windows_resumed(
                    &p.compiled,
                    &spec.explore,
                    item.start,
                    item.end,
                    p.golden,
                    carry,
                    prefix,
                    &mut NullObserver,
                )
            };
            let stats = outcome.stats;
            let violations = outcome.violations;
            if stats.steps > budget.max_steps {
                return Err(AttemptFail::TimedOut {
                    steps: stats.steps,
                    wall_ms: attempt_started.elapsed().as_secs_f64() * 1e3,
                    partial: None,
                });
            }
            if let Some(journal) = journal {
                journal.append(&encode_chunk(run_keys[i], i, &stats, &violations));
            }
            // Park the end-positioned simulator for the adjacent chunk.
            SIM_CARRY.with(|c| *c.borrow_mut() = Some((item.pair, item.end, end_sim)));
            sink.emit(Event::new(
                "check_item_finished",
                vec![
                    ("item", Value::U64(i as u64)),
                    ("attempt", Value::U64(attempt as u64)),
                    ("app", Value::Str(p.compiled.app.name.to_string())),
                    ("scheme", Value::Str(p.compiled.scheme.name().to_string())),
                    ("windows", Value::U64(stats.windows)),
                    ("violations", Value::U64(stats.violations)),
                ],
            ));
            Ok((stats, violations))
        });
        // Checkpoint boundary: every chunk journaled by the pool is
        // forced to stable storage before the report claims it happened.
        // Per-chunk appends stay fsync-free to keep the hot path cheap.
        if let Some(journal) = journal {
            journal.sync();
        }
        // Same boundary for the memo store: records appended by the pool
        // are durable before the report (or a pruner) can see them.
        if let Some(memo) = &self.memo {
            memo.sync();
        }

        // Deterministic merge, in item order (chunks of a pair are in
        // window order, so each pair's violations come out sorted).
        // Quarantined chunks land in `failures` instead of their pair.
        let mut results: Vec<PairReport> = pairs
            .iter()
            .map(|p| PairReport {
                app: p.compiled.app.name.to_string(),
                scheme: p.compiled.scheme,
                golden_steps: p.golden,
                depth: spec.explore.depth,
                stats: CheckStats::default(),
                violations: Vec::new(),
                counterexample: None,
            })
            .collect();
        let mut failures = Vec::new();
        for (i, (item, slot)) in items.iter().zip(pool.outcomes).enumerate() {
            if skip[i] {
                let (stats, violations) = restored[i].take().expect("restored above");
                results[item.pair].stats.absorb(&stats);
                results[item.pair].violations.extend(violations);
                continue;
            }
            match slot {
                None => debug_assert!(pool.halted, "item {i} unclaimed without a halt"),
                Some(gecko_fleet::ItemOutcome::Done((stats, violations))) => {
                    results[item.pair].stats.absorb(&stats);
                    results[item.pair].violations.extend(violations);
                }
                Some(gecko_fleet::ItemOutcome::Failed(f)) => failures.push(f),
            }
        }

        // Shrink (sequential, pair order — itself deterministic, and
        // quarantined so a shrinker bug cannot take down the campaign or
        // the sibling pairs' counterexamples).
        if spec.shrink {
            for (pair, report) in results.iter_mut().enumerate() {
                let Some(first) = report.violations.first() else {
                    continue;
                };
                let schedule = first.schedule.clone();
                let shrunk = quarantine(|| {
                    shrink_schedule(
                        &pairs[pair].compiled,
                        &spec.explore,
                        &schedule,
                        pairs[pair].golden,
                        spec.shrink_budget,
                    )
                });
                match shrunk {
                    Ok(counterexample) => report.counterexample = Some(counterexample),
                    Err(payload) => failures.push(RunFailure::Panicked {
                        run_key: chunk_run_key(&report.app, report.scheme, u64::MAX, u64::MAX),
                        item: pair,
                        payload: format!("shrink panicked: {payload}"),
                    }),
                }
            }
        }

        let dropped_records =
            sink.dropped_records() + self.journal.as_ref().map_or(0, |j| j.dropped());
        if dropped_records > 0 {
            sink.emit(Event::new(
                "sink_dropped",
                vec![("dropped", Value::U64(dropped_records))],
            ));
            failures.push(RunFailure::SinkDropped {
                dropped: dropped_records,
            });
        }

        let mut totals = CheckStats::default();
        for r in &results {
            totals.absorb(&r.stats);
        }
        let counters = FleetCounters {
            items: items.len() as u64,
            compile_misses: cache.misses(),
            compile_hits: cache.hits(),
            forks: totals.forks,
            states_explored: totals.explored,
            memo_hits: totals.memo_hits,
            violations: totals.violations,
            failures: failures
                .iter()
                .filter(|f| !matches!(f, RunFailure::SinkDropped { .. }))
                .count() as u64,
            retries: pool.retries,
            resumed,
            dropped_records,
            journal_diagnostics,
            memo_windows,
            frontier_steals: frontier.steals(),
            // Checks always run per item; the batch counters stay zero.
            ..FleetCounters::default()
        };
        let wall_s = started.elapsed().as_secs_f64();

        sink.emit(Event::new(
            "check_finished",
            vec![
                ("campaign", Value::Str(spec.name.clone())),
                ("pairs", Value::U64(results.len() as u64)),
                ("forks", Value::U64(counters.forks)),
                ("states_explored", Value::U64(counters.states_explored)),
                ("memo_hits", Value::U64(counters.memo_hits)),
                ("violations", Value::U64(counters.violations)),
                ("failures", Value::U64(counters.failures)),
                ("resumed", Value::U64(resumed)),
                ("halted", Value::Bool(pool.halted)),
                ("wall_s", Value::F64(wall_s)),
            ],
        ));
        sink.flush();

        Ok(CheckReport {
            name: spec.name.clone(),
            workers,
            results,
            totals,
            counters,
            failures,
            halted: pool.halted,
            memo_generation,
            wall_s,
        })
    }
}

/// The merged outcome of a checker campaign.
#[derive(Debug, Clone)]
pub struct CheckReport {
    /// Campaign name.
    pub name: String,
    /// Worker threads actually used.
    pub workers: usize,
    /// Per-pair reports, in (app × scheme) row-major order.
    pub results: Vec<PairReport>,
    /// All pair stats folded together.
    pub totals: CheckStats,
    /// Fleet-level counters (compile cache + exploration + supervision).
    pub counters: FleetCounters,
    /// Quarantined chunk/shrink failures, in item order (the trailing
    /// `SinkDropped` entry, if any, summarizes telemetry degradation).
    pub failures: Vec<RunFailure>,
    /// Whether the pool stopped early because `halt_after` was reached.
    pub halted: bool,
    /// The memo-store generation this run's verdicts belong to, when a
    /// store was attached — a proof-of-clean digest can name it to say
    /// *which* persisted evidence backs the claim. Not part of
    /// [`deterministic_digest`](CheckReport::deterministic_digest):
    /// cold and warm runs must certify identically.
    pub memo_generation: Option<u64>,
    /// Campaign wall time (s).
    pub wall_s: f64,
}

impl CheckReport {
    /// Whether every pair passed exhaustively. A report with quarantined
    /// failures is never clean: the failed chunks' windows were not
    /// checked, so no exhaustiveness claim holds.
    pub fn is_clean(&self) -> bool {
        self.results.iter().all(PairReport::is_clean) && self.failures.is_empty()
    }

    /// An FNV-1a digest over everything deterministic in the report
    /// (stats, violations, schedules, outcomes, counterexamples, failure
    /// identities). Equal digests across worker counts certify
    /// bit-identical results.
    pub fn deterministic_digest(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x1000_0000_01b3;
        let mut h = FNV_OFFSET;
        let mut eat = |word: u64| {
            h = (h ^ word).wrapping_mul(FNV_PRIME);
        };
        let eat_schedule = |eat: &mut dyn FnMut(u64), schedule: &[crate::PlannedInjection]| {
            eat(schedule.len() as u64);
            for inj in schedule {
                eat(inj.after_steps);
                eat(match inj.kind {
                    crate::InjectionKind::PowerFailure => 1,
                    crate::InjectionKind::SpoofedCheckpoint => 2,
                    crate::InjectionKind::SpoofedWakeup => 3,
                    crate::InjectionKind::InstructionSkip => 4,
                    crate::InjectionKind::InstructionCorrupt => 5,
                });
            }
        };
        let eat_outcome = |eat: &mut dyn FnMut(u64), outcome: crate::Outcome| match outcome {
            crate::Outcome::Clean => eat(1),
            crate::Outcome::Corrupt { got } => {
                eat(2);
                eat(got as u32 as u64);
            }
            crate::Outcome::Stuck => eat(3),
        };
        for (i, r) in self.results.iter().enumerate() {
            eat(i as u64);
            eat(r.golden_steps);
            eat(r.stats.windows);
            eat(r.stats.forks);
            eat(r.stats.explored);
            eat(r.stats.memo_hits);
            eat(r.stats.steps);
            eat(r.stats.violations);
            eat(r.violations.len() as u64);
            for v in &r.violations {
                eat(v.window);
                eat_schedule(&mut eat, &v.schedule);
                eat_outcome(&mut eat, v.outcome);
            }
            match &r.counterexample {
                None => eat(0),
                Some(c) => {
                    eat_schedule(&mut eat, &c.schedule);
                    eat_outcome(&mut eat, c.outcome);
                }
            }
        }
        for f in &self.failures {
            f.digest_into(&mut eat);
        }
        h
    }
}

/// Renders a fixed-width verdict table (one row per pair) plus totals —
/// the checker's counterpart to `gecko_fleet::fleet_summary`.
pub fn check_summary(report: &CheckReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "check {:?}: {} pair(s), {} worker(s), {:.2}s\n",
        report.name,
        report.results.len(),
        report.workers,
        report.wall_s
    ));
    out.push_str(&format!(
        "{:<10} {:<12} {:>8} {:>8} {:>9} {:>9} {:>8} {:>10}\n",
        "app", "scheme", "golden", "windows", "forks", "explored", "memo%", "violations"
    ));
    for r in &report.results {
        out.push_str(&format!(
            "{:<10} {:<12} {:>8} {:>8} {:>9} {:>9} {:>7.1}% {:>10}\n",
            r.app,
            r.scheme.name(),
            r.golden_steps,
            r.stats.windows,
            r.stats.forks,
            r.stats.explored,
            100.0 * r.stats.memo_hit_rate(),
            r.stats.violations,
        ));
    }
    out.push_str(&format!(
        "totals: {} forks, {} explored, {} memo hits ({:.1}%), {} violations\n",
        report.totals.forks,
        report.totals.explored,
        report.totals.memo_hits,
        100.0 * report.totals.memo_hit_rate(),
        report.totals.violations,
    ));
    let c = &report.counters;
    if !report.failures.is_empty() || c.resumed > 0 || report.halted {
        out.push_str(&format!(
            "supervision: {} failure(s), {} retried attempt(s), {} resumed, \
             {} dropped record(s){}\n",
            c.failures,
            c.retries,
            c.resumed,
            c.dropped_records,
            if report.halted { " [halted]" } else { "" },
        ));
        for f in &report.failures {
            out.push_str(&format!("  {} {}\n", f.kind().name(), f.describe()));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verdict::Blame;

    fn sample_chunk(run_key: u64, item: usize, windows: u64) -> String {
        let stats = CheckStats {
            windows,
            forks: 3,
            explored: 9,
            memo_hits: 2,
            steps: 40,
            violations: 1,
        };
        let violations = vec![Violation {
            window: 7,
            schedule: vec![PlannedInjection {
                after_steps: 5,
                kind: InjectionKind::PowerFailure,
            }],
            outcome: Outcome::Stuck,
            blame: Blame {
                region: None,
                block: None,
                boundary_index: None,
                recovery_slots: 0,
                recovery_recomputes: 0,
                checkpoint_pc: None,
                detail: String::new(),
            },
        }];
        encode_chunk(run_key, item, &stats, &violations)
    }

    #[test]
    fn classifier_only_deletes_lines_the_decoder_ignores() {
        let lines = vec![
            encode_header("check", 0xBEEF),
            sample_chunk(11, 0, 512), // superseded by the later key-11 record
            "not json at all".to_string(),
            r#"{"kind":"chunk_done","run_key":"oops"}"#.to_string(), // undecodable
            r#"{"kind":"run_done","run_key":9}"#.to_string(),        // foreign vocabulary
            sample_chunk(11, 0, 640),
            encode_header("check", 0xBEEF), // duplicate header
            sample_chunk(12, 1, 512),
        ];
        let verdicts = classify_check_lines(&lines);
        let pruned: Vec<String> = lines
            .iter()
            .zip(&verdicts)
            .filter(|(_, v)| **v == Verdict::Keep)
            .map(|(l, _)| l.clone())
            .collect();

        // The invariant the compactor relies on: pruning is invisible to
        // the decoder (diagnostics differ — the pruned lines were
        // exactly the diagnosed ones — so compare header + chunks).
        let (h_all, c_all, _) = decode_chunks(&lines);
        let (h_pruned, c_pruned, _) = decode_chunks(&pruned);
        assert_eq!((h_all, c_all), (h_pruned, c_pruned));

        // Exactly the dead lines go: stale chunk, garbage, broken chunk,
        // duplicate header. The foreign run_done line survives.
        assert_eq!(pruned.len(), 4);
        assert!(pruned.iter().any(|l| l.contains("run_done")));
        let (header, chunks, _) = decode_chunks(&pruned);
        assert_eq!(header, Some(("check".to_string(), 0xBEEF)));
        assert_eq!(chunks.len(), 2);
        assert_eq!(chunks[&11].stats.windows, 640);
    }

    #[test]
    fn fault_kinds_roundtrip_through_the_wire_codec() {
        let schedule = vec![
            PlannedInjection {
                after_steps: 12,
                kind: InjectionKind::InstructionSkip,
            },
            PlannedInjection {
                after_steps: 3,
                kind: InjectionKind::InstructionCorrupt,
            },
            PlannedInjection {
                after_steps: 0,
                kind: InjectionKind::PowerFailure,
            },
        ];
        let text = encode_schedule(&schedule);
        assert_eq!(text, "12k,3x,0p");
        assert_eq!(decode_schedule(&text, "s").unwrap(), schedule);
    }

    #[test]
    fn unknown_tags_are_kept_on_prune_and_surfaced_as_diagnostics() {
        // A record as a future release might write it: same structure,
        // one injection tag ('z') this binary does not know.
        let future = r#"{"kind": "chunk_done", "run_key": 99, "item": 3, "windows": 8, "forks": 1, "explored": 1, "memo_hits": 0, "steps": 5, "violations": 1, "viols": "7|5z|clean"}"#
            .to_string();
        let lines = vec![encode_header("check", 1), sample_chunk(1, 0, 512), future];

        // The classifier must NOT delete it: a newer binary could still
        // resume from it.
        assert_eq!(classify_check_lines(&lines), vec![Verdict::Keep; 3]);

        // And the decode surfaces a path-carrying diagnostic instead of
        // silently dropping the record.
        let diags = check_journal_diagnostics(&lines);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].line, 2);
        assert_eq!(diags[0].path, "viols[0].schedule[0]");
        assert!(
            diags[0].message.contains("\"z\""),
            "got {:?}",
            diags[0].message
        );

        // An unknown *outcome* word is likewise diagnosed, not dropped.
        let odd = r#"{"kind": "chunk_done", "run_key": 5, "item": 0, "windows": 1, "forks": 1, "explored": 1, "memo_hits": 0, "steps": 1, "violations": 1, "viols": "0|1p|detected"}"#
            .to_string();
        let diags = check_journal_diagnostics(std::slice::from_ref(&odd));
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].path, "viols[0].outcome");
        assert_eq!(classify_check_lines(&[odd]), vec![Verdict::Keep]);
    }

    #[test]
    fn classifier_keeps_everything_in_a_clean_journal() {
        let lines = vec![
            encode_header("check", 1),
            sample_chunk(1, 0, 512),
            sample_chunk(2, 1, 512),
        ];
        assert_eq!(classify_check_lines(&lines), vec![Verdict::Keep; 3]);
    }

    #[test]
    fn fingerprint_hashes_the_effective_chunk_size() {
        // The run loop clamps a raw 0 (set through the pub field) to 1,
        // so the fingerprint must too: both specs chunk the grid
        // identically and must accept each other's resume journals.
        let keys = [1u64, 2, 3];
        let mut zero = CheckSpec::new("t");
        zero.chunk_windows = 0;
        let one = CheckSpec::new("t").chunk_windows(1);
        assert_eq!(zero.fingerprint(&keys), one.fingerprint(&keys));
        let two = CheckSpec::new("t").chunk_windows(2);
        assert_ne!(one.fingerprint(&keys), two.fingerprint(&keys));
    }

    #[test]
    fn undecodable_journal_lines_are_counted_in_the_report() {
        let spec = CheckSpec::new("diag")
            .apps([crate::testprog::war_counter_app(3)])
            .schemes([SchemeKind::Gecko])
            .explore(ExploreConfig::default().with_max_windows(6));
        let journal = Arc::new(Journal::memory());
        journal.append(r#"{"kind":"chunk_done","run_key":"oops"}"#);
        let report = CheckCampaign::new(spec).journal(journal).run().unwrap();
        assert_eq!(report.counters.journal_diagnostics, 1);
        assert!(report.is_clean());
    }
}
