//! Snapshot-fork exploration: enumerate every failure window of the
//! golden trace, fork, inject, and check the post-recovery run.
//!
//! The naive check is O(n²): for each of the n windows, re-execute the
//! prefix from cold and then the suffix to completion. The checker instead
//! walks the golden trace *once*; at each window it captures a
//! [`gecko_sim::SimSnapshot`], injects the fault, follows the recovery to
//! completion, and rewinds — amortized O(n) plus the (memoized) recovery
//! suffixes. Explorations whose post-recovery resume state hashes equal to
//! one already checked are answered from the memo table (see DESIGN.md §10
//! for why the logical-state hash is a sound memo key under an undisturbed
//! bench supply).

use std::collections::{BTreeSet, HashMap};

use gecko_sim::device::CompiledApp;
use gecko_sim::{SimConfig, Simulator};

use crate::verdict::{Blame, CheckStats, InjectionKind, Outcome, PlannedInjection, Violation};

/// Exploration policy for one check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExploreConfig {
    /// Injection depth: 1 checks every single-fault schedule, 2 addition-
    /// ally re-injects a nested fault at every offset within
    /// `refail_horizon` of each primary injection's recovery.
    pub depth: u32,
    /// Enumerate plain power-failure windows.
    pub power_failure_windows: bool,
    /// Enumerate EMI windows (spoofed checkpoint signals; at depth ≥ 2
    /// also spoofed wake-ups during recovery sleeps).
    pub emi_windows: bool,
    /// Enumerate EM instruction-fault windows (skip and corrupt, primary
    /// only). Off by default: fault checking is opt-in, and judged
    /// against the faulted-continuous reference — a fault alone rewrites
    /// what a correct execution computes, so only divergence *between*
    /// the crashed and uncrashed faulted runs (or a livelock) counts as a
    /// violation. See DESIGN.md §17.
    pub fault_windows: bool,
    /// How many qualifying steps past a primary injection nested faults
    /// are attempted at (offsets 1..=horizon).
    pub refail_horizon: u64,
    /// Memoize explorations on the post-recovery state hash.
    pub memoize: bool,
    /// Check only the first `n` windows of the golden trace (`None` =
    /// every window — the exhaustive default). Smoke/quick runs cap this.
    pub max_windows: Option<u64>,
    /// Peripheral seed (must match across golden run and exploration).
    pub seed: u64,
    /// Coalesce simulation spans through the simulator's fast paths —
    /// post-injection recharge hibernation
    /// ([`gecko_sim::Simulator::set_fast_forward`]) and event-horizon
    /// active stepping ([`gecko_sim::Simulator::set_event_horizon`]).
    /// Observably identical either way — verdicts, violations and even
    /// `CheckStats::steps` match bit for bit; `false` forces the
    /// per-step reference paths the differential tests compare against.
    pub fast_forward: bool,
}

impl Default for ExploreConfig {
    fn default() -> ExploreConfig {
        ExploreConfig {
            depth: 1,
            power_failure_windows: true,
            emi_windows: true,
            fault_windows: false,
            refail_horizon: 24,
            memoize: true,
            max_windows: None,
            seed: 7,
            fast_forward: true,
        }
    }
}

impl ExploreConfig {
    /// Builder: set the injection depth.
    pub fn with_depth(mut self, depth: u32) -> ExploreConfig {
        self.depth = depth;
        self
    }

    /// Builder: cap the number of windows.
    pub fn with_max_windows(mut self, n: u64) -> ExploreConfig {
        self.max_windows = Some(n);
        self
    }

    /// Builder: enable or disable EM instruction-fault windows.
    pub fn with_fault_windows(mut self, enabled: bool) -> ExploreConfig {
        self.fault_windows = enabled;
        self
    }

    /// The primary injection kinds this config enumerates. Spoofed
    /// wake-ups are nested-only: on the (always-on) golden trace they are
    /// no-ops. The EM fault kinds are primary-only: their depth-1 outcome
    /// doubles as the faulted-continuous reference the nested outcomes
    /// are judged against.
    pub fn primary_kinds(&self) -> Vec<InjectionKind> {
        let mut kinds = Vec::new();
        if self.power_failure_windows {
            kinds.push(InjectionKind::PowerFailure);
        }
        if self.emi_windows {
            kinds.push(InjectionKind::SpoofedCheckpoint);
        }
        if self.fault_windows {
            kinds.push(InjectionKind::InstructionSkip);
            kinds.push(InjectionKind::InstructionCorrupt);
        }
        kinds
    }

    /// The nested (depth-2) injection kinds. Never includes the EM fault
    /// kinds (see [`ExploreConfig::primary_kinds`]).
    pub fn nested_kinds(&self) -> Vec<InjectionKind> {
        let mut kinds = vec![InjectionKind::PowerFailure];
        if self.emi_windows {
            kinds.push(InjectionKind::SpoofedCheckpoint);
            kinds.push(InjectionKind::SpoofedWakeup);
        }
        kinds
    }
}

/// A fresh bench-supply simulator for checking `compiled`. The checker
/// always runs on the bench supply: failures come from the injection
/// schedule, never the harvester, so every divergence from the golden
/// trace is one the checker chose (and the memo hash stays sound).
pub(crate) fn checker_sim(compiled: &CompiledApp, seed: u64, fast_forward: bool) -> Simulator {
    let mut config = SimConfig::bench_supply(compiled.scheme);
    config.seed = seed;
    let mut sim = Simulator::from_compiled(compiled, config);
    sim.set_fast_forward(fast_forward);
    sim.set_event_horizon(fast_forward);
    sim
}

/// Step budget for one exploration: any legitimate recovery replays at
/// most the whole run plus per-failure reboot/recharge sleeps.
pub(crate) fn explore_budget(golden_steps: u64) -> u64 {
    4 * golden_steps + 100_000
}

/// Measures the failure-free golden trace: the number of simulation steps
/// to the first completion. Every step index in `0..steps` is a failure
/// window.
///
/// # Errors
///
/// [`GoldenError::DidNotComplete`] if the app exceeds its step budget,
/// [`GoldenError::Mismatch`] if the failure-free run itself produces the
/// wrong checksum (the artifact is broken before any fault is injected).
pub fn golden_steps(compiled: &CompiledApp, seed: u64) -> Result<u64, GoldenError> {
    let mut sim = checker_sim(compiled, seed, true);
    let budget = compiled.app.step_budget();
    // `run_capped` drains through the same `advance_to_horizon` seam as
    // every other run loop; the step count it returns is bit-identical to
    // the per-step walk it replaced.
    let steps = sim.run_capped(f64::INFINITY, 1, budget);
    if sim.metrics.completions < 1 {
        return Err(GoldenError::DidNotComplete { budget });
    }
    if sim.metrics.checksum_errors > 0 {
        return Err(GoldenError::Mismatch {
            got: sim.nvm().read(compiled.app.checksum_addr) as i64,
            expected: compiled.app.expected_checksum as i64,
        });
    }
    Ok(steps)
}

/// Why a golden run failed (making the pair uncheckable).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GoldenError {
    /// No completion within the app's step budget.
    DidNotComplete {
        /// The budget that was exhausted.
        budget: u64,
    },
    /// The failure-free run already produces the wrong checksum.
    Mismatch {
        /// Checksum the golden run produced.
        got: i64,
        /// The app's expected checksum.
        expected: i64,
    },
}

impl std::fmt::Display for GoldenError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GoldenError::DidNotComplete { budget } => {
                write!(f, "golden run did not complete within {budget} steps")
            }
            GoldenError::Mismatch { got, expected } => {
                write!(f, "golden run checksum {got} != expected {expected}")
            }
        }
    }
}

/// The memo table: post-recovery state hash → observed outcome. One table
/// per work-item chunk, so memo-hit counts are worker-count-invariant.
pub(crate) type MemoTable = HashMap<u64, Outcome>;

/// A memo table plus the insertion log of entries discovered *this run*
/// (restored entries are preloaded into the table only). The log is what a
/// persistent store flushes: replaying it over the restored entries
/// rebuilds the table exactly.
pub(crate) struct MemoLog {
    table: MemoTable,
    log: Vec<(u64, Outcome)>,
}

impl MemoLog {
    fn preloaded(entries: &[(u64, Outcome)]) -> MemoLog {
        MemoLog {
            table: entries.iter().copied().collect(),
            log: Vec::new(),
        }
    }
}

/// Resumable progress of one window slab: everything a mid-slab restart
/// needs to continue bit-exactly where a killed run stopped.
#[derive(Debug, Clone, Default)]
pub(crate) struct SlabPrefix {
    /// Windows of the slab already checked (the next window is
    /// `start + windows_done`).
    pub windows_done: u64,
    /// Cumulative counters over those windows.
    pub stats: CheckStats,
    /// Violations found in those windows, in window order.
    pub violations: Vec<Violation>,
    /// Raw region ids blamed by any fork so far.
    pub regions: BTreeSet<u32>,
    /// Memo entries to preload (state hash → outcome).
    pub memo: Vec<(u64, Outcome)>,
}

/// Final result of one slab: cumulative counters, violations in window
/// order, and every region any fork blamed (the invalidation footprint a
/// persistent memo keys on).
pub(crate) struct SlabOutcome {
    /// Cumulative counters (prefix included when resumed).
    pub stats: CheckStats,
    /// Violations in window order (prefix included when resumed).
    pub violations: Vec<Violation>,
    /// Raw region ids blamed by any fork of the slab.
    pub regions: BTreeSet<u32>,
}

/// A read-only view of slab progress, handed to the observer after every
/// completed window. All fields are cumulative over the slab (including a
/// restored prefix), except `fresh_memo`, which holds only the memo
/// entries discovered this run — exactly what a durable store has not yet
/// seen.
pub(crate) struct SlabProgress<'a> {
    /// Windows completed so far (absolute within the slab).
    pub windows_done: u64,
    /// Cumulative counters.
    pub stats: &'a CheckStats,
    /// Violations so far, in window order.
    pub violations: &'a [Violation],
    /// Regions blamed so far.
    pub regions: &'a BTreeSet<u32>,
    /// Memo entries discovered this run, in insertion order.
    pub fresh_memo: &'a [(u64, Outcome)],
}

/// Observes slab progress window by window — the persistence seam. The
/// exploration loop is observer-blind: verdicts, counters and step counts
/// are bit-identical whatever the observer does.
pub(crate) trait ExploreObserver {
    /// Called after each window completes (the simulator is already
    /// repositioned on the next window).
    fn window_done(&mut self, progress: SlabProgress<'_>);
}

/// The no-op observer ([`check_windows`] uses it).
pub(crate) struct NullObserver;

impl ExploreObserver for NullObserver {
    fn window_done(&mut self, _progress: SlabProgress<'_>) {}
}

/// Explores the windows `start..end` of the golden trace and returns the
/// chunk's counters and violations (in window order). `golden` is the
/// trace length from [`golden_steps`]; `end` must not exceed it.
pub(crate) fn check_windows(
    compiled: &CompiledApp,
    cfg: &ExploreConfig,
    start: u64,
    end: u64,
    golden: u64,
) -> (CheckStats, Vec<Violation>) {
    let (out, _) = check_windows_resumed(
        compiled,
        cfg,
        start,
        end,
        golden,
        None,
        None,
        &mut NullObserver,
    );
    (out.stats, out.violations)
}

/// The resumable core of [`check_windows`]: explores windows
/// `start + prefix.windows_done .. end`, continuing from a restored
/// [`SlabPrefix`] (counters, violations, regions and memo preload) and —
/// when the caller hands back a simulator already positioned on the first
/// unchecked window — reusing it instead of re-advancing a fresh one from
/// step 0. Returns the slab outcome plus the simulator positioned at
/// `end`, ready to carry into an adjacent slab.
///
/// Resume determinism: the memo table is per-slab and `settle_and_check`
/// replays restored entries as hits, so a run resumed mid-slab produces
/// the same cumulative `CheckStats` (and identical violations) as an
/// uninterrupted run of the whole slab — the repositioning `advance` is
/// not counted in `stats.steps` either way.
#[allow(clippy::too_many_arguments)]
pub(crate) fn check_windows_resumed(
    compiled: &CompiledApp,
    cfg: &ExploreConfig,
    start: u64,
    end: u64,
    golden: u64,
    carry: Option<Simulator>,
    prefix: Option<SlabPrefix>,
    observer: &mut dyn ExploreObserver,
) -> (SlabOutcome, Simulator) {
    debug_assert!(end <= golden);
    let budget = explore_budget(golden);
    let primary = cfg.primary_kinds();
    let nested = cfg.nested_kinds();
    let prefix = prefix.unwrap_or_default();
    let first = start + prefix.windows_done.min(end.saturating_sub(start));
    let mut memo = MemoLog::preloaded(&prefix.memo);
    let mut stats = prefix.stats;
    let mut violations = prefix.violations;
    let mut regions = prefix.regions;

    let mut sim = match carry {
        Some(sim) => sim,
        None => {
            let mut sim = checker_sim(compiled, cfg.seed, cfg.fast_forward);
            // Reposition onto the golden trace at the first unchecked
            // window. `advance` coalesces where it can and lands
            // bit-identically to `first` individual steps.
            sim.advance(first);
            sim
        }
    };

    for window in first..end {
        stats.windows += 1;
        let base = sim.snapshot();
        for &kind in &primary {
            // Depth 1: the primary fault alone.
            stats.forks += 1;
            kind.inject(&mut sim);
            let blame = if kind.is_em_fault() {
                Blame::capture_faulted(&sim, compiled, kind)
            } else {
                Blame::capture(&sim, compiled)
            };
            if let Some(r) = blame.region {
                regions.insert(r.index() as u32);
            }
            let outcome = settle_and_check(&mut sim, compiled, cfg, budget, &mut memo, &mut stats);
            // The oracle. For the classic kinds the reference execution is
            // the golden run, so any corrupt completion violates. For the
            // EM fault kinds the depth-1 outcome *is* the reference — the
            // fault alone rewrites what a correct-but-faulted execution
            // computes — so at depth 1 only a livelock violates, and
            // nested outcomes below are judged against this reference.
            let reference = if kind.is_em_fault() {
                outcome
            } else {
                Outcome::Clean
            };
            let violated = if kind.is_em_fault() {
                outcome == Outcome::Stuck
            } else {
                outcome.is_violation()
            };
            if violated {
                stats.violations += 1;
                violations.push(Violation {
                    window,
                    schedule: vec![PlannedInjection {
                        after_steps: window,
                        kind,
                    }],
                    outcome,
                    blame,
                });
            }
            // Depth 2: a nested fault at every offset of the recovery.
            if cfg.depth >= 2 {
                sim.restore(&base);
                kind.inject(&mut sim);
                // Captured at the fault point: nested blames prepend this
                // so a fault-then-crash counterexample names the faulted
                // region, not just the rollback it later triggers.
                let fault_site = kind
                    .is_em_fault()
                    .then(|| Blame::fault_site(&sim, compiled, kind));
                let after_primary = sim.snapshot();
                for &nk in &nested {
                    sim.restore(&after_primary);
                    let mut advanced = 0u64;
                    for offset in 1..=cfg.refail_horizon {
                        if !advance_qualifying(&mut sim, nk, offset - advanced, budget, &mut stats)
                        {
                            break;
                        }
                        advanced = offset;
                        stats.forks += 1;
                        let resume = sim.snapshot();
                        nk.inject(&mut sim);
                        let mut blame2 = Blame::capture(&sim, compiled);
                        if let Some(r) = blame2.region {
                            regions.insert(r.index() as u32);
                        }
                        if let Some(site) = &fault_site {
                            blame2.detail = format!("{site}; then {}", blame2.detail);
                        }
                        let outcome2 = settle_and_check(
                            &mut sim, compiled, cfg, budget, &mut memo, &mut stats,
                        );
                        // Judged against the reference: a corrupt
                        // completion that matches the faulted-continuous
                        // run is the *expected* result of the fault, not
                        // a violation of the checkpoint scheme.
                        if outcome2 == Outcome::Stuck
                            || (outcome2.is_violation() && outcome2 != reference)
                        {
                            stats.violations += 1;
                            violations.push(Violation {
                                window,
                                schedule: vec![
                                    PlannedInjection {
                                        after_steps: window,
                                        kind,
                                    },
                                    PlannedInjection {
                                        after_steps: offset,
                                        kind: nk,
                                    },
                                ],
                                outcome: outcome2,
                                blame: blame2,
                            });
                        }
                        sim.restore(&resume);
                    }
                }
            }
            sim.restore(&base);
        }
        // Advance the golden trace to the next window.
        sim.step_one();
        observer.window_done(SlabProgress {
            windows_done: window + 1 - start,
            stats: &stats,
            violations: &violations,
            regions: &regions,
            fresh_memo: &memo.log,
        });
    }
    (
        SlabOutcome {
            stats,
            violations,
            regions,
        },
        sim,
    )
}

/// Advances `n` qualifying steps for injection kind `kind` (see
/// [`InjectionKind::counts_step`]). Returns `false` — the injection point
/// is unreachable — if the run completes or the budget runs out first.
pub(crate) fn advance_qualifying(
    sim: &mut Simulator,
    kind: InjectionKind,
    n: u64,
    budget: u64,
    stats: &mut CheckStats,
) -> bool {
    let mut qualifying = 0u64;
    let mut total = 0u64;
    while qualifying < n {
        if sim.metrics.completions >= 1 || total >= budget {
            return false;
        }
        let counts = kind.counts_step(sim);
        sim.step_one();
        stats.steps += 1;
        total += 1;
        if counts {
            qualifying += 1;
        }
    }
    sim.metrics.completions < 1
}

/// Follows an injected fault through recovery and to the next completion,
/// memoized on the post-recovery state hash. The device first sleeps and
/// recharges (or is already on, for no-op injections); once it is back on,
/// the logical state determines the run's outcome, so that is the memo
/// point.
fn settle_and_check(
    sim: &mut Simulator,
    compiled: &CompiledApp,
    cfg: &ExploreConfig,
    budget: u64,
    memo: &mut MemoLog,
    stats: &mut CheckStats,
) -> Outcome {
    // Recovery phase: recharge, debounced wake, boot, restore. Sleeping
    // spans advance through the fast-forward-aware batch primitive; it
    // takes at most `budget - settle` steps and stops the moment the
    // device wakes, so the step accounting (and the Stuck verdict) is
    // identical to stepping one tick at a time.
    let mut settle = 0u64;
    while !sim.is_on() {
        if settle >= budget {
            return Outcome::Stuck;
        }
        let n = sim.advance_sleep(budget - settle);
        stats.steps += n;
        settle += n;
    }
    if sim.metrics.completions >= 1 {
        return outcome_of(sim, compiled);
    }
    let key = sim.state_hash();
    if cfg.memoize {
        if let Some(&cached) = memo.table.get(&key) {
            stats.memo_hits += 1;
            return cached;
        }
    }
    stats.explored += 1;
    // Drain to the next completion through `run_capped` — the same
    // `advance_to_horizon` seam as every run loop, coalescing both
    // recharge hibernation and active execution. The returned step count
    // is bit-identical to the per-step walk this replaced, so the Stuck
    // budget and `CheckStats::steps` are unchanged.
    let mut total = 0u64;
    let outcome = loop {
        if total >= budget {
            break Outcome::Stuck;
        }
        let n = sim.run_capped(f64::INFINITY, 1, budget - total);
        stats.steps += n;
        total += n;
        if sim.metrics.completions >= 1 {
            break outcome_of(sim, compiled);
        }
    };
    if cfg.memoize {
        memo.table.insert(key, outcome);
        memo.log.push((key, outcome));
    }
    outcome
}

/// Classifies a completed run.
pub(crate) fn outcome_of(sim: &Simulator, compiled: &CompiledApp) -> Outcome {
    if sim.metrics.checksum_errors > 0 {
        Outcome::Corrupt {
            got: sim.nvm().read(compiled.app.checksum_addr),
        }
    } else {
        Outcome::Clean
    }
}
