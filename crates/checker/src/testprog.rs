//! Purpose-built probe programs for exercising the checker itself.
//!
//! The bundled benchmarks keep their working state in registers and write
//! outputs exactly once, which makes them *idempotent*: re-executing any
//! prefix is harmless, so NVP passes single-fault checks on them. Proving
//! the checker detects real bugs needs a program that is **not**
//! idempotent — one with a WAR (load-then-store) dependency on persistent
//! memory — and that is what [`war_counter_app`] provides.

use gecko_apps::App;
use gecko_isa::{BinOp, Cond, ProgramBuilder, Reg, Word};

/// A deliberately non-idempotent counter: each loop iteration
/// read-modify-writes a persistent NVM counter (a WAR dependency), and the
/// final checksum is the counter itself.
///
/// The entry block *resets* the counter, so plain power failures are
/// harmless under NVP — a cold restart re-runs the reset and recounts.
/// What breaks it is NVP's JIT checkpoint double-execution hazard: a
/// (spoofable) checkpoint inside the loop followed by a dirty death
/// re-restores the same checkpoint and repeats increments that already
/// landed in NVM, so the counter overshoots. Ratchet and GECKO cut a
/// region boundary across the WAR and stay correct — exactly the
/// separation the checker must demonstrate.
pub fn war_counter_app(iterations: Word) -> App {
    assert!(iterations > 0, "need at least one iteration");
    let mut b = ProgramBuilder::new("warcount");
    let out = b.segment("out", 2, true); // [0] checksum, [1] counter

    let (i, acc, base) = (Reg::R1, Reg::R2, Reg::R3);
    b.mov(base, out as i32);
    b.mov(i, 0);
    b.store(i, base, 1); // reset the counter: cold restarts stay safe
    let head = b.new_label("head");
    let body = b.new_label("body");
    let exit = b.new_label("exit");
    b.bind(head);
    b.set_loop_bound(iterations as u32);
    b.branch(Cond::Lt, i, iterations, body, exit);
    b.bind(body);
    b.load(acc, base, 1); // WAR: read the persistent counter ...
    b.bin(BinOp::Add, acc, acc, 1);
    b.store(acc, base, 1); // ... and write it back
    b.bin(BinOp::Add, i, i, 1);
    b.jump(head);
    b.bind(exit);
    b.load(acc, base, 1);
    b.store(acc, base, 0); // checksum: the final counter value
    b.halt();

    App {
        name: "warcount",
        program: b.finish().expect("warcount builds"),
        image: vec![],
        checksum_addr: out,
        expected_checksum: iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn golden_run_counts() {
        let app = war_counter_app(8);
        let mut nvm = gecko_mcu::Nvm::new(1 << 12);
        let mut periph = gecko_mcu::Peripherals::new(0);
        gecko_mcu::run_to_completion(&app.program, &mut nvm, &mut periph, 100_000).unwrap();
        assert_eq!(nvm.read(app.checksum_addr), 8);
    }
}
