//! **gecko-check** — the exhaustive crash-consistency model checker.
//!
//! The suite's flagship property is *crash-anywhere consistency*: a run
//! interrupted at any instruction boundary, under any EMI schedule, must
//! still complete with the golden checksum. The Monte-Carlo torture tests
//! sample that space; this crate enumerates it:
//!
//! * **Window enumeration** — every step of the failure-free golden trace
//!   is a failure window. At each window the checker injects a plain
//!   power failure and (for the EMI fault model) a spoofed checkpoint
//!   signal; at depth 2 it additionally re-injects a nested fault —
//!   power failure, spoofed checkpoint or spoofed wake-up — at every
//!   offset of the recovery that follows. With
//!   [`ExploreConfig::fault_windows`] it also injects EM instruction
//!   faults (skip / corrupt), judged against the faulted-continuous
//!   reference rather than the golden checksum (DESIGN.md §17).
//! * **Snapshot-fork exploration** — the golden trace is walked once;
//!   each window forks via [`gecko_sim::Simulator::snapshot`] /
//!   `restore` instead of re-executing the prefix from cold, turning the
//!   naive O(n²) sweep into amortized O(n) (the `checker_fork` bench in
//!   `crates/bench` measures the ratio).
//! * **Memoization** — explorations are deduped on an FNV hash of the
//!   post-recovery *logical* state; re-converged recoveries are answered
//!   from the memo table (soundness argument in DESIGN.md §10).
//! * **Counterexample shrinking** — a violating injection schedule is
//!   minimized by replay (drop injections, lower offsets) and blamed in
//!   `gecko-compiler` vocabulary: the committed region, its boundary and
//!   recovery actions, or the JIT checkpoint a double-execution resumed
//!   from.
//! * **Sharded campaigns** — the (app × scheme × window-chunk) grid fans
//!   out across a fleet-style worker pool; reports are deterministic and
//!   worker-count-invariant, certified by a digest.
//!
//! ```no_run
//! use gecko_check::{check_app, ExploreConfig};
//! use gecko_compiler::CompileOptions;
//! use gecko_sim::SchemeKind;
//!
//! let app = gecko_apps::app_by_name("blink").unwrap();
//! let report = check_app(
//!     &app,
//!     SchemeKind::Gecko,
//!     &CompileOptions::default(),
//!     &ExploreConfig::default(),
//! )
//! .unwrap();
//! assert!(report.is_clean());
//! ```

#![deny(missing_docs)]

pub mod campaign;
pub mod explore;
pub mod memostore;
pub mod shrink;
pub mod testprog;
pub mod verdict;

pub use campaign::{
    check_app, check_compiled, check_journal_diagnostics, check_summary, classify_check_lines,
    CheckCampaign, CheckError, CheckReport, CheckSpec, JournalDiagnostic,
};
pub use explore::{golden_steps, ExploreConfig, GoldenError};
pub use memostore::{classify_memo_lines, MemoStore};
pub use shrink::{replay, shrink_schedule};
pub use testprog::war_counter_app;
pub use verdict::{
    blame_dot, schedule_to_string, Blame, CheckStats, Counterexample, InjectionKind, Outcome,
    PairReport, PlannedInjection, VerdictRow, Violation,
};

#[cfg(test)]
mod tests {
    use super::*;
    use gecko_compiler::CompileOptions;
    use gecko_sim::SchemeKind;

    fn quick() -> bool {
        std::env::var_os("GECKO_QUICK").is_some()
    }

    #[test]
    fn blink_is_clean_under_gecko_at_depth_one() {
        let app = gecko_apps::app_by_name("blink").unwrap();
        let report = check_app(
            &app,
            SchemeKind::Gecko,
            &CompileOptions::default(),
            &ExploreConfig::default(),
        )
        .unwrap();
        assert!(report.is_clean(), "violations: {:?}", report.violations);
        assert_eq!(report.stats.windows, report.golden_steps);
        assert!(report.stats.forks >= 2 * report.golden_steps);
        assert!(
            report.stats.memo_hits > 0,
            "re-converged recoveries should memo-hit: {:?}",
            report.stats
        );
    }

    #[test]
    fn memoization_does_not_change_the_verdict() {
        let app = war_counter_app(6);
        let cfg = ExploreConfig {
            depth: 2,
            refail_horizon: 10,
            ..ExploreConfig::default()
        };
        let no_memo = ExploreConfig {
            memoize: false,
            ..cfg
        };
        let with = check_app(&app, SchemeKind::Nvp, &CompileOptions::default(), &cfg).unwrap();
        let without =
            check_app(&app, SchemeKind::Nvp, &CompileOptions::default(), &no_memo).unwrap();
        assert_eq!(with.violations, without.violations);
        assert_eq!(without.stats.memo_hits, 0);
        assert!(with.stats.explored < without.stats.explored);
    }

    #[test]
    fn war_counter_passes_rollback_schemes_at_depth_two() {
        if quick() {
            return;
        }
        let app = war_counter_app(6);
        let cfg = ExploreConfig {
            depth: 2,
            refail_horizon: 12,
            ..ExploreConfig::default()
        };
        for scheme in [SchemeKind::Ratchet, SchemeKind::Gecko] {
            let report = check_app(&app, scheme, &CompileOptions::default(), &cfg).unwrap();
            assert!(
                report.is_clean(),
                "{}: {:?}",
                scheme.name(),
                report.violations.first()
            );
        }
    }

    #[test]
    fn shrinker_minimizes_to_the_essential_schedule() {
        // Hand a deliberately padded schedule to the shrinker: the
        // power failure alone breaks nothing (cold restart re-runs the
        // counter reset), so a spoofed checkpoint + re-failure pair must
        // survive, and nothing else.
        let app = war_counter_app(6);
        let compiled = gecko_sim::device::CompiledApp::build(
            &app,
            SchemeKind::Nvp,
            &CompileOptions::default(),
        )
        .unwrap();
        let cfg = ExploreConfig::default();
        let golden = golden_steps(&compiled, cfg.seed).unwrap();
        // Find a real violation first.
        let report = check_compiled(
            &compiled,
            &ExploreConfig {
                depth: 2,
                power_failure_windows: false,
                refail_horizon: 12,
                ..ExploreConfig::default()
            },
        )
        .unwrap();
        let violation = report.violations.first().expect("NVP WAR violation");
        let shrunk = shrink_schedule(&compiled, &cfg, &violation.schedule, golden, 300);
        assert!(shrunk.outcome.is_violation());
        assert_eq!(
            shrunk.schedule.len(),
            2,
            "double-execution needs checkpoint + re-failure: {}",
            schedule_to_string(&shrunk.schedule)
        );
        assert_eq!(shrunk.schedule[0].kind, InjectionKind::SpoofedCheckpoint);
        assert!(shrunk.schedule.len() <= violation.schedule.len());
        let (confirm, _) = replay(&compiled, &cfg, &shrunk.schedule, golden);
        assert_eq!(confirm, shrunk.outcome, "shrunk schedule replays");
    }

    #[test]
    fn blame_dot_renders_the_faulting_block() {
        let app = gecko_apps::app_by_name("blink").unwrap();
        let compiled = gecko_sim::device::CompiledApp::build(
            &app,
            SchemeKind::Gecko,
            &CompileOptions::default(),
        )
        .unwrap();
        let sim = explore::checker_sim(&compiled, 7, true);
        let blame = Blame::capture(&sim, &compiled);
        let dot = blame_dot(&compiled.program, &blame).expect("gecko blame names a block");
        assert!(dot.starts_with("digraph blame"));
        assert!(dot.contains("color=red"));
    }

    #[test]
    fn fast_forward_does_not_change_the_report() {
        // The simulator's hibernation fast-forward must be invisible to the
        // checker: not just the verdict but the *entire* report — windows,
        // forks, explored count, memo hits and even the exact number of
        // simulation steps — must match the tick-exact reference.
        let app = war_counter_app(5);
        let windows = if quick() { 150 } else { 600 };
        let cfg = ExploreConfig {
            depth: 2,
            refail_horizon: 8,
            ..ExploreConfig::default()
        }
        .with_max_windows(windows);
        let no_ff = ExploreConfig {
            fast_forward: false,
            ..cfg
        };
        let fast = check_app(&app, SchemeKind::Gecko, &CompileOptions::default(), &cfg).unwrap();
        let exact = check_app(&app, SchemeKind::Gecko, &CompileOptions::default(), &no_ff).unwrap();
        assert_eq!(fast.violations, exact.violations);
        assert_eq!(fast.stats, exact.stats, "step-exact: same CheckStats");
        assert_eq!(fast.golden_steps, exact.golden_steps);
    }

    #[test]
    fn unknown_app_and_empty_grid_error() {
        assert!(matches!(
            CheckSpec::new("t").app_names(&["no-such-app"]),
            Err(CheckError::UnknownApp(_))
        ));
        let err = CheckCampaign::new(CheckSpec::new("t")).run().unwrap_err();
        assert!(matches!(err, CheckError::EmptyGrid));
    }
}
