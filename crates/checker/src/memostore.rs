//! The durable memo/frontier store: checker verdicts that survive the
//! process, on `gecko-store`'s segmented log.
//!
//! A checker campaign shards each (app, scheme) pair into window slabs.
//! This store persists, per slab (keyed by the chunk run key):
//!
//! * a **slab record** — how many windows are done, the cumulative
//!   [`CheckStats`], the violations (schedule + outcome; blame is rebuilt
//!   by deterministic replay on restore), the blamed-region set, and the
//!   program/region fingerprints the verdicts were proven against;
//! * **memo-state entries** — the in-slab memo table's fresh inserts
//!   (post-recovery state hash → outcome), each stamped with the window
//!   boundary (`upto`) it was flushed at, so a killed run resumes
//!   *mid-slab* with exactly the memo table an uninterrupted run would
//!   have had at that boundary.
//!
//! Soundness of reuse is change-driven (DESIGN.md §18): a slab restores
//! iff the whole-program fingerprint matches, **or** every region its
//! forks ever blamed fingerprints identically in the current artifact
//! ([`ProgramFingerprints::region_set_digest`]). Recompiling one region
//! therefore invalidates only the slabs blamed on it.
//!
//! Record vocabulary (single-line JSON, torn-write safe by construction):
//! `memo_meta` (store fingerprint + generation; a meta with a new
//! fingerprint clears everything), `memo_slab` (later wins per run key),
//! `memo_state` (append-only), `memo_drop` (clears one run key). The log
//! prunes under the standard [`gecko_store::Pruner`] budget via
//! [`classify_memo_lines`], which only ever deletes lines whose removal —
//! one by one or all at once — is invisible to `MemoStore::restore`.

use std::collections::{BTreeSet, HashMap};
use std::path::Path;
use std::sync::{Arc, Mutex};

use gecko_compiler::ProgramFingerprints;
use gecko_fleet::journal::{field, parse_flat_json, JsonScalar};
use gecko_fleet::lock_unpoisoned;
use gecko_fleet::telemetry::json_kv;
use gecko_sim::Value;
use gecko_store::{LogConfig, SegmentedLog, Verdict};

use crate::campaign::{
    decode_outcome, decode_schedule, encode_outcome, encode_schedule, ChunkLineError,
    JournaledViolation,
};
use crate::explore::{ExploreObserver, SlabOutcome, SlabProgress};
use crate::verdict::{CheckStats, Outcome, Violation};

const MEMO_META: &str = "memo_meta";
const MEMO_SLAB: &str = "memo_slab";
const MEMO_STATE: &str = "memo_state";
const MEMO_DROP: &str = "memo_drop";

/// Windows between [`SlabWriter`] flushes: small enough that a killed run
/// loses little work, large enough that the store never dominates the
/// exploration it is caching.
const FLUSH_WINDOWS: u64 = 32;

// ---------------------------------------------------------------------------
// Records
// ---------------------------------------------------------------------------

/// One slab's persisted verdict state.
#[derive(Debug, Clone, PartialEq)]
struct SlabRecord {
    start: u64,
    end: u64,
    done: u64,
    golden: u64,
    program_fp: u64,
    rfp: u64,
    regions: BTreeSet<u32>,
    stats: CheckStats,
    violations: Vec<JournaledViolation>,
}

/// One decoded line of the store's vocabulary.
#[derive(Debug, Clone, PartialEq)]
enum MemoLine {
    Meta {
        name: String,
        fingerprint: u64,
        generation: u64,
    },
    Slab {
        run_key: u64,
        rec: SlabRecord,
    },
    State {
        run_key: u64,
        upto: u64,
        state: u64,
        outcome: Outcome,
    },
    Drop {
        run_key: u64,
    },
}

fn encode_regions(regions: &BTreeSet<u32>) -> String {
    let parts: Vec<String> = regions.iter().map(u32::to_string).collect();
    parts.join(",")
}

fn decode_regions(text: &str) -> Result<BTreeSet<u32>, ChunkLineError> {
    if text.is_empty() {
        return Ok(BTreeSet::new());
    }
    text.split(',')
        .map(|part| {
            part.parse().map_err(|_| ChunkLineError::Malformed {
                path: "regions".to_string(),
            })
        })
        .collect()
}

fn encode_viols(violations: &[JournaledViolation]) -> String {
    let parts: Vec<String> = violations
        .iter()
        .map(|v| {
            format!(
                "{}|{}|{}",
                v.window,
                encode_schedule(&v.schedule),
                encode_outcome(v.outcome)
            )
        })
        .collect();
    parts.join(";")
}

fn decode_viols(text: &str) -> Result<Vec<JournaledViolation>, ChunkLineError> {
    let mut out = Vec::new();
    if text.is_empty() {
        return Ok(out);
    }
    for (vi, part) in text.split(';').enumerate() {
        let mut cols = part.splitn(3, '|');
        let mut col = |name: &str| {
            cols.next()
                .map(str::to_string)
                .ok_or_else(|| ChunkLineError::Malformed {
                    path: format!("viols[{vi}].{name}"),
                })
        };
        let window: u64 = col("window")?
            .parse()
            .map_err(|_| ChunkLineError::Malformed {
                path: format!("viols[{vi}].window"),
            })?;
        let schedule = decode_schedule(&col("schedule")?, &format!("viols[{vi}].schedule"))?;
        let outcome = decode_outcome(&col("outcome")?, &format!("viols[{vi}].outcome"))?;
        out.push(JournaledViolation {
            window,
            schedule,
            outcome,
        });
    }
    Ok(out)
}

fn encode_memo_line(line: &MemoLine) -> String {
    match line {
        MemoLine::Meta {
            name,
            fingerprint,
            generation,
        } => json_kv(&[
            ("kind", Value::Str(MEMO_META.to_string())),
            ("name", Value::Str(name.clone())),
            ("fingerprint", Value::U64(*fingerprint)),
            ("generation", Value::U64(*generation)),
        ]),
        MemoLine::Slab { run_key, rec } => json_kv(&[
            ("kind", Value::Str(MEMO_SLAB.to_string())),
            ("run_key", Value::U64(*run_key)),
            ("start", Value::U64(rec.start)),
            ("end", Value::U64(rec.end)),
            ("done", Value::U64(rec.done)),
            ("golden", Value::U64(rec.golden)),
            ("program_fp", Value::U64(rec.program_fp)),
            ("rfp", Value::U64(rec.rfp)),
            ("regions", Value::Str(encode_regions(&rec.regions))),
            ("windows", Value::U64(rec.stats.windows)),
            ("forks", Value::U64(rec.stats.forks)),
            ("explored", Value::U64(rec.stats.explored)),
            ("memo_hits", Value::U64(rec.stats.memo_hits)),
            ("steps", Value::U64(rec.stats.steps)),
            ("violations", Value::U64(rec.stats.violations)),
            ("viols", Value::Str(encode_viols(&rec.violations))),
        ]),
        MemoLine::State {
            run_key,
            upto,
            state,
            outcome,
        } => json_kv(&[
            ("kind", Value::Str(MEMO_STATE.to_string())),
            ("run_key", Value::U64(*run_key)),
            ("upto", Value::U64(*upto)),
            ("state", Value::U64(*state)),
            ("outcome", Value::Str(encode_outcome(*outcome))),
        ]),
        MemoLine::Drop { run_key } => json_kv(&[
            ("kind", Value::Str(MEMO_DROP.to_string())),
            ("run_key", Value::U64(*run_key)),
        ]),
    }
}

/// Decodes one parsed line. `None` means the line is not in this store's
/// vocabulary at all; `Some(Err(_))` is one of our kinds this binary
/// cannot use.
fn decode_memo_line(fields: &[(String, JsonScalar)]) -> Option<Result<MemoLine, ChunkLineError>> {
    let kind = field(fields, "kind")?.as_str()?;
    if !matches!(kind, MEMO_META | MEMO_SLAB | MEMO_STATE | MEMO_DROP) {
        return None;
    }
    let u = |name: &str| {
        field(fields, name)
            .and_then(JsonScalar::as_u64)
            .ok_or_else(|| ChunkLineError::Malformed {
                path: name.to_string(),
            })
    };
    let s = |name: &str| {
        field(fields, name)
            .and_then(JsonScalar::as_str)
            .map(str::to_string)
            .ok_or_else(|| ChunkLineError::Malformed {
                path: name.to_string(),
            })
    };
    Some((|| match kind {
        MEMO_META => Ok(MemoLine::Meta {
            name: s("name")?,
            fingerprint: u("fingerprint")?,
            generation: u("generation")?,
        }),
        MEMO_SLAB => Ok(MemoLine::Slab {
            run_key: u("run_key")?,
            rec: SlabRecord {
                start: u("start")?,
                end: u("end")?,
                done: u("done")?,
                golden: u("golden")?,
                program_fp: u("program_fp")?,
                rfp: u("rfp")?,
                regions: decode_regions(&s("regions")?)?,
                stats: CheckStats {
                    windows: u("windows")?,
                    forks: u("forks")?,
                    explored: u("explored")?,
                    memo_hits: u("memo_hits")?,
                    steps: u("steps")?,
                    violations: u("violations")?,
                },
                violations: decode_viols(&s("viols")?)?,
            },
        }),
        MEMO_STATE => Ok(MemoLine::State {
            run_key: u("run_key")?,
            upto: u("upto")?,
            state: u("state")?,
            outcome: decode_outcome(&s("outcome")?, "outcome")?,
        }),
        _ => Ok(MemoLine::Drop {
            run_key: u("run_key")?,
        }),
    })())
}

// ---------------------------------------------------------------------------
// The store
// ---------------------------------------------------------------------------

#[derive(Default)]
struct StoreState {
    saw_meta: bool,
    fingerprint: Option<u64>,
    generation: u64,
    slabs: HashMap<u64, SlabRecord>,
    states: HashMap<u64, Vec<(u64, u64, Outcome)>>,
}

impl StoreState {
    fn apply(&mut self, line: &MemoLine) {
        match line {
            MemoLine::Meta {
                fingerprint,
                generation,
                ..
            } => {
                // The first meta — and any meta announcing a different
                // spec fingerprint — clears the store: nothing recorded
                // under another spec (or before any spec was declared) is
                // safe to answer from.
                if !self.saw_meta || self.fingerprint != Some(*fingerprint) {
                    self.slabs.clear();
                    self.states.clear();
                }
                self.saw_meta = true;
                self.fingerprint = Some(*fingerprint);
                self.generation = *generation;
            }
            MemoLine::Slab { run_key, rec } => {
                self.slabs.insert(*run_key, rec.clone());
            }
            MemoLine::State {
                run_key,
                upto,
                state,
                outcome,
            } => self
                .states
                .entry(*run_key)
                .or_default()
                .push((*upto, *state, *outcome)),
            MemoLine::Drop { run_key } => {
                self.slabs.remove(run_key);
                self.states.remove(run_key);
            }
        }
    }
}

/// A restored slab: everything [`MemoStore::restore`] could validate
/// against the current artifact.
#[derive(Debug, Clone)]
pub(crate) struct RestoredSlab {
    /// Windows of the slab already checked (`done >= total` means the
    /// slab is complete and needs no re-exploration at all).
    pub done: u64,
    /// Total windows of the slab (`end - start`).
    pub total: u64,
    /// Cumulative counters over the done windows.
    pub stats: CheckStats,
    /// Violations found in the done windows (blame-free; rebuilt by
    /// replay).
    pub violations: Vec<JournaledViolation>,
    /// Regions blamed so far.
    pub regions: BTreeSet<u32>,
    /// Memo preload for a mid-slab resume (empty for complete slabs).
    pub memo: Vec<(u64, Outcome)>,
}

/// The durable memo/frontier store: decoded state of a
/// [`SegmentedLog`] of memo records, kept consistent with the log under
/// one lock. Open one per spec fingerprint (the serve layer keys the
/// directory on it); a `begin` with a different fingerprint clears the
/// store and bumps the generation.
pub struct MemoStore {
    log: Arc<SegmentedLog>,
    state: Mutex<StoreState>,
}

impl MemoStore {
    /// Opens (or creates) the store in `dir`, replaying every decodable
    /// record.
    ///
    /// # Errors
    ///
    /// Propagates the underlying [`SegmentedLog::open`] I/O error.
    pub fn open(dir: &Path) -> std::io::Result<MemoStore> {
        let log = Arc::new(SegmentedLog::open(dir, LogConfig::default())?);
        let mut state = StoreState::default();
        for line in log.lines() {
            let Some(fields) = parse_flat_json(&line) else {
                continue;
            };
            if let Some(Ok(memo_line)) = decode_memo_line(&fields) {
                state.apply(&memo_line);
            }
        }
        Ok(MemoStore {
            log,
            state: Mutex::new(state),
        })
    }

    /// The underlying log (for wiring into a [`gecko_store::Pruner`] via
    /// [`gecko_store::LogCompactor`] with [`classify_memo_lines`]).
    pub fn log(&self) -> Arc<SegmentedLog> {
        Arc::clone(&self.log)
    }

    /// Forces all appended records to stable storage.
    pub fn sync(&self) {
        let _ = self.log.sync();
    }

    /// The current memo generation: bumped whenever `begin` sees a new
    /// spec fingerprint (or a virgin store). A proof-of-clean digest names
    /// the generation it was proven against.
    pub fn generation(&self) -> u64 {
        lock_unpoisoned(&self.state).generation
    }

    /// Declares the spec this run checks. Same fingerprint as the last
    /// `begin` → the stored verdicts remain answerable and the generation
    /// is reused; different fingerprint (or a virgin store) → the store
    /// clears (fingerprint change only) and a new generation starts.
    /// Returns the generation this run's verdicts belong to.
    pub(crate) fn begin(&self, name: &str, fingerprint: u64) -> u64 {
        let mut s = lock_unpoisoned(&self.state);
        if s.fingerprint != Some(fingerprint) || !s.saw_meta {
            let line = MemoLine::Meta {
                name: name.to_string(),
                fingerprint,
                generation: s.generation + 1,
            };
            self.log.append(&encode_memo_line(&line));
            s.apply(&line);
        }
        s.generation
    }

    /// Validates and returns the stored slab for `run_key`, or `None`
    /// when nothing stored is sound to reuse: the golden trace length
    /// changed, or the program fingerprint changed *and* some blamed
    /// region's fingerprint changed with it (change-driven invalidation —
    /// a slab whose blamed regions all survive a recompile untouched
    /// stays valid). Memo entries are returned only for partial slabs,
    /// filtered to the flush boundary (`upto <= done`), so a torn write
    /// of trailing state lines is invisible.
    pub(crate) fn restore(
        &self,
        run_key: u64,
        golden: u64,
        fps: &ProgramFingerprints,
    ) -> Option<RestoredSlab> {
        let s = lock_unpoisoned(&self.state);
        let rec = s.slabs.get(&run_key)?;
        if rec.golden != golden {
            return None;
        }
        let valid = rec.program_fp == fps.program
            || (!rec.regions.is_empty()
                && fps.region_set_digest(rec.regions.iter().copied()) == Some(rec.rfp));
        if !valid {
            return None;
        }
        let total = rec.end.saturating_sub(rec.start);
        let memo = if rec.done < total {
            s.states
                .get(&run_key)
                .map(|entries| {
                    entries
                        .iter()
                        .filter(|(upto, _, _)| *upto <= rec.done)
                        .map(|&(_, state, outcome)| (state, outcome))
                        .collect()
                })
                .unwrap_or_default()
        } else {
            Vec::new()
        };
        Some(RestoredSlab {
            done: rec.done,
            total,
            stats: rec.stats,
            violations: rec.violations.clone(),
            regions: rec.regions.clone(),
            memo,
        })
    }

    fn has_records(&self, run_key: u64) -> bool {
        let s = lock_unpoisoned(&self.state);
        s.slabs.contains_key(&run_key) || s.states.contains_key(&run_key)
    }

    fn append_applied(&self, line: &MemoLine) {
        let mut s = lock_unpoisoned(&self.state);
        self.log.append(&encode_memo_line(line));
        s.apply(line);
    }
}

// ---------------------------------------------------------------------------
// The writer
// ---------------------------------------------------------------------------

/// Persists one slab's progress as it explores: an [`ExploreObserver`]
/// that flushes memo-state lines plus a cumulative slab record every
/// [`FLUSH_WINDOWS`] windows (entries first, then the slab record whose
/// `done` covers them — so a kill between the two leaves only orphaned
/// entries with `upto` past the last `done`, which restore filters out).
pub(crate) struct SlabWriter<'a> {
    store: &'a MemoStore,
    fps: &'a ProgramFingerprints,
    run_key: u64,
    start: u64,
    end: u64,
    golden: u64,
    /// Index into `fresh_memo` of the first unflushed entry.
    flushed: usize,
    /// `windows_done` at the last flush.
    last_flush: u64,
}

impl<'a> SlabWriter<'a> {
    /// A writer for the slab `start..end` of the pair fingerprinted by
    /// `fps`. `resumed_done` is the restored prefix length (0 for a
    /// from-scratch run); starting from scratch while the store still
    /// holds records for this key — an invalidated restore, or a retry
    /// after a partial flush — first drops them, so stale entries can
    /// never mix with the fresh run's.
    pub(crate) fn new(
        store: &'a MemoStore,
        fps: &'a ProgramFingerprints,
        run_key: u64,
        start: u64,
        end: u64,
        golden: u64,
        resumed_done: u64,
    ) -> SlabWriter<'a> {
        if resumed_done == 0 && store.has_records(run_key) {
            store.append_applied(&MemoLine::Drop { run_key });
        }
        SlabWriter {
            store,
            fps,
            run_key,
            start,
            end,
            golden,
            flushed: 0,
            last_flush: resumed_done,
        }
    }

    fn flush(
        &mut self,
        done: u64,
        stats: &CheckStats,
        violations: &[Violation],
        regions: &BTreeSet<u32>,
        fresh_memo: &[(u64, Outcome)],
    ) {
        // `finish` passes an empty slice with `flushed` still at the last
        // mid-slab boundary; saturate instead of indexing past the end.
        for &(state, outcome) in fresh_memo.get(self.flushed..).unwrap_or_default() {
            self.store.append_applied(&MemoLine::State {
                run_key: self.run_key,
                upto: done,
                state,
                outcome,
            });
        }
        let rec = SlabRecord {
            start: self.start,
            end: self.end,
            done,
            golden: self.golden,
            program_fp: self.fps.program,
            // 0 is never a valid digest output's guarantee — but an
            // unknown-region fallback only makes restore *refuse*, which
            // is the conservative direction.
            rfp: self
                .fps
                .region_set_digest(regions.iter().copied())
                .unwrap_or(0),
            regions: regions.clone(),
            stats: *stats,
            violations: violations
                .iter()
                .map(|v| JournaledViolation {
                    window: v.window,
                    schedule: v.schedule.clone(),
                    outcome: v.outcome,
                })
                .collect(),
        };
        self.store.append_applied(&MemoLine::Slab {
            run_key: self.run_key,
            rec,
        });
        self.flushed = fresh_memo.len();
        self.last_flush = done;
    }

    /// Seals the slab: writes the final record with `done = total`. State
    /// lines are not flushed here — a complete slab never preloads memo
    /// entries, so its trailing entries would be dead weight.
    pub(crate) fn finish(&mut self, outcome: &SlabOutcome) {
        let total = self.end.saturating_sub(self.start);
        self.flush(
            total,
            &outcome.stats,
            &outcome.violations,
            &outcome.regions,
            &[],
        );
    }
}

impl ExploreObserver for SlabWriter<'_> {
    fn window_done(&mut self, p: SlabProgress<'_>) {
        if p.windows_done >= self.last_flush + FLUSH_WINDOWS {
            self.flush(
                p.windows_done,
                p.stats,
                p.violations,
                p.regions,
                p.fresh_memo,
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Prune classifier
// ---------------------------------------------------------------------------

/// Classifies a memo log for [`gecko_store::LogCompactor`], marking
/// [`Verdict::Delete`] only on lines whose removal is invisible to
/// `MemoStore::restore` — and stays invisible if *any subset* of the
/// marked lines is removed (the compactor rewrites sealed segments only,
/// so marked lines in the active tail survive every prune):
///
/// * unparseable garbage and structurally broken records of our
///   vocabulary (no decoder sees them);
/// * records wiped by a later meta announcing a different fingerprint
///   (metas themselves are always kept — they *are* the clearing
///   structure — so the wipe happens with or without the wiped lines);
/// * slab records superseded by a later decodable record for the same
///   run key, and records killed by a later `memo_drop` of their key;
/// * state entries that can never be preloaded: their key's effective
///   slab is absent or complete, or their `upto` outruns its `done`
///   (orphans of a torn flush);
/// * drops with nothing before them to drop, and drops whose effect a
///   later meta-wipe reproduces.
///
/// Lines in a foreign vocabulary — and our-kind records carrying unknown
/// tags (a newer writer's data) — are kept.
pub fn classify_memo_lines(lines: &[String]) -> Vec<Verdict> {
    enum Parsed {
        Garbage,
        Foreign,
        Malformed,
        /// Our kind, unknown tags: forward-compatible data. The run key
        /// still parses on slab/state lines and blocks drop deletion.
        ForwardCompat {
            run_key: Option<u64>,
        },
        Line(MemoLine),
    }
    let parsed: Vec<Parsed> = lines
        .iter()
        .map(|line| {
            let Some(fields) = parse_flat_json(line) else {
                return Parsed::Garbage;
            };
            match decode_memo_line(&fields) {
                None => Parsed::Foreign,
                Some(Ok(memo_line)) => Parsed::Line(memo_line),
                Some(Err(ChunkLineError::Malformed { .. })) => Parsed::Malformed,
                Some(Err(ChunkLineError::UnknownTag { .. })) => Parsed::ForwardCompat {
                    run_key: field(&fields, "run_key").and_then(JsonScalar::as_u64),
                },
            }
        })
        .collect();

    // The wipe structure: metas are never deleted, so which meta clears
    // is fixed — everything before the last clearing meta is dead.
    let mut last_wipe: Option<usize> = None;
    {
        let mut saw_meta = false;
        let mut fp = None;
        for (i, p) in parsed.iter().enumerate() {
            if let Parsed::Line(MemoLine::Meta { fingerprint, .. }) = p {
                if !saw_meta || fp != Some(*fingerprint) {
                    last_wipe = Some(i);
                }
                saw_meta = true;
                fp = Some(*fingerprint);
            }
        }
    }
    let wiped = |i: usize| last_wipe.is_some_and(|w| i < w);

    // Last drop position per key, and whether any slab/state line (ours
    // or forward-compatible) precedes each drop.
    let mut last_drop: HashMap<u64, usize> = HashMap::new();
    for (i, p) in parsed.iter().enumerate() {
        if let Parsed::Line(MemoLine::Drop { run_key }) = p {
            last_drop.insert(*run_key, i);
        }
    }
    let dropped = |key: u64, i: usize| last_drop.get(&key).is_some_and(|&d| i < d);

    // Effective slab per key: the last decodable, un-wiped, un-dropped
    // record.
    let mut effective_slab: HashMap<u64, (usize, u64, u64)> = HashMap::new(); // key → (idx, done, total)
    for (i, p) in parsed.iter().enumerate() {
        if let Parsed::Line(MemoLine::Slab { run_key, rec }) = p {
            if !wiped(i) && !dropped(*run_key, i) {
                effective_slab.insert(*run_key, (i, rec.done, rec.end.saturating_sub(rec.start)));
            }
        }
    }

    let mut verdicts = vec![Verdict::Keep; lines.len()];
    let mut seen_keys: BTreeSet<u64> = BTreeSet::new();
    for (i, p) in parsed.iter().enumerate() {
        match p {
            Parsed::Garbage | Parsed::Malformed => verdicts[i] = Verdict::Delete,
            Parsed::Foreign => {}
            Parsed::ForwardCompat { run_key } => {
                if let Some(key) = run_key {
                    seen_keys.insert(*key);
                }
            }
            Parsed::Line(MemoLine::Meta { .. }) => {}
            Parsed::Line(MemoLine::Slab { run_key, .. }) => {
                seen_keys.insert(*run_key);
                let is_effective = effective_slab
                    .get(run_key)
                    .is_some_and(|&(at, _, _)| at == i);
                if !is_effective {
                    verdicts[i] = Verdict::Delete;
                }
            }
            Parsed::Line(MemoLine::State { run_key, upto, .. }) => {
                seen_keys.insert(*run_key);
                let dead = wiped(i)
                    || dropped(*run_key, i)
                    || match effective_slab.get(run_key) {
                        None => true,
                        Some(&(_, done, total)) => done >= total || *upto > done,
                    };
                if dead {
                    verdicts[i] = Verdict::Delete;
                }
            }
            Parsed::Line(MemoLine::Drop { run_key }) => {
                if !seen_keys.contains(run_key) || wiped(i) {
                    verdicts[i] = Verdict::Delete;
                }
            }
        }
    }
    verdicts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verdict::{InjectionKind, PlannedInjection};
    use std::path::PathBuf;

    fn scratch(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("gecko-memostore-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn store_from_lines(dir: &Path, lines: &[String]) -> MemoStore {
        let _ = std::fs::remove_dir_all(dir);
        {
            let log = SegmentedLog::open(dir, LogConfig::default()).unwrap();
            for line in lines {
                log.append(line);
            }
        }
        MemoStore::open(dir).unwrap()
    }

    fn fake_fps() -> ProgramFingerprints {
        ProgramFingerprints {
            program: 0x1111,
            regions: [(1, 0xA), (4, 0xB)].into_iter().collect(),
        }
    }

    fn sample_stats(windows: u64) -> CheckStats {
        CheckStats {
            windows,
            forks: 2 * windows,
            explored: windows,
            memo_hits: windows,
            steps: 10 * windows,
            violations: 0,
        }
    }

    fn slab_line(fps: &ProgramFingerprints, run_key: u64, done: u64, total: u64) -> String {
        let regions: BTreeSet<u32> = [1u32].into_iter().collect();
        encode_memo_line(&MemoLine::Slab {
            run_key,
            rec: SlabRecord {
                start: 0,
                end: total,
                done,
                golden: 100,
                program_fp: fps.program,
                rfp: fps.region_set_digest(regions.iter().copied()).unwrap(),
                regions,
                stats: sample_stats(done),
                violations: vec![JournaledViolation {
                    window: 3,
                    schedule: vec![PlannedInjection {
                        after_steps: 3,
                        kind: InjectionKind::PowerFailure,
                    }],
                    outcome: Outcome::Stuck,
                }],
            },
        })
    }

    fn state_line(run_key: u64, upto: u64, state: u64) -> String {
        encode_memo_line(&MemoLine::State {
            run_key,
            upto,
            state,
            outcome: Outcome::Clean,
        })
    }

    fn meta_line(fingerprint: u64, generation: u64) -> String {
        encode_memo_line(&MemoLine::Meta {
            name: "t".to_string(),
            fingerprint,
            generation,
        })
    }

    #[test]
    fn slabs_roundtrip_through_disk_and_validate_fingerprints() {
        let dir = scratch("roundtrip");
        let fps = fake_fps();
        let store = store_from_lines(
            &dir,
            &[
                meta_line(7, 1),
                state_line(42, 16, 0xDEAD),
                state_line(42, 48, 0xBEEF), // orphan: past the slab's done
                slab_line(&fps, 42, 32, 64),
            ],
        );
        assert_eq!(store.generation(), 1);
        let restored = store.restore(42, 100, &fps).expect("valid slab");
        assert_eq!((restored.done, restored.total), (32, 64));
        assert_eq!(restored.stats, sample_stats(32));
        assert_eq!(restored.violations.len(), 1);
        assert_eq!(restored.memo, vec![(0xDEAD, Outcome::Clean)]);

        // Wrong golden trace length: nothing to reuse.
        assert!(store.restore(42, 101, &fps).is_none());
        // Blamed region 1 recompiled: invalidated.
        let mut changed = fake_fps();
        changed.program = 0x2222;
        changed.regions.insert(1, 0xAA);
        assert!(store.restore(42, 100, &changed).is_none());
        // Only the *unblamed* region 4 changed: still sound to reuse.
        let mut unrelated = fake_fps();
        unrelated.program = 0x2222;
        unrelated.regions.insert(4, 0xBB);
        assert!(store.restore(42, 100, &unrelated).is_some());
    }

    #[test]
    fn begin_reuses_generation_for_same_fingerprint_and_clears_on_change() {
        let dir = scratch("begin");
        let store = store_from_lines(&dir, &[]);
        assert_eq!(store.begin("t", 7), 1);
        assert_eq!(store.begin("t", 7), 1, "same spec reuses the generation");

        let fps = fake_fps();
        let mut writer = SlabWriter::new(&store, &fps, 9, 0, 4, 100, 0);
        writer.finish(&SlabOutcome {
            stats: sample_stats(4),
            violations: Vec::new(),
            regions: BTreeSet::new(),
        });
        assert!(store.restore(9, 100, &fps).is_some());

        assert_eq!(store.begin("t", 8), 2, "new spec bumps the generation");
        assert!(
            store.restore(9, 100, &fps).is_none(),
            "and clears the store"
        );

        // Reopen: generation and emptiness survive the process.
        drop(store);
        let store = MemoStore::open(&dir).unwrap();
        assert_eq!(store.generation(), 2);
        assert!(store.restore(9, 100, &fps).is_none());
    }

    #[test]
    fn from_scratch_writer_drops_stale_records() {
        let dir = scratch("drop");
        let fps = fake_fps();
        let store = store_from_lines(
            &dir,
            &[
                meta_line(7, 1),
                state_line(5, 16, 0xAAAA),
                slab_line(&fps, 5, 16, 64),
            ],
        );
        assert!(store.restore(5, 100, &fps).is_some());
        // A retry (or invalidated restore) starts from scratch: the stale
        // partial records must not survive alongside the fresh run's.
        let writer = SlabWriter::new(&store, &fps, 5, 0, 64, 100, 0);
        assert!(store.restore(5, 100, &fps).is_none());
        let _ = writer;
        // And the drop is durable.
        drop(store);
        let store = MemoStore::open(&dir).unwrap();
        assert!(store.restore(5, 100, &fps).is_none());
    }

    /// The restore-observable face of a store: what every run key answers,
    /// plus the generation. Pruning must preserve this exactly.
    fn observable(store: &MemoStore, fps: &ProgramFingerprints, keys: &[u64]) -> Vec<String> {
        let mut out = vec![format!("generation={}", store.generation())];
        for &key in keys {
            out.push(format!("{key}: {:?}", store.restore(key, 100, fps)));
        }
        out
    }

    #[test]
    fn classifier_deletions_are_subset_safe() {
        let fps = fake_fps();
        let lines = vec![
            state_line(1, 8, 0x1), // pre-meta: wiped by the first meta
            meta_line(7, 1),
            slab_line(&fps, 1, 8, 64), // superseded below
            state_line(1, 8, 0x2),
            "garbage, not json".to_string(),
            r#"{"kind":"memo_slab","run_key":"oops"}"#.to_string(), // malformed
            r#"{"kind":"memo_state","run_key":3,"upto":1,"state":9,"outcome":"vaporized"}"#
                .to_string(), // unknown tag: forward-compatible, keep
            r#"{"kind":"other_store","run_key":1}"#.to_string(),    // foreign
            slab_line(&fps, 1, 32, 64),
            state_line(1, 32, 0x3),
            state_line(1, 48, 0x4),     // orphan: upto > done
            slab_line(&fps, 2, 64, 64), // complete
            state_line(2, 32, 0x5),     // dead: its slab is complete
            encode_memo_line(&MemoLine::Drop { run_key: 99 }), // nothing to drop
            meta_line(8, 2),            // different fp: wipes everything above
            slab_line(&fps, 4, 16, 64),
            state_line(4, 16, 0x6),
            encode_memo_line(&MemoLine::Drop { run_key: 4 }),
            slab_line(&fps, 4, 24, 64),
            state_line(4, 24, 0x7),
        ];
        let verdicts = classify_memo_lines(&lines);
        let keys = [1u64, 2, 3, 4, 99];
        let dir_a = scratch("subset-a");
        let baseline = observable(&store_from_lines(&dir_a, &lines), &fps, &keys);

        let deleted: Vec<usize> = (0..lines.len())
            .filter(|&i| verdicts[i] == Verdict::Delete)
            .collect();
        assert!(deleted.len() >= 8, "the fixture exercises deletions");
        // Metas and forward-compatible records are never deleted.
        for (i, line) in lines.iter().enumerate() {
            if line.contains("memo_meta") || line.contains("vaporized") {
                assert_eq!(verdicts[i], Verdict::Keep, "line {i}");
            }
        }

        // Removing each marked line alone — and all of them at once —
        // leaves the restore-observable state bit-identical.
        let mut subsets: Vec<Vec<usize>> = deleted.iter().map(|&i| vec![i]).collect();
        subsets.push(deleted.clone());
        for (si, subset) in subsets.iter().enumerate() {
            let kept: Vec<String> = lines
                .iter()
                .enumerate()
                .filter(|(i, _)| !subset.contains(i))
                .map(|(_, l)| l.clone())
                .collect();
            let dir = scratch(&format!("subset-{si}"));
            let pruned = observable(&store_from_lines(&dir, &kept), &fps, &keys);
            assert_eq!(baseline, pruned, "removing lines {subset:?} changed decode");
        }
    }

    #[test]
    fn mid_slab_flushes_restore_the_exact_boundary() {
        let dir = scratch("flush");
        let fps = fake_fps();
        let store = store_from_lines(&dir, &[meta_line(7, 1)]);
        let mut writer = SlabWriter::new(&store, &fps, 77, 100, 200, 500, 0);
        let stats = sample_stats(40);
        let violations: Vec<Violation> = Vec::new();
        let regions: BTreeSet<u32> = [1].into_iter().collect();
        let fresh: Vec<(u64, Outcome)> = (0..10u64).map(|i| (i, Outcome::Clean)).collect();
        // Below the flush threshold: nothing persisted yet.
        writer.window_done(SlabProgress {
            windows_done: 31,
            stats: &stats,
            violations: &violations,
            regions: &regions,
            fresh_memo: &fresh[..4],
        });
        assert!(store.restore(77, 500, &fps).is_none());
        // Crossing it: entries + slab record land, in that order.
        writer.window_done(SlabProgress {
            windows_done: 32,
            stats: &stats,
            violations: &violations,
            regions: &regions,
            fresh_memo: &fresh[..6],
        });
        let restored = store.restore(77, 500, &fps).expect("flushed");
        assert_eq!((restored.done, restored.total), (32, 100));
        assert_eq!(restored.memo.len(), 6);
        // Finish seals with done = total and no further state lines.
        writer.finish(&SlabOutcome {
            stats: sample_stats(100),
            violations: Vec::new(),
            regions: regions.clone(),
        });
        let full = store.restore(77, 500, &fps).expect("complete");
        assert_eq!((full.done, full.total), (100, 100));
        assert!(full.memo.is_empty(), "complete slabs preload nothing");
    }
}
