//! Verdict vocabulary: injection schedules, outcomes, blame and the
//! per-pair report the checker emits.

use std::fmt;

use gecko_isa::{BlockId, Program, RegionId, Word};
use gecko_mcu::{FaultEffect, Pc};
use gecko_sim::device::CompiledApp;
use gecko_sim::{SchemeKind, Simulator};

/// One kind of fault the checker can inject at a window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InjectionKind {
    /// Instantaneous total power failure (capacitor drained, volatile
    /// state lost) with no warning from the monitor.
    PowerFailure,
    /// EMI-spoofed checkpoint signal: the monitor falsely reports the
    /// supply collapsing, triggering the scheme's shutdown path while the
    /// capacitor is actually full (Section V).
    SpoofedCheckpoint,
    /// EMI-spoofed wake-up signal: a sleeping device boots early,
    /// bypassing the debounce.
    SpoofedWakeup,
    /// EM instruction-skip fault: the next retired instruction executes
    /// as a no-op (Moro et al.'s dominant fault). Judged against the
    /// faulted-continuous reference, not the golden checksum — see
    /// DESIGN.md §17.
    InstructionSkip,
    /// EM instruction-corruption fault: the next retired instruction
    /// decodes as a different operation (written values complemented,
    /// branches inverted).
    InstructionCorrupt,
}

impl InjectionKind {
    /// Stable lowercase name (used in schedules and JSON rows).
    pub fn name(self) -> &'static str {
        match self {
            InjectionKind::PowerFailure => "power-failure",
            InjectionKind::SpoofedCheckpoint => "spoofed-checkpoint",
            InjectionKind::SpoofedWakeup => "spoofed-wakeup",
            InjectionKind::InstructionSkip => "instruction-skip",
            InjectionKind::InstructionCorrupt => "instruction-corrupt",
        }
    }

    /// Applies this injection to a simulator.
    pub fn inject(self, sim: &mut Simulator) {
        match self {
            InjectionKind::PowerFailure => sim.inject_power_failure(),
            InjectionKind::SpoofedCheckpoint => sim.inject_spoofed_checkpoint(),
            InjectionKind::SpoofedWakeup => sim.inject_spoofed_wakeup(),
            InjectionKind::InstructionSkip => sim.inject_instruction_fault(FaultEffect::Skip),
            InjectionKind::InstructionCorrupt => {
                sim.inject_instruction_fault(FaultEffect::OpcodeCorrupt)
            }
        }
    }

    /// Whether a step counts toward this injection's offset: power
    /// failures, spoofed checkpoints and instruction faults land on
    /// executing (on) steps, spoofed wake-ups on sleep ticks.
    pub fn counts_step(self, sim: &Simulator) -> bool {
        match self {
            InjectionKind::SpoofedWakeup => !sim.is_on(),
            _ => sim.is_on(),
        }
    }

    /// Whether this kind rewrites the executed instruction stream (the EM
    /// fault kinds). Such injections change what a *correct* continuous
    /// execution would compute, so their outcomes are judged against the
    /// faulted-continuous reference instead of the golden checksum.
    pub fn is_em_fault(self) -> bool {
        matches!(
            self,
            InjectionKind::InstructionSkip | InjectionKind::InstructionCorrupt
        )
    }
}

impl fmt::Display for InjectionKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One element of an injection schedule: advance `after_steps` qualifying
/// steps (see [`InjectionKind::counts_step`]) past the previous injection
/// (or past reset, for the first element), then inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlannedInjection {
    /// Qualifying steps to advance before injecting.
    pub after_steps: u64,
    /// What to inject.
    pub kind: InjectionKind,
}

impl fmt::Display for PlannedInjection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "+{} {}", self.after_steps, self.kind)
    }
}

/// Renders a schedule as `+37 spoofed-checkpoint, +5 power-failure`.
pub fn schedule_to_string(schedule: &[PlannedInjection]) -> String {
    let parts: Vec<String> = schedule.iter().map(|p| p.to_string()).collect();
    parts.join(", ")
}

/// What an exploration observed after recovery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// The run completed with the golden checksum.
    Clean,
    /// The run completed with a wrong checksum — the crash-consistency
    /// contract is broken.
    Corrupt {
        /// The checksum the corrupted run produced.
        got: Word,
    },
    /// The run failed to complete within the step budget (lost progress /
    /// livelock after recovery).
    Stuck,
}

impl Outcome {
    /// Whether this outcome violates the crash-anywhere contract.
    pub fn is_violation(self) -> bool {
        !matches!(self, Outcome::Clean)
    }
}

impl fmt::Display for Outcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Outcome::Clean => write!(f, "clean"),
            Outcome::Corrupt { got } => write!(f, "corrupt (checksum {got})"),
            Outcome::Stuck => write!(f, "stuck (no completion within budget)"),
        }
    }
}

/// Where recovery would resume from at the injection point, in compiler
/// vocabulary — the metadata a violation report blames.
#[derive(Debug, Clone, PartialEq)]
pub struct Blame {
    /// The committed region a rollback scheme would resume from.
    pub region: Option<RegionId>,
    /// That region's boundary block.
    pub block: Option<BlockId>,
    /// Instruction index of the boundary within the block.
    pub boundary_index: Option<usize>,
    /// Slot restores the region's recovery performs.
    pub recovery_slots: usize,
    /// Recovery-block replays the region's recovery performs.
    pub recovery_recomputes: usize,
    /// The PC a valid JIT checkpoint would restore to (NVP/GECKO).
    pub checkpoint_pc: Option<Pc>,
    /// Human-readable one-liner naming the recovery target.
    pub detail: String,
}

impl Blame {
    /// Captures blame context from a simulator positioned right after an
    /// injection: whatever recovery the scheme would perform from here is
    /// what gets blamed if the continuation corrupts.
    pub fn capture(sim: &Simulator, compiled: &CompiledApp) -> Blame {
        let region = sim.committed_region();
        let info = region.and_then(|r| compiled.regions.get(r));
        let (slots, recomputes) = region
            .map(|r| compiled.recovery.action_counts(r))
            .unwrap_or((0, 0));
        let checkpoint_pc = sim.jit_checkpoint_pc();
        let detail = match compiled.scheme {
            SchemeKind::Nvp => match checkpoint_pc {
                Some(pc) => format!(
                    "valid JIT checkpoint restores to {}[{}]; NVP never invalidates it, so \
                     a re-failure re-executes everything since (double-execution hazard)",
                    pc.block, pc.index
                ),
                None => "no valid JIT checkpoint: recovery cold-restarts from the program entry"
                    .to_string(),
            },
            SchemeKind::Ratchet => match info {
                Some(i) => format!("rollback to committed {}", i.describe()),
                None => "no committed boundary: cold restart from the program entry".to_string(),
            },
            SchemeKind::Gecko | SchemeKind::GeckoNoPrune => {
                let loc = info
                    .map(|i| i.describe())
                    .unwrap_or_else(|| "the program entry".to_string());
                format!(
                    "rollback to committed {loc}; recovery restores {slots} slot(s) and \
                     replays {recomputes} recovery block(s)"
                )
            }
        };
        Blame {
            region,
            block: info.map(|i| i.block),
            boundary_index: info.map(|i| i.boundary_index),
            recovery_slots: slots,
            recovery_recomputes: recomputes,
            checkpoint_pc,
            detail,
        }
    }

    /// Like [`Blame::capture`], but for an armed EM instruction fault:
    /// the simulator's PC names the instruction the fault will land on
    /// (injection arms a one-shot consumed by the next retired step), and
    /// the detail says where that is relative to the committed boundary —
    /// a fault *after* the boundary is replayed by a rollback, one *at or
    /// before* it is already committed and sticks.
    pub fn capture_faulted(sim: &Simulator, compiled: &CompiledApp, kind: InjectionKind) -> Blame {
        let mut blame = Blame::capture(sim, compiled);
        blame.detail = format!(
            "{}; {}",
            Blame::fault_site(sim, compiled, kind),
            blame.detail
        );
        blame
    }

    /// The one-sentence fault-site description used by
    /// [`Blame::capture_faulted`]: which instruction the armed fault will
    /// land on, and where that is relative to the committed boundary.
    /// Nested explorations prepend this to their own rollback blame so a
    /// fault-then-crash counterexample still names the faulted region.
    pub(crate) fn fault_site(
        sim: &Simulator,
        compiled: &CompiledApp,
        kind: InjectionKind,
    ) -> String {
        let blame = Blame::capture(sim, compiled);
        let pc = sim.pc();
        let position = match (blame.block, blame.boundary_index) {
            (Some(block), Some(index)) if block == pc.block => {
                if pc.index > index {
                    "after the committed boundary in its block"
                } else {
                    "at or before the committed boundary"
                }
            }
            (Some(_), _) => "beyond the committed boundary block",
            _ => "with no committed boundary behind it",
        };
        format!(
            "EM {} lands on {}[{}] ({position})",
            kind.name(),
            pc.block,
            pc.index
        )
    }
}

impl fmt::Display for Blame {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.detail)
    }
}

/// A tiny graphviz digraph of just the blamed block — the focused
/// companion to [`gecko_isa::dot::to_dot`]'s whole-program rendering.
/// Returns `None` when the blame names no block (e.g. an NVP cold
/// restart, which has no region to draw).
pub fn blame_dot(program: &Program, blame: &Blame) -> Option<String> {
    let target = blame.block.or(blame.checkpoint_pc.map(|pc| pc.block))?;
    let block = program
        .blocks()
        .find(|(id, _)| *id == target)
        .map(|(_, b)| b)?;
    let mut lines: Vec<String> = Vec::with_capacity(block.insts.len() + 1);
    for inst in &block.insts {
        lines.push(format!("{inst}"));
    }
    let label = lines.join("\\l");
    Some(format!(
        "digraph blame {{\n  node [shape=box, fontname=\"monospace\"];\n  \
         \"{target}\" [label=\"{target}:\\l{label}\\l\", color=red];\n}}\n"
    ))
}

/// One crash-consistency violation: the injection schedule that produced
/// it, what went wrong, and the recovery metadata to blame.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// Golden-trace step index of the first injection.
    pub window: u64,
    /// The full injection schedule (first offset is from reset).
    pub schedule: Vec<PlannedInjection>,
    /// What the post-recovery run produced.
    pub outcome: Outcome,
    /// Recovery metadata at the final injection point.
    pub blame: Blame,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {} — {}",
            schedule_to_string(&self.schedule),
            self.outcome,
            self.blame
        )
    }
}

/// A minimized violation: the shortest / earliest schedule the shrinker
/// could confirm still violates.
#[derive(Debug, Clone, PartialEq)]
pub struct Counterexample {
    /// The shrunk schedule.
    pub schedule: Vec<PlannedInjection>,
    /// The outcome the shrunk schedule reproduces.
    pub outcome: Outcome,
    /// Blame at the shrunk schedule's final injection.
    pub blame: Blame,
    /// Replays the shrinker spent.
    pub replays: u64,
}

impl fmt::Display for Counterexample {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {} — {} ({} replays)",
            schedule_to_string(&self.schedule),
            self.outcome,
            self.blame,
            self.replays
        )
    }
}

/// Deterministic exploration counters for one (app, scheme) pair (or one
/// work-item chunk, before merging).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CheckStats {
    /// Failure windows enumerated.
    pub windows: u64,
    /// Forks taken (snapshots explored, primary and nested).
    pub forks: u64,
    /// Explorations run to completion (memo misses).
    pub explored: u64,
    /// Explorations answered by the state-hash memo table.
    pub memo_hits: u64,
    /// Simulation steps executed during exploration (the deterministic
    /// work measure the fork-vs-cold bench compares).
    pub steps: u64,
    /// Violations found.
    pub violations: u64,
}

impl CheckStats {
    /// Folds another stats block into this one.
    pub fn absorb(&mut self, other: &CheckStats) {
        self.windows += other.windows;
        self.forks += other.forks;
        self.explored += other.explored;
        self.memo_hits += other.memo_hits;
        self.steps += other.steps;
        self.violations += other.violations;
    }

    /// Fraction of forks answered from the memo table.
    pub fn memo_hit_rate(&self) -> f64 {
        if self.forks == 0 {
            0.0
        } else {
            self.memo_hits as f64 / self.forks as f64
        }
    }
}

/// The verdict for one (app, scheme) pair.
#[derive(Debug, Clone, PartialEq)]
pub struct PairReport {
    /// Application name.
    pub app: String,
    /// Scheme checked.
    pub scheme: SchemeKind,
    /// Steps of the failure-free golden trace.
    pub golden_steps: u64,
    /// Exploration depth used.
    pub depth: u32,
    /// Merged exploration counters.
    pub stats: CheckStats,
    /// Every violation found, in window order.
    pub violations: Vec<Violation>,
    /// The shrunk first violation, when any was found and shrinking ran.
    pub counterexample: Option<Counterexample>,
}

impl PairReport {
    /// Whether the pair passed exhaustively (no violations).
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Flattens the report into a JSON-serializable row.
    pub fn to_row(&self) -> VerdictRow {
        VerdictRow {
            app: self.app.clone(),
            scheme: self.scheme.name().to_string(),
            golden_steps: self.golden_steps,
            depth: self.depth as u64,
            windows: self.stats.windows,
            forks: self.stats.forks,
            explored: self.stats.explored,
            memo_hits: self.stats.memo_hits,
            steps: self.stats.steps,
            violations: self.stats.violations,
            shrunk_len: self
                .counterexample
                .as_ref()
                .map_or(0, |c| c.schedule.len() as u64),
            counterexample: self
                .counterexample
                .as_ref()
                .map(|c| format!("{c}"))
                .unwrap_or_default(),
        }
    }
}

/// A flat, JSON-lines-friendly projection of a [`PairReport`].
#[derive(Debug, Clone, PartialEq)]
pub struct VerdictRow {
    /// Application name.
    pub app: String,
    /// Scheme name.
    pub scheme: String,
    /// Golden-trace length in steps.
    pub golden_steps: u64,
    /// Exploration depth.
    pub depth: u64,
    /// Windows enumerated.
    pub windows: u64,
    /// Forks taken.
    pub forks: u64,
    /// Memo misses explored in full.
    pub explored: u64,
    /// Memo hits.
    pub memo_hits: u64,
    /// Exploration steps executed.
    pub steps: u64,
    /// Violations found.
    pub violations: u64,
    /// Length of the shrunk counterexample schedule (0 when clean).
    pub shrunk_len: u64,
    /// Rendered counterexample ("" when clean).
    pub counterexample: String,
}

gecko_sim::impl_record!(VerdictRow {
    app,
    scheme,
    golden_steps,
    depth,
    windows,
    forks,
    explored,
    memo_hits,
    steps,
    violations,
    shrunk_len,
    counterexample,
});
