//! Counterexample shrinking: minimize a violating injection schedule by
//! replay.
//!
//! The shrinker works on the schedule alone — each candidate is replayed
//! from reset on a fresh simulator, so a shrunk counterexample is
//! self-contained and reproducible without any exploration state. Two
//! passes repeat to a fixed point under a replay budget:
//!
//! 1. **Subset pass** — drop one injection at a time (folding its offset
//!    into its successor so later injections keep their absolute
//!    positions). A schedule that still violates with an injection removed
//!    never needed it.
//! 2. **Offset pass** — lower each injection's offset toward zero with the
//!    QuickCheck-style candidates `0`, `o/2`, `o-1`, keeping the earliest
//!    offset that still violates.
//!
//! Schedules containing EM instruction faults are judged against the
//! *faulted-continuous reference*: the replay of the schedule's leading
//! run of fault injections alone (see DESIGN.md §17). Lowering a fault's
//! offset moves the reference with it, so the reference is recomputed per
//! candidate; those replays count toward the replay budget.

use gecko_sim::device::CompiledApp;

use crate::explore::{advance_qualifying, checker_sim, explore_budget, outcome_of, ExploreConfig};
use crate::verdict::{Blame, CheckStats, Counterexample, Outcome, PlannedInjection};

/// Replays an injection schedule from reset and returns the outcome plus
/// the blame context at the final injection. A schedule whose injection
/// points are unreachable (the run completes first) is vacuously clean.
pub fn replay(
    compiled: &CompiledApp,
    cfg: &ExploreConfig,
    schedule: &[PlannedInjection],
    golden: u64,
) -> (Outcome, Blame) {
    let budget = explore_budget(golden);
    let mut sim = checker_sim(compiled, cfg.seed, cfg.fast_forward);
    let mut stats = CheckStats::default();
    let mut blame = Blame::capture(&sim, compiled);
    let mut fault_site: Option<String> = None;
    for inj in schedule {
        if !advance_qualifying(&mut sim, inj.kind, inj.after_steps, budget, &mut stats) {
            return (Outcome::Clean, blame);
        }
        inj.kind.inject(&mut sim);
        // Carry the most recent EM fault's site into later blames so a
        // fault-then-crash schedule still names the faulted region.
        blame = if inj.kind.is_em_fault() {
            let site = Blame::fault_site(&sim, compiled, inj.kind);
            let mut b = Blame::capture(&sim, compiled);
            b.detail = format!("{site}; {}", b.detail);
            fault_site = Some(site);
            b
        } else {
            let mut b = Blame::capture(&sim, compiled);
            if let Some(site) = &fault_site {
                b.detail = format!("{site}; then {}", b.detail);
            }
            b
        };
    }
    // Drain to the next completion through `run_capped` — the same
    // coalescing seam as exploration, with bit-identical step counts.
    let mut total = 0u64;
    loop {
        if total >= budget {
            return (Outcome::Stuck, blame);
        }
        total += sim.run_capped(f64::INFINITY, 1, budget - total);
        if sim.metrics.completions >= 1 {
            return (outcome_of(&sim, compiled), blame);
        }
    }
}

/// Shrinks a violating schedule to a minimal one, replaying at most
/// `max_replays` candidates. The input schedule must violate (the caller
/// found it by exploration); the result is confirmed by replay.
pub fn shrink_schedule(
    compiled: &CompiledApp,
    cfg: &ExploreConfig,
    schedule: &[PlannedInjection],
    golden: u64,
    max_replays: u64,
) -> Counterexample {
    let mut best = schedule.to_vec();
    let mut replays = 0u64;

    // Whether `outcome` (from replaying `candidate`) violates, judged
    // against the faulted-continuous reference: the replay of the
    // candidate's leading run of EM fault injections alone. Fault kinds
    // are generated primary-only, so that prefix is exact. With no faults
    // the reference is the golden run and this degenerates to the classic
    // any-corruption-violates oracle.
    let violates = |candidate: &[PlannedInjection], outcome: Outcome, replays: &mut u64| -> bool {
        match outcome {
            Outcome::Stuck => true,
            Outcome::Clean => false,
            Outcome::Corrupt { .. } => {
                let prefix: Vec<PlannedInjection> = candidate
                    .iter()
                    .copied()
                    .take_while(|p| p.kind.is_em_fault())
                    .collect();
                if prefix.is_empty() {
                    return true;
                }
                if prefix.len() == candidate.len() {
                    // The outcome *is* the reference.
                    return false;
                }
                if *replays >= max_replays {
                    // Budget exhausted mid-judgement: conservatively keep
                    // the previous best rather than accept unjudged.
                    return false;
                }
                *replays += 1;
                let (reference, _) = replay(compiled, cfg, &prefix, golden);
                outcome != reference
            }
        }
    };

    let (mut best_outcome, mut best_blame) = replay(compiled, cfg, &best, golden);
    replays += 1;
    let input_violates = violates(&best, best_outcome, &mut replays);
    debug_assert!(input_violates, "shrinker fed a non-violating schedule");
    let _ = input_violates;

    let try_candidate =
        |candidate: &[PlannedInjection], replays: &mut u64| -> Option<(Outcome, Blame)> {
            if *replays >= max_replays {
                return None;
            }
            *replays += 1;
            let (outcome, blame) = replay(compiled, cfg, candidate, golden);
            violates(candidate, outcome, replays).then_some((outcome, blame))
        };

    let mut improved = true;
    while improved && replays < max_replays {
        improved = false;
        // Subset pass: drop injections.
        if best.len() > 1 {
            let mut i = 0;
            while i < best.len() && best.len() > 1 {
                let mut candidate = best.clone();
                let removed = candidate.remove(i);
                if i < candidate.len() {
                    candidate[i].after_steps += removed.after_steps;
                }
                if let Some((o, b)) = try_candidate(&candidate, &mut replays) {
                    best = candidate;
                    best_outcome = o;
                    best_blame = b;
                    improved = true;
                    // Retry the same index: the successor moved into it.
                } else {
                    i += 1;
                }
            }
        }
        // Offset pass: lower each offset toward zero.
        for i in 0..best.len() {
            loop {
                let current = best[i].after_steps;
                if current == 0 {
                    break;
                }
                let candidates = [0, current / 2, current - 1];
                let mut lowered = false;
                for &c in &candidates {
                    if c >= current {
                        continue;
                    }
                    let mut candidate = best.clone();
                    candidate[i].after_steps = c;
                    if let Some((o, b)) = try_candidate(&candidate, &mut replays) {
                        best = candidate;
                        best_outcome = o;
                        best_blame = b;
                        improved = true;
                        lowered = true;
                        break;
                    }
                }
                if !lowered || replays >= max_replays {
                    break;
                }
            }
        }
    }

    Counterexample {
        schedule: best,
        outcome: best_outcome,
        blame: best_blame,
        replays,
    }
}
