//! `qsort` — in-place quicksort (Lomuto partition) with an explicit
//! range stack in NVM, sorting a scrambled array and checksumming the
//! position-weighted result.

use gecko_isa::{BinOp, Cond, ProgramBuilder, Reg, Word};

use crate::{data_stream, App};

const N: u32 = 32;
/// Worst-case stack of (lo, hi) pairs.
const STACK_WORDS: u32 = 4 * N;

fn inputs() -> Vec<Word> {
    let mut g = data_stream(0x9507);
    (0..N).map(|_| g() & 0xFFF).collect()
}

fn reference(data: &[Word]) -> Word {
    let mut v = data.to_vec();
    v.sort_unstable();
    v.iter().enumerate().fold(0i32, |acc, (i, &x)| {
        acc.wrapping_add(x.wrapping_mul(i as Word + 1))
    })
}

/// Builds the `qsort` app.
pub fn build() -> App {
    let mut b = ProgramBuilder::new("qsort");
    let arr = b.segment("array", N, true);
    let stk = b.segment("stack", STACK_WORDS, true);
    let out = b.segment("out", 1, true);

    let (sp, lo, hi, i, j, pivot, t1, t2) = (
        Reg::R1,
        Reg::R2,
        Reg::R3,
        Reg::R4,
        Reg::R5,
        Reg::R6,
        Reg::R7,
        Reg::R8,
    );
    let (p1, p2) = (Reg::R9, Reg::R10);
    let (abase, sbase) = (Reg::R11, Reg::R12);
    b.mov(abase, arr as i32);
    b.mov(sbase, stk as i32);

    // push (0, N-1)
    b.mov(t1, sbase);
    b.mov(t2, 0);
    b.store(t2, t1, 0);
    b.mov(t2, N as i32 - 1);
    b.store(t2, t1, 1);
    b.mov(sp, 2);

    let wloop = b.new_label("wloop");
    let pop = b.new_label("pop");
    let partition = b.new_label("partition");
    let ploop = b.new_label("ploop");
    let pbody = b.new_label("pbody");
    let pswap = b.new_label("pswap");
    let pnext = b.new_label("pnext");
    let pdone = b.new_label("pdone");
    let push_ranges = b.new_label("push_ranges");
    let checksum = b.new_label("checksum");
    let cloop = b.new_label("cloop");
    let cbody = b.new_label("cbody");
    let exit = b.new_label("exit");

    b.bind(wloop);
    b.set_loop_bound(4 * N);
    b.branch(Cond::Gt, sp, 0, pop, checksum);

    // pop (lo, hi)
    b.bind(pop);
    b.bin(BinOp::Sub, sp, sp, 2);
    b.bin(BinOp::Add, t1, sbase, sp);
    b.load(lo, t1, 0);
    b.load(hi, t1, 1);
    b.branch(Cond::Lt, lo, hi, partition, wloop);

    // partition [lo, hi], pivot = a[hi]
    b.bind(partition);
    b.bin(BinOp::Add, p1, abase, hi);
    b.load(pivot, p1, 0);
    b.bin(BinOp::Sub, i, lo, 1);
    b.mov(j, lo);
    b.jump(ploop);

    b.bind(ploop);
    b.set_loop_bound(N);
    b.branch(Cond::Lt, j, hi, pbody, pdone);

    b.bind(pbody);
    b.bin(BinOp::Add, p1, abase, j);
    b.load(t1, p1, 0);
    b.branch(Cond::Le, t1, pivot, pswap, pnext);

    b.bind(pswap);
    b.bin(BinOp::Add, i, i, 1);
    b.bin(BinOp::Add, p2, abase, i);
    b.load(t2, p2, 0);
    b.store(t1, p2, 0);
    b.bin(BinOp::Add, p1, abase, j);
    b.store(t2, p1, 0);
    b.jump(pnext);

    b.bind(pnext);
    b.bin(BinOp::Add, j, j, 1);
    b.jump(ploop);

    // place pivot: swap a[i+1], a[hi]
    b.bind(pdone);
    b.bin(BinOp::Add, i, i, 1);
    b.bin(BinOp::Add, p1, abase, i);
    b.load(t1, p1, 0);
    b.bin(BinOp::Add, p2, abase, hi);
    b.load(t2, p2, 0);
    b.store(t1, p2, 0);
    b.store(t2, p1, 0);
    b.jump(push_ranges);

    // push (lo, i-1) and (i+1, hi)
    b.bind(push_ranges);
    b.bin(BinOp::Add, p1, sbase, sp);
    b.store(lo, p1, 0);
    b.bin(BinOp::Sub, t1, i, 1);
    b.store(t1, p1, 1);
    b.bin(BinOp::Add, t1, i, 1);
    b.store(t1, p1, 2);
    b.store(hi, p1, 3);
    b.bin(BinOp::Add, sp, sp, 4);
    b.jump(wloop);

    // checksum = Σ a[k] * (k+1)
    b.bind(checksum);
    b.mov(i, 0);
    b.mov(t2, 0);
    b.jump(cloop);
    b.bind(cloop);
    b.set_loop_bound(N);
    b.branch(Cond::Lt, i, N as i32, cbody, exit);
    b.bind(cbody);
    b.bin(BinOp::Add, p1, abase, i);
    b.load(t1, p1, 0);
    b.bin(BinOp::Add, j, i, 1);
    b.bin(BinOp::Mul, t1, t1, j);
    b.bin(BinOp::Add, t2, t2, t1);
    b.bin(BinOp::Add, i, i, 1);
    b.jump(cloop);

    b.bind(exit);
    b.mov(p1, out as i32);
    b.store(t2, p1, 0);
    b.send(t2);
    b.halt();

    let data = inputs();
    let expected = reference(&data);
    App {
        name: "qsort",
        program: b.finish().expect("qsort builds"),
        image: vec![(arr, data)],
        checksum_addr: out,
        expected_checksum: expected,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_is_sorted_weighted_sum() {
        let d = vec![3, 1, 2];
        // sorted: 1,2,3 → 1*1 + 2*2 + 3*3 = 14
        assert_eq!(reference(&d), 14);
    }

    #[test]
    fn golden_run_sorts() {
        let app = build();
        let mut nvm = gecko_mcu::Nvm::new(1 << 12);
        for (base, words) in &app.image {
            nvm.write_image(*base, words);
        }
        let mut periph = gecko_mcu::Peripherals::new(0);
        gecko_mcu::run_to_completion(&app.program, &mut nvm, &mut periph, 2_000_000).unwrap();
        assert_eq!(nvm.read(app.checksum_addr), app.expected_checksum);
        // The array itself is sorted ascending.
        let arr = app.image[0].0;
        let vals = nvm.read_range(arr, N);
        let mut sorted = vals.clone();
        sorted.sort_unstable();
        assert_eq!(vals, sorted);
    }
}
