//! `crc32` — bitwise reflected CRC-32 (poly 0xEDB88320, init/final
//! 0xFFFFFFFF) over a message of bytes.

use gecko_isa::{BinOp, Cond, ProgramBuilder, Reg, Word};

use crate::{data_stream, App};

const N: u32 = 64;
/// 0xEDB88320 reinterpreted as a two's-complement `i32` immediate.
const POLY: i32 = 0xEDB8_8320_u32 as i32;

fn message() -> Vec<Word> {
    let mut g = data_stream(0xC32);
    (0..N).map(|_| g() & 0xFF).collect()
}

fn reference(msg: &[Word]) -> Word {
    let mut crc: u32 = 0xFFFF_FFFF;
    for &byte in msg {
        crc ^= byte as u32;
        for _ in 0..8 {
            if crc & 1 != 0 {
                crc = (crc >> 1) ^ 0xEDB8_8320;
            } else {
                crc >>= 1;
            }
        }
    }
    (crc ^ 0xFFFF_FFFF) as Word
}

/// Builds the `crc32` app.
pub fn build() -> App {
    let mut b = ProgramBuilder::new("crc32");
    let data = b.segment("msg", N, false);
    let out = b.segment("out", 1, true);

    let (i, crc, byte, ptr, tmp, bitc) = (Reg::R1, Reg::R2, Reg::R3, Reg::R4, Reg::R5, Reg::R6);
    // Hoisted loop invariants.
    let (base, poly) = (Reg::R9, Reg::R10);
    b.mov(i, 0);
    b.mov(crc, -1); // 0xFFFFFFFF
    b.mov(base, data as i32);
    b.mov(poly, POLY);

    let outer = b.new_label("outer");
    let obody = b.new_label("obody");
    let bit_head = b.new_label("bit_head");
    let bit_hi = b.new_label("bit_hi");
    let bit_lo = b.new_label("bit_lo");
    let bit_next = b.new_label("bit_next");
    let onext = b.new_label("onext");
    let exit = b.new_label("exit");

    b.bind(outer);
    b.set_loop_bound(N);
    b.branch(Cond::Lt, i, N as i32, obody, exit);

    b.bind(obody);
    b.bin(BinOp::Add, ptr, base, i);
    b.load(byte, ptr, 0);
    b.bin(BinOp::Xor, crc, crc, byte);
    b.mov(bitc, 0);
    b.jump(bit_head);

    b.bind(bit_head);
    b.set_loop_bound(8);
    b.bin(BinOp::And, tmp, crc, 1);
    b.branch(Cond::Ne, tmp, 0, bit_hi, bit_lo);
    b.bind(bit_hi);
    b.bin(BinOp::Shr, crc, crc, 1); // logical shift
    b.bin(BinOp::Xor, crc, crc, poly);
    b.jump(bit_next);
    b.bind(bit_lo);
    b.bin(BinOp::Shr, crc, crc, 1);
    b.jump(bit_next);
    b.bind(bit_next);
    b.bin(BinOp::Add, bitc, bitc, 1);
    b.branch(Cond::Lt, bitc, 8, bit_head, onext);

    b.bind(onext);
    b.bin(BinOp::Add, i, i, 1);
    b.jump(outer);

    b.bind(exit);
    b.bin(BinOp::Xor, crc, crc, -1);
    b.mov(tmp, out as i32);
    b.store(crc, tmp, 0);
    b.send(crc);
    b.halt();

    let msg = message();
    let expected = reference(&msg);
    App {
        name: "crc32",
        program: b.finish().expect("crc32 builds"),
        image: vec![(data, msg)],
        checksum_addr: out,
        expected_checksum: expected,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_known_vector() {
        // CRC-32 of "123456789" is 0xCBF43926.
        let msg: Vec<Word> = b"123456789".iter().map(|&c| c as Word).collect();
        assert_eq!(reference(&msg) as u32, 0xCBF4_3926);
    }

    #[test]
    fn golden_run_matches_reference() {
        let app = build();
        let mut nvm = gecko_mcu::Nvm::new(1 << 12);
        for (base, words) in &app.image {
            nvm.write_image(*base, words);
        }
        let mut periph = gecko_mcu::Peripherals::new(0);
        gecko_mcu::run_to_completion(&app.program, &mut nvm, &mut periph, 2_000_000).unwrap();
        assert_eq!(nvm.read(app.checksum_addr), app.expected_checksum);
    }
}
