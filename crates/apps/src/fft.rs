//! `fft` — a 16-point radix-2 decimation-in-time fast Fourier transform in
//! Q8 fixed point, with precomputed bit-reversal and twiddle tables.

use gecko_isa::{BinOp, Cond, ProgramBuilder, Reg, Word};

use crate::{data_stream, App};

const N: u32 = 16;
const SCALE: Word = 256; // Q8

fn bitrev_table() -> Vec<Word> {
    (0..N as Word)
        .map(|i| {
            let mut r = 0;
            for b in 0..4 {
                if i & (1 << b) != 0 {
                    r |= 1 << (3 - b);
                }
            }
            r
        })
        .collect()
}

fn twiddles() -> (Vec<Word>, Vec<Word>) {
    let mut wr = Vec::new();
    let mut wi = Vec::new();
    for k in 0..(N / 2) as usize {
        let ang = -2.0 * std::f64::consts::PI * k as f64 / N as f64;
        wr.push((ang.cos() * SCALE as f64).round() as Word);
        wi.push((ang.sin() * SCALE as f64).round() as Word);
    }
    (wr, wi)
}

fn signal() -> Vec<Word> {
    let mut g = data_stream(0xFF7);
    (0..N).map(|_| (g() & 0x1FF) - 256).collect()
}

/// Integer FFT mirroring the assembly exactly (same rounding behaviour).
fn reference(re_in: &[Word]) -> (Vec<Word>, Vec<Word>, Word) {
    let n = N as usize;
    let rev = bitrev_table();
    let (wr, wi) = twiddles();
    let mut re = vec![0; n];
    let mut im = vec![0; n];
    for i in 0..n {
        re[rev[i] as usize] = re_in[i];
    }
    let mut len = 2usize;
    while len <= n {
        let step = n / len;
        let mut i = 0;
        while i < n {
            for j in 0..len / 2 {
                let a = i + j;
                let bidx = i + j + len / 2;
                let tw = j * step;
                let tr = (wr[tw].wrapping_mul(re[bidx]) - wi[tw].wrapping_mul(im[bidx])) >> 8;
                let ti = (wr[tw].wrapping_mul(im[bidx]) + wi[tw].wrapping_mul(re[bidx])) >> 8;
                re[bidx] = re[a] - tr;
                im[bidx] = im[a] - ti;
                re[a] += tr;
                im[a] += ti;
            }
            i += len;
        }
        len <<= 1;
    }
    let mut sum: Word = 0;
    for k in 0..n {
        sum = sum
            .wrapping_add(re[k].wrapping_mul(3))
            .wrapping_add(im[k].wrapping_mul(7));
    }
    (re, im, sum)
}

/// Builds the `fft` app.
pub fn build() -> App {
    let mut b = ProgramBuilder::new("fft");
    let sig = b.segment("signal", N, false);
    let revt = b.segment("bitrev", N, false);
    let wrt = b.segment("twiddle_re", N / 2, false);
    let wit = b.segment("twiddle_im", N / 2, false);
    let re = b.segment("re", N, true);
    let im = b.segment("im", N, true);
    let out = b.segment("out", 1, true);

    // Register plan (heavy kernel; every register earns its keep).
    let (i, j, len, t1, t2, t3, t4, p) = (
        Reg::R1,
        Reg::R2,
        Reg::R3,
        Reg::R4,
        Reg::R5,
        Reg::R6,
        Reg::R7,
        Reg::R8,
    );
    let (a, bx, tr, ti, wr_v, wi_v, q) = (
        Reg::R9,
        Reg::R10,
        Reg::R11,
        Reg::R12,
        Reg::R13,
        Reg::R14,
        Reg::R15,
    );

    let reb = Reg::R0; // the only spare register: hoist the hottest base
    b.mov(reb, re as i32);

    let scatter_head = b.new_label("scatter_head");
    let scatter_body = b.new_label("scatter_body");
    let stage_head = b.new_label("stage_head");
    let stage_body = b.new_label("stage_body");
    let group_head = b.new_label("group_head");
    let group_body = b.new_label("group_body");
    let fly_head = b.new_label("fly_head");
    let fly_body = b.new_label("fly_body");
    let fly_done = b.new_label("fly_done");
    let group_next = b.new_label("group_next");
    let sum_head = b.new_label("sum_head");
    let sum_body = b.new_label("sum_body");
    let exit = b.new_label("exit");

    // Bit-reversal scatter: re[rev[i]] = signal[i]; im zeroed by image.
    b.mov(i, 0);
    b.jump(scatter_head);
    b.bind(scatter_head);
    b.set_loop_bound(N);
    b.branch(Cond::Lt, i, N as i32, scatter_body, stage_head);
    b.bind(scatter_body);
    b.mov(p, revt as i32);
    b.bin(BinOp::Add, p, p, i);
    b.load(t1, p, 0); // rev[i]
    b.mov(p, sig as i32);
    b.bin(BinOp::Add, p, p, i);
    b.load(t2, p, 0); // signal[i]
    b.bin(BinOp::Add, q, reb, t1);
    b.store(t2, q, 0);
    b.bin(BinOp::Add, i, i, 1);
    b.jump(scatter_head);

    // Stage loop: len = 2, 4, 8, 16.
    b.bind(stage_head);
    b.mov(len, 2);
    b.jump(stage_body);
    b.bind(stage_body);
    b.set_loop_bound(4);
    b.mov(i, 0);
    b.jump(group_head);

    // Group loop: i = 0, len, 2len, ...
    b.bind(group_head);
    b.set_loop_bound(N / 2);
    b.branch(Cond::Lt, i, N as i32, group_body, sum_head); // advance stage below
    b.bind(group_body);
    b.mov(j, 0);
    b.jump(fly_head);

    // Butterfly loop: j = 0 .. len/2.
    b.bind(fly_head);
    b.set_loop_bound(N / 2);
    b.bin(BinOp::Div, t1, len, 2);
    b.branch(Cond::Lt, j, t1, fly_body, group_next);
    b.bind(fly_body);
    // a = i + j; b = i + j + len/2
    b.bin(BinOp::Add, a, i, j);
    b.bin(BinOp::Add, bx, a, t1);
    // twiddle index = j * (N / len)
    b.mov(t2, N as i32);
    b.bin(BinOp::Div, t2, t2, len);
    b.bin(BinOp::Mul, t2, t2, j);
    b.mov(p, wrt as i32);
    b.bin(BinOp::Add, p, p, t2);
    b.load(wr_v, p, 0);
    b.mov(p, wit as i32);
    b.bin(BinOp::Add, p, p, t2);
    b.load(wi_v, p, 0);
    // tr = (wr*re[b] - wi*im[b]) >> 8 ; ti = (wr*im[b] + wi*re[b]) >> 8
    b.bin(BinOp::Add, p, reb, bx);
    b.load(t2, p, 0); // re[b]
    b.mov(q, im as i32);
    b.bin(BinOp::Add, q, q, bx);
    b.load(t3, q, 0); // im[b]
    b.bin(BinOp::Mul, tr, wr_v, t2);
    b.bin(BinOp::Mul, t4, wi_v, t3);
    b.bin(BinOp::Sub, tr, tr, t4);
    b.bin(BinOp::Sar, tr, tr, 8);
    b.bin(BinOp::Mul, ti, wr_v, t3);
    b.bin(BinOp::Mul, t4, wi_v, t2);
    b.bin(BinOp::Add, ti, ti, t4);
    b.bin(BinOp::Sar, ti, ti, 8);
    // re[b] = re[a] - tr; im[b] = im[a] - ti; re[a] += tr; im[a] += ti
    b.bin(BinOp::Add, p, reb, a);
    b.load(t2, p, 0); // re[a]
    b.bin(BinOp::Sub, t4, t2, tr);
    b.bin(BinOp::Add, q, reb, bx);
    b.store(t4, q, 0);
    b.bin(BinOp::Add, t2, t2, tr);
    b.store(t2, p, 0);
    b.mov(p, im as i32);
    b.bin(BinOp::Add, p, p, a);
    b.load(t3, p, 0); // im[a]
    b.bin(BinOp::Sub, t4, t3, ti);
    b.mov(q, im as i32);
    b.bin(BinOp::Add, q, q, bx);
    b.store(t4, q, 0);
    b.bin(BinOp::Add, t3, t3, ti);
    b.store(t3, p, 0);
    b.bin(BinOp::Add, j, j, 1);
    b.jump(fly_head);
    b.bind(fly_done); // (unused alias kept for readability)
    b.jump(group_next);

    b.bind(group_next);
    b.bin(BinOp::Add, i, i, len);
    b.jump(group_head);

    // Checksum: Σ 3·re[k] + 7·im[k]. Reached when the group loop of the
    // final stage finishes — but we must run 4 stages; handle stage advance
    // here: if len < N, double len and loop.
    b.bind(sum_head);
    b.bin(BinOp::Shl, len, len, 1);
    b.branch(Cond::Le, len, N as i32, stage_body, sum_body);
    b.bind(sum_body);
    b.mov(i, 0);
    b.mov(t4, 0);
    let sum_loop = b.new_label("sum_loop");
    let sum_item = b.new_label("sum_item");
    b.jump(sum_loop);
    b.bind(sum_loop);
    b.set_loop_bound(N);
    b.branch(Cond::Lt, i, N as i32, sum_item, exit);
    b.bind(sum_item);
    b.bin(BinOp::Add, p, reb, i);
    b.load(t1, p, 0);
    b.bin(BinOp::Mul, t1, t1, 3);
    b.mov(q, im as i32);
    b.bin(BinOp::Add, q, q, i);
    b.load(t2, q, 0);
    b.bin(BinOp::Mul, t2, t2, 7);
    b.bin(BinOp::Add, t4, t4, t1);
    b.bin(BinOp::Add, t4, t4, t2);
    b.bin(BinOp::Add, i, i, 1);
    b.jump(sum_loop);

    b.bind(exit);
    b.mov(p, out as i32);
    b.store(t4, p, 0);
    b.send(t4);
    b.halt();

    let sig_img = signal();
    let (wr_img, wi_img) = twiddles();
    let (_, _, expected) = reference(&sig_img);
    App {
        name: "fft",
        program: b.finish().expect("fft builds"),
        image: vec![
            (sig, sig_img),
            (revt, bitrev_table()),
            (wrt, wr_img),
            (wit, wi_img),
            (re, vec![0; N as usize]),
            (im, vec![0; N as usize]),
        ],
        checksum_addr: out,
        expected_checksum: expected,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bitrev_is_an_involution() {
        let t = bitrev_table();
        for i in 0..N as usize {
            assert_eq!(t[t[i] as usize], i as Word);
        }
    }

    #[test]
    fn twiddles_lie_on_the_unit_circle() {
        let (wr, wi) = twiddles();
        for k in 0..wr.len() {
            let mag2 = wr[k] * wr[k] + wi[k] * wi[k];
            let target = SCALE * SCALE;
            assert!((mag2 - target).abs() <= 2 * SCALE, "k={k}: {mag2}");
        }
        assert_eq!(wr[0], SCALE);
        assert_eq!(wi[0], 0);
    }

    #[test]
    fn dc_signal_concentrates_in_bin_zero() {
        // An all-ones signal has X[0] = N, X[k≠0] ≈ 0.
        let (re, im, _) = {
            let sig = vec![1; N as usize];
            let n = N as usize;
            let rev = bitrev_table();
            let (wr, wi) = twiddles();
            let mut re = vec![0; n];
            let mut imv = vec![0; n];
            for i in 0..n {
                re[rev[i] as usize] = sig[i];
            }
            let mut len = 2usize;
            while len <= n {
                let step = n / len;
                let mut i = 0;
                while i < n {
                    for j in 0..len / 2 {
                        let a = i + j;
                        let bidx = i + j + len / 2;
                        let tw = j * step;
                        let tr = (wr[tw] * re[bidx] - wi[tw] * imv[bidx]) >> 8;
                        let ti = (wr[tw] * imv[bidx] + wi[tw] * re[bidx]) >> 8;
                        re[bidx] = re[a] - tr;
                        imv[bidx] = imv[a] - ti;
                        re[a] += tr;
                        imv[a] += ti;
                    }
                    i += len;
                }
                len <<= 1;
            }
            (re, imv, 0)
        };
        assert_eq!(re[0], N as Word);
        for k in 1..N as usize {
            assert!(
                re[k].abs() <= 2 && im[k].abs() <= 2,
                "bin {k}: {} {}",
                re[k],
                im[k]
            );
        }
    }

    #[test]
    fn golden_run_matches_reference() {
        let app = build();
        let mut nvm = gecko_mcu::Nvm::new(1 << 12);
        for (base, words) in &app.image {
            nvm.write_image(*base, words);
        }
        let mut periph = gecko_mcu::Peripherals::new(0);
        gecko_mcu::run_to_completion(&app.program, &mut nvm, &mut periph, 2_000_000).unwrap();
        assert_eq!(nvm.read(app.checksum_addr), app.expected_checksum);
        // The spectral arrays themselves match the reference.
        let (re_ref, im_ref, _) = reference(&signal());
        let re_base = app.image[4].0;
        let im_base = app.image[5].0;
        assert_eq!(nvm.read_range(re_base, N), re_ref);
        assert_eq!(nvm.read_range(im_base, N), im_ref);
    }
}
