//! `fir` — an 8-tap finite-impulse-response filter over a sampled signal,
//! writing the filtered output and a running checksum.

use gecko_isa::{BinOp, Cond, ProgramBuilder, Reg, Word};

use crate::{data_stream, App};

const TAPS: u32 = 8;
const SAMPLES: u32 = 48;
const OUTS: u32 = SAMPLES - TAPS + 1;

fn coeffs() -> Vec<Word> {
    vec![1, 3, 5, 7, 7, 5, 3, 1]
}

fn samples() -> Vec<Word> {
    let mut g = data_stream(0xF14);
    (0..SAMPLES).map(|_| g() & 0x3FF).collect()
}

fn reference(c: &[Word], x: &[Word]) -> (Vec<Word>, Word) {
    let mut out = Vec::new();
    let mut sum: Word = 0;
    for i in 0..OUTS as usize {
        let mut acc: Word = 0;
        for (j, &cj) in c.iter().enumerate() {
            acc = acc.wrapping_add(cj.wrapping_mul(x[i + j]));
        }
        let y = acc >> 4;
        out.push(y);
        sum = sum.wrapping_add(y);
    }
    (out, sum)
}

/// Builds the `fir` app.
pub fn build() -> App {
    let mut b = ProgramBuilder::new("fir");
    let cseg = b.segment("coeffs", TAPS, false);
    let xseg = b.segment("signal", SAMPLES, false);
    let yseg = b.segment("filtered", OUTS, true);
    let out = b.segment("out", 1, true);

    let (i, j, acc, sum, xp, cp, a, c) = (
        Reg::R1,
        Reg::R2,
        Reg::R3,
        Reg::R4,
        Reg::R5,
        Reg::R6,
        Reg::R7,
        Reg::R8,
    );
    let yp = Reg::R9;
    let (cbase, xbase, ybase) = (Reg::R10, Reg::R11, Reg::R12);
    b.mov(i, 0);
    b.mov(sum, 0);
    b.mov(cbase, cseg as i32);
    b.mov(xbase, xseg as i32);
    b.mov(ybase, yseg as i32);

    let outer = b.new_label("outer");
    let obody = b.new_label("obody");
    let inner = b.new_label("inner");
    let ibody = b.new_label("ibody");
    let istore = b.new_label("istore");
    let exit = b.new_label("exit");

    b.bind(outer);
    b.set_loop_bound(OUTS);
    b.branch(Cond::Lt, i, OUTS as i32, obody, exit);

    b.bind(obody);
    b.mov(acc, 0);
    b.mov(j, 0);
    b.bin(BinOp::Add, xp, xbase, i);
    b.mov(cp, cbase);
    b.jump(inner);

    b.bind(inner);
    b.set_loop_bound(TAPS);
    b.branch(Cond::Lt, j, TAPS as i32, ibody, istore);
    b.bind(ibody);
    b.load(a, xp, 0);
    b.load(c, cp, 0);
    b.bin(BinOp::Mul, a, a, c);
    b.bin(BinOp::Add, acc, acc, a);
    b.bin(BinOp::Add, xp, xp, 1);
    b.bin(BinOp::Add, cp, cp, 1);
    b.bin(BinOp::Add, j, j, 1);
    b.jump(inner);

    b.bind(istore);
    b.bin(BinOp::Sar, acc, acc, 4);
    b.bin(BinOp::Add, yp, ybase, i);
    b.store(acc, yp, 0);
    b.bin(BinOp::Add, sum, sum, acc);
    b.bin(BinOp::Add, i, i, 1);
    b.jump(outer);

    b.bind(exit);
    b.mov(a, out as i32);
    b.store(sum, a, 0);
    b.send(sum);
    b.halt();

    let (c_img, x_img) = (coeffs(), samples());
    let (_, expected) = reference(&c_img, &x_img);
    App {
        name: "fir",
        program: b.finish().expect("fir builds"),
        image: vec![(cseg, c_img), (xseg, x_img)],
        checksum_addr: out,
        expected_checksum: expected,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_output_is_smoothed() {
        let (y, sum) = reference(&coeffs(), &samples());
        assert_eq!(y.len(), OUTS as usize);
        assert_eq!(y.iter().copied().fold(0i32, |a, v| a.wrapping_add(v)), sum);
    }

    #[test]
    fn golden_run_writes_filtered_signal_and_checksum() {
        let app = build();
        let mut nvm = gecko_mcu::Nvm::new(1 << 12);
        for (base, words) in &app.image {
            nvm.write_image(*base, words);
        }
        let mut periph = gecko_mcu::Peripherals::new(0);
        gecko_mcu::run_to_completion(&app.program, &mut nvm, &mut periph, 1_000_000).unwrap();
        assert_eq!(nvm.read(app.checksum_addr), app.expected_checksum);
        // Spot-check the filtered output words too.
        let (y, _) = reference(&coeffs(), &samples());
        let yseg = app.image[0].0 + TAPS + SAMPLES; // coeffs, signal, filtered
        for (k, &want) in y.iter().enumerate().take(5) {
            assert_eq!(nvm.read(yseg + k as u32), want, "y[{k}]");
        }
    }
}
