//! `dijkstra` — single-source shortest paths over a dense 8-node graph
//! (adjacency matrix), the MiBench network kernel.

use gecko_isa::{BinOp, Cond, ProgramBuilder, Reg, Word};

use crate::{data_stream, App};

const N: u32 = 8;
const INF: Word = 9999;

fn adjacency() -> Vec<Word> {
    let mut g = data_stream(0xD17);
    let mut adj = vec![INF; (N * N) as usize];
    for u in 0..N as usize {
        adj[u * N as usize + u] = 0;
        for v in 0..N as usize {
            if u == v {
                continue;
            }
            // ~60% of the edges exist, weights 1..=20.
            let roll = g();
            if roll % 10 < 6 {
                adj[u * N as usize + v] = roll % 20 + 1;
            }
        }
    }
    adj
}

fn initial_dist() -> Vec<Word> {
    let mut d = vec![INF; N as usize];
    d[0] = 0;
    d
}

fn reference(adj: &[Word]) -> Word {
    let n = N as usize;
    let mut dist = vec![INF; n];
    let mut visited = vec![false; n];
    dist[0] = 0;
    for _ in 0..n {
        let mut best = INF;
        let mut u = usize::MAX;
        for k in 0..n {
            if !visited[k] && dist[k] < best {
                best = dist[k];
                u = k;
            }
        }
        if u == usize::MAX {
            break;
        }
        visited[u] = true;
        for v in 0..n {
            let w = adj[u * n + v];
            if w < INF && dist[u] + w < dist[v] {
                dist[v] = dist[u] + w;
            }
        }
    }
    dist.iter().fold(0i32, |a, &d| a.wrapping_add(d))
}

/// Builds the `dijkstra` app.
pub fn build() -> App {
    let mut b = ProgramBuilder::new("dijkstra");
    let adj = b.segment("adj", N * N, false);
    let dist = b.segment("dist", N, true);
    let visited = b.segment("visited", N, true);
    let out = b.segment("out", 1, true);

    let (it, k, u, best, t1, t2, p, du) = (
        Reg::R1,
        Reg::R2,
        Reg::R3,
        Reg::R4,
        Reg::R5,
        Reg::R6,
        Reg::R7,
        Reg::R8,
    );
    let v = Reg::R9;
    // Hoisted base addresses.
    let (adjb, distb, visb) = (Reg::R10, Reg::R11, Reg::R12);

    b.mov(it, 0);
    b.mov(adjb, adj as i32);
    b.mov(distb, dist as i32);
    b.mov(visb, visited as i32);

    let main_loop = b.new_label("main");
    let find_min = b.new_label("find_min");
    let fm_head = b.new_label("fm_head");
    let fm_body = b.new_label("fm_body");
    let fm_unvis = b.new_label("fm_unvis");
    let fm_take = b.new_label("fm_take");
    let fm_next = b.new_label("fm_next");
    let have_u = b.new_label("have_u");
    let relax_head = b.new_label("relax_head");
    let relax_body = b.new_label("relax_body");
    let relax_edge = b.new_label("relax_edge");
    let relax_upd = b.new_label("relax_upd");
    let relax_next = b.new_label("relax_next");
    let next_iter = b.new_label("next_iter");
    let sum_head = b.new_label("sum_head");
    let sum_body = b.new_label("sum_body");
    let exit = b.new_label("exit");

    b.bind(main_loop);
    b.set_loop_bound(N);
    b.branch(Cond::Lt, it, N as i32, find_min, sum_head);

    // find unvisited k with minimal dist
    b.bind(find_min);
    b.mov(best, INF);
    b.mov(u, -1);
    b.mov(k, 0);
    b.jump(fm_head);
    b.bind(fm_head);
    b.set_loop_bound(N);
    b.branch(Cond::Lt, k, N as i32, fm_body, have_u);
    b.bind(fm_body);
    b.bin(BinOp::Add, p, visb, k);
    b.load(t1, p, 0);
    b.branch(Cond::Eq, t1, 0, fm_unvis, fm_next);
    b.bind(fm_unvis);
    b.bin(BinOp::Add, p, distb, k);
    b.load(t2, p, 0);
    b.branch(Cond::Lt, t2, best, fm_take, fm_next);
    b.bind(fm_take);
    b.mov(best, t2);
    b.mov(u, k);
    b.jump(fm_next);
    b.bind(fm_next);
    b.bin(BinOp::Add, k, k, 1);
    b.jump(fm_head);

    b.bind(have_u);
    b.branch(Cond::Lt, u, 0, next_iter, relax_head);

    // visited[u] = 1; relax all edges out of u
    b.bind(relax_head);
    b.bin(BinOp::Add, p, visb, u);
    b.mov(t1, 1);
    b.store(t1, p, 0);
    b.bin(BinOp::Add, p, distb, u);
    b.load(du, p, 0);
    b.mov(v, 0);
    b.jump(relax_body);

    b.bind(relax_body);
    b.set_loop_bound(N);
    b.branch(Cond::Lt, v, N as i32, relax_edge, next_iter);
    b.bind(relax_edge);
    b.bin(BinOp::Mul, t1, u, N as i32);
    b.bin(BinOp::Add, p, adjb, t1);
    b.bin(BinOp::Add, p, p, v);
    b.load(t1, p, 0); // w = adj[u][v]
    b.bin(BinOp::Add, t1, t1, du); // nd = dist[u] + w
    b.bin(BinOp::Add, p, distb, v);
    b.load(t2, p, 0); // dist[v]
    b.branch(Cond::Lt, t1, t2, relax_upd, relax_next);
    b.bind(relax_upd);
    b.store(t1, p, 0);
    b.jump(relax_next);
    b.bind(relax_next);
    b.bin(BinOp::Add, v, v, 1);
    b.jump(relax_body);

    b.bind(next_iter);
    b.bin(BinOp::Add, it, it, 1);
    b.jump(main_loop);

    // checksum = Σ dist[k]
    b.bind(sum_head);
    b.mov(k, 0);
    b.mov(t2, 0);
    b.jump(sum_body);
    b.bind(sum_body);
    b.set_loop_bound(N);
    b.bin(BinOp::Add, p, distb, k);
    b.load(t1, p, 0);
    b.bin(BinOp::Add, t2, t2, t1);
    b.bin(BinOp::Add, k, k, 1);
    b.branch(Cond::Lt, k, N as i32, sum_body, exit);

    b.bind(exit);
    b.mov(p, out as i32);
    b.store(t2, p, 0);
    b.send(t2);
    b.halt();

    let adj_img = adjacency();
    let expected = reference(&adj_img);
    App {
        name: "dijkstra",
        program: b.finish().expect("dijkstra builds"),
        image: vec![
            (adj, adj_img),
            (dist, initial_dist()),
            (visited, vec![0; N as usize]),
        ],
        checksum_addr: out,
        expected_checksum: expected,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_source_distance_is_zero() {
        let adj = adjacency();
        // dist[0] = 0 always contributes 0; the total is below N * INF.
        let total = reference(&adj);
        assert!(total >= 0 && total < (N as Word) * INF);
    }

    #[test]
    fn golden_run_computes_shortest_paths() {
        let app = build();
        let mut nvm = gecko_mcu::Nvm::new(1 << 12);
        for (base, words) in &app.image {
            nvm.write_image(*base, words);
        }
        let mut periph = gecko_mcu::Peripherals::new(0);
        gecko_mcu::run_to_completion(&app.program, &mut nvm, &mut periph, 2_000_000).unwrap();
        assert_eq!(nvm.read(app.checksum_addr), app.expected_checksum);
    }

    #[test]
    fn triangle_inequality_holds_in_simulated_dist() {
        let app = build();
        let mut nvm = gecko_mcu::Nvm::new(1 << 12);
        for (base, words) in &app.image {
            nvm.write_image(*base, words);
        }
        let mut periph = gecko_mcu::Peripherals::new(0);
        gecko_mcu::run_to_completion(&app.program, &mut nvm, &mut periph, 2_000_000).unwrap();
        let adj_base = app.image[0].0;
        let dist_base = app.image[1].0;
        let n = N as usize;
        let dist: Vec<Word> = nvm.read_range(dist_base, N);
        for u in 0..n {
            for v in 0..n {
                let w = nvm.read(adj_base + (u * n + v) as u32);
                if w < INF && dist[u] < INF {
                    assert!(
                        dist[v] <= dist[u] + w,
                        "relaxation incomplete: d[{v}]={} > d[{u}]={} + {w}",
                        dist[v],
                        dist[u]
                    );
                }
            }
        }
    }
}
