//! `crc16` — bitwise CRC-16/CCITT (poly 0x1021, init 0xFFFF) over a message
//! of bytes.

use gecko_isa::{BinOp, Cond, ProgramBuilder, Reg, Word};

use crate::{data_stream, App};

const N: u32 = 64;

fn message() -> Vec<Word> {
    let mut g = data_stream(0xC16);
    (0..N).map(|_| g() & 0xFF).collect()
}

fn reference(msg: &[Word]) -> Word {
    let mut crc: u32 = 0xFFFF;
    for &byte in msg {
        crc ^= (byte as u32) << 8;
        for _ in 0..8 {
            if crc & 0x8000 != 0 {
                crc = ((crc << 1) ^ 0x1021) & 0xFFFF;
            } else {
                crc = (crc << 1) & 0xFFFF;
            }
        }
    }
    crc as Word
}

/// Builds the `crc16` app.
pub fn build() -> App {
    let mut b = ProgramBuilder::new("crc16");
    let data = b.segment("msg", N, false);
    let out = b.segment("out", 1, true);

    let (i, crc, byte, ptr, tmp) = (Reg::R1, Reg::R2, Reg::R3, Reg::R4, Reg::R5);
    // Loop-invariant values hoisted into registers, as a compiler would.
    let (base, poly, mask16, topbit) = (Reg::R9, Reg::R10, Reg::R11, Reg::R12);
    b.mov(i, 0);
    b.mov(crc, 0xFFFF);
    b.mov(base, data as i32);
    b.mov(poly, 0x1021);
    b.mov(mask16, 0xFFFF);
    b.mov(topbit, 0x8000);

    let outer = b.new_label("outer");
    let obody = b.new_label("obody");
    let bit_head = b.new_label("bit_head");
    let bit_hi = b.new_label("bit_hi");
    let bit_lo = b.new_label("bit_lo");
    let bit_next = b.new_label("bit_next");
    let onext = b.new_label("onext");
    let exit = b.new_label("exit");
    let bitc = Reg::R6;

    b.bind(outer);
    b.set_loop_bound(N);
    b.branch(Cond::Lt, i, N as i32, obody, exit);

    b.bind(obody);
    b.bin(BinOp::Add, ptr, base, i);
    b.load(byte, ptr, 0);
    b.bin(BinOp::Shl, byte, byte, 8);
    b.bin(BinOp::Xor, crc, crc, byte);
    b.mov(bitc, 0);
    b.jump(bit_head);

    b.bind(bit_head);
    b.set_loop_bound(8);
    b.bin(BinOp::And, tmp, crc, topbit);
    b.branch(Cond::Ne, tmp, 0, bit_hi, bit_lo);
    b.bind(bit_hi);
    b.bin(BinOp::Shl, crc, crc, 1);
    b.bin(BinOp::Xor, crc, crc, poly);
    b.jump(bit_next);
    b.bind(bit_lo);
    b.bin(BinOp::Shl, crc, crc, 1);
    b.jump(bit_next);
    b.bind(bit_next);
    b.bin(BinOp::And, crc, crc, mask16);
    b.bin(BinOp::Add, bitc, bitc, 1);
    b.branch(Cond::Lt, bitc, 8, bit_head, onext);

    b.bind(onext);
    b.bin(BinOp::Add, i, i, 1);
    b.jump(outer);

    b.bind(exit);
    b.mov(tmp, out as i32);
    b.store(crc, tmp, 0);
    b.send(crc);
    b.halt();

    let msg = message();
    let expected = reference(&msg);
    App {
        name: "crc16",
        program: b.finish().expect("crc16 builds"),
        image: vec![(data, msg)],
        checksum_addr: out,
        expected_checksum: expected,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_known_vector() {
        // CRC-16/CCITT-FALSE of "123456789" is 0x29B1.
        let msg: Vec<Word> = b"123456789".iter().map(|&c| c as Word).collect();
        assert_eq!(reference(&msg), 0x29B1);
    }

    #[test]
    fn golden_run_matches_reference() {
        let app = build();
        let mut nvm = gecko_mcu::Nvm::new(1 << 12);
        for (base, words) in &app.image {
            nvm.write_image(*base, words);
        }
        let mut periph = gecko_mcu::Peripherals::new(0);
        gecko_mcu::run_to_completion(&app.program, &mut nvm, &mut periph, 1_000_000).unwrap();
        assert_eq!(nvm.read(app.checksum_addr), app.expected_checksum);
    }
}
