//! `blink` — the smallest benchmark: toggle the LED a few times, keeping a
//! persistent toggle counter. (Table III reports only 6 checkpoint stores
//! for it.)

use gecko_isa::{BinOp, Cond, ProgramBuilder, Reg};

use crate::App;

const TOGGLES: i32 = 8;

/// Builds the `blink` app.
pub fn build() -> App {
    let mut b = ProgramBuilder::new("blink");
    let out = b.segment("out", 2, true);

    let (i, base) = (Reg::R1, Reg::R2);
    b.mov(i, 0);
    b.mov(base, out as i32);
    let head = b.new_label("head");
    let body = b.new_label("body");
    let exit = b.new_label("exit");
    b.bind(head);
    b.set_loop_bound(TOGGLES as u32);
    b.branch(Cond::Lt, i, TOGGLES, body, exit);
    b.bind(body);
    b.blink();
    b.bin(BinOp::Add, i, i, 1);
    b.store(i, base, 1); // progress counter
    b.jump(head);
    b.bind(exit);
    b.store(i, base, 0); // checksum: number of toggles
    b.send(i);
    b.halt();

    App {
        name: "blink",
        program: b.finish().expect("blink builds"),
        image: vec![],
        checksum_addr: out,
        expected_checksum: TOGGLES,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn golden_run_blinks_and_counts() {
        let app = build();
        let mut nvm = gecko_mcu::Nvm::new(1 << 12);
        let mut periph = gecko_mcu::Peripherals::new(0);
        gecko_mcu::run_to_completion(&app.program, &mut nvm, &mut periph, 100_000).unwrap();
        assert_eq!(nvm.read(app.checksum_addr), TOGGLES);
        assert_eq!(periph.blink_count(), TOGGLES as u64);
        assert_eq!(periph.sent(), &[TOGGLES]);
    }
}
