//! `bitcnt` — MiBench bit counting: two counting strategies (shift-and-mask
//! and nibble-table lookup) over a block of words, cross-checked in the
//! final checksum.

use gecko_isa::{BinOp, Cond, ProgramBuilder, Reg, Word};

use crate::{data_stream, App};

const N: u32 = 32;

fn inputs() -> Vec<Word> {
    let mut g = data_stream(0xB17C);
    (0..N).map(|_| g()).collect()
}

fn nibble_table() -> Vec<Word> {
    (0..16).map(|v: Word| v.count_ones() as Word).collect()
}

fn reference(data: &[Word]) -> Word {
    let mut shift_total: Word = 0;
    let mut table_total: Word = 0;
    for &v in data {
        shift_total += v.count_ones() as Word;
        table_total += v.count_ones() as Word; // table method agrees
    }
    shift_total.wrapping_mul(31).wrapping_add(table_total)
}

/// Builds the `bitcnt` app.
pub fn build() -> App {
    let mut b = ProgramBuilder::new("bitcnt");
    let data = b.segment("data", N, false);
    let table = b.segment("nibbles", 16, false);
    let out = b.segment("out", 1, true);

    let (i, v, cnt1, cnt2, ptr, tmp, tbl, nib) = (
        Reg::R1,
        Reg::R2,
        Reg::R3,
        Reg::R4,
        Reg::R5,
        Reg::R6,
        Reg::R7,
        Reg::R8,
    );
    let base = Reg::R9;
    b.mov(i, 0);
    b.mov(cnt1, 0);
    b.mov(cnt2, 0);
    b.mov(tbl, table as i32);
    b.mov(base, data as i32);

    let outer = b.new_label("outer");
    let obody = b.new_label("obody");
    let shift_head = b.new_label("shift_head");
    let shift_body = b.new_label("shift_body");
    let nib_head = b.new_label("nib_head");
    let nib_body = b.new_label("nib_body");
    let onext = b.new_label("onext");
    let exit = b.new_label("exit");

    b.bind(outer);
    b.set_loop_bound(N);
    b.branch(Cond::Lt, i, N as i32, obody, exit);

    b.bind(obody);
    b.bin(BinOp::Add, ptr, base, i);
    b.load(v, ptr, 0);
    // Method 1: shift-and-mask.
    b.jump(shift_head);
    b.bind(shift_head);
    b.set_loop_bound(16);
    b.branch(Cond::Ne, v, 0, shift_body, nib_head);
    b.bind(shift_body);
    b.bin(BinOp::And, tmp, v, 1);
    b.bin(BinOp::Add, cnt1, cnt1, tmp);
    b.bin(BinOp::Shr, v, v, 1);
    b.jump(shift_head);
    // Method 2: nibble table (reload the word; v was consumed).
    b.bind(nib_head);
    b.load(v, ptr, 0);
    b.mov(tmp, 0); // nibble index 0..4
    b.jump(nib_body);
    b.bind(nib_body);
    b.set_loop_bound(4);
    b.bin(BinOp::And, nib, v, 0xF);
    b.bin(BinOp::Add, nib, nib, Reg::R7); // nib = table base + nibble
    b.load(nib, nib, 0);
    b.bin(BinOp::Add, cnt2, cnt2, nib);
    b.bin(BinOp::Shr, v, v, 4);
    b.bin(BinOp::Add, tmp, tmp, 1);
    b.branch(Cond::Lt, tmp, 4, nib_body, onext);
    b.bind(onext);
    b.bin(BinOp::Add, i, i, 1);
    b.jump(outer);

    b.bind(exit);
    b.bin(BinOp::Mul, cnt1, cnt1, 31);
    b.bin(BinOp::Add, cnt1, cnt1, cnt2);
    b.mov(tmp, out as i32);
    b.store(cnt1, tmp, 0);
    b.send(cnt1);
    b.halt();

    let data_img = inputs();
    let expected = reference(&data_img);
    App {
        name: "bitcnt",
        program: b.finish().expect("bitcnt builds"),
        image: vec![(data, data_img), (table, nibble_table())],
        checksum_addr: out,
        expected_checksum: expected,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_matches_popcount() {
        let d = inputs();
        let total: Word = d.iter().map(|v| v.count_ones() as Word).sum();
        assert_eq!(reference(&d), total * 31 + total);
    }

    #[test]
    fn golden_run_counts_bits() {
        let app = build();
        let mut nvm = gecko_mcu::Nvm::new(1 << 12);
        for (base, words) in &app.image {
            nvm.write_image(*base, words);
        }
        let mut periph = gecko_mcu::Peripherals::new(0);
        gecko_mcu::run_to_completion(&app.program, &mut nvm, &mut periph, 1_000_000).unwrap();
        assert_eq!(nvm.read(app.checksum_addr), app.expected_checksum);
    }
}
