//! `stringsearch` — naive multi-pattern substring search over a text
//! buffer, counting matches and recording first-match positions. In the
//! paper this is the checkpoint-heaviest benchmark (Table III).

use gecko_isa::{BinOp, Cond, ProgramBuilder, Reg, Word};

use crate::{data_stream, App};

const TEXT: u32 = 128;
const PATTERNS: u32 = 4;
const PLEN: u32 = 3;

fn text() -> Vec<Word> {
    let mut g = data_stream(0x5EA);
    (0..TEXT).map(|_| g() % 4 + 'a' as Word).collect()
}

fn patterns() -> Vec<Word> {
    // Four length-3 patterns over the same alphabet, flattened.
    let t = text();
    let mut pats = Vec::new();
    // Two patterns guaranteed present (copied from the text), two arbitrary.
    pats.extend_from_slice(&t[10..13]);
    pats.extend_from_slice(&t[70..73]);
    pats.extend_from_slice(&['a' as Word, 'b' as Word, 'c' as Word]);
    pats.extend_from_slice(&['d' as Word, 'd' as Word, 'a' as Word]);
    pats
}

fn reference(text: &[Word], pats: &[Word]) -> Word {
    let mut count: Word = 0;
    let mut first_positions: Word = 0;
    for p in 0..PATTERNS as usize {
        let pat = &pats[p * PLEN as usize..(p + 1) * PLEN as usize];
        let mut first: Word = -1;
        for i in 0..=(text.len() - PLEN as usize) {
            if &text[i..i + PLEN as usize] == pat {
                count += 1;
                if first < 0 {
                    first = i as Word;
                }
            }
        }
        first_positions = first_positions.wrapping_add(first);
    }
    count.wrapping_mul(1000).wrapping_add(first_positions)
}

/// Builds the `stringsearch` app.
pub fn build() -> App {
    let mut b = ProgramBuilder::new("stringsearch");
    let tseg = b.segment("text", TEXT, false);
    let pseg = b.segment("patterns", PATTERNS * PLEN, false);
    let out = b.segment("out", 1, true);

    let (p_idx, i, k, count, first, firsts, t1, t2) = (
        Reg::R1,
        Reg::R2,
        Reg::R3,
        Reg::R4,
        Reg::R5,
        Reg::R6,
        Reg::R7,
        Reg::R8,
    );
    let (tp, pp) = (Reg::R9, Reg::R10);
    let (tbase, pbase) = (Reg::R11, Reg::R12);
    let limit = (TEXT - PLEN) as i32; // inclusive last start index

    b.mov(p_idx, 0);
    b.mov(count, 0);
    b.mov(firsts, 0);
    b.mov(tbase, tseg as i32);
    b.mov(pbase, pseg as i32);

    let pat_loop = b.new_label("pat_loop");
    let pat_body = b.new_label("pat_body");
    let scan_head = b.new_label("scan_head");
    let scan_body = b.new_label("scan_body");
    let chr_head = b.new_label("chr_head");
    let chr_body = b.new_label("chr_body");
    let matched = b.new_label("matched");
    let first_hit = b.new_label("first_hit");
    let scan_next = b.new_label("scan_next");
    let pat_done = b.new_label("pat_done");
    let exit = b.new_label("exit");

    b.bind(pat_loop);
    b.set_loop_bound(PATTERNS);
    b.branch(Cond::Lt, p_idx, PATTERNS as i32, pat_body, exit);

    b.bind(pat_body);
    b.mov(first, -1);
    b.mov(i, 0);
    b.jump(scan_head);

    b.bind(scan_head);
    b.set_loop_bound(TEXT);
    b.branch(Cond::Le, i, limit, scan_body, pat_done);

    b.bind(scan_body);
    b.mov(k, 0);
    b.jump(chr_head);
    b.bind(chr_head);
    b.set_loop_bound(PLEN);
    b.branch(Cond::Lt, k, PLEN as i32, chr_body, matched);
    b.bind(chr_body);
    b.bin(BinOp::Add, tp, tbase, i);
    b.bin(BinOp::Add, tp, tp, k);
    b.load(t1, tp, 0);
    b.bin(BinOp::Mul, t2, p_idx, PLEN as i32);
    b.bin(BinOp::Add, pp, pbase, t2);
    b.bin(BinOp::Add, pp, pp, k);
    b.load(t2, pp, 0);
    b.bin(BinOp::Add, k, k, 1);
    b.branch(Cond::Eq, t1, t2, chr_head, scan_next);

    b.bind(matched);
    b.bin(BinOp::Add, count, count, 1);
    b.branch(Cond::Lt, first, 0, first_hit, scan_next);
    b.bind(first_hit);
    b.mov(first, i);
    b.jump(scan_next);

    b.bind(scan_next);
    b.bin(BinOp::Add, i, i, 1);
    b.jump(scan_head);

    b.bind(pat_done);
    b.bin(BinOp::Add, firsts, firsts, first);
    b.bin(BinOp::Add, p_idx, p_idx, 1);
    b.jump(pat_loop);

    b.bind(exit);
    b.bin(BinOp::Mul, count, count, 1000);
    b.bin(BinOp::Add, count, count, firsts);
    b.mov(tp, out as i32);
    b.store(count, tp, 0);
    b.send(count);
    b.halt();

    let t_img = text();
    let p_img = patterns();
    let expected = reference(&t_img, &p_img);
    App {
        name: "stringsearch",
        program: b.finish().expect("stringsearch builds"),
        image: vec![(tseg, t_img), (pseg, p_img)],
        checksum_addr: out,
        expected_checksum: expected,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn planted_patterns_are_found() {
        let t = text();
        let p = patterns();
        // Patterns 0 and 1 were copied from the text, so ≥2 matches and
        // non-negative first positions for them.
        let checksum = reference(&t, &p);
        let count = checksum / 1000;
        assert!(count >= 2, "planted patterns must match: {checksum}");
    }

    #[test]
    fn golden_run_matches_reference() {
        let app = build();
        let mut nvm = gecko_mcu::Nvm::new(1 << 12);
        for (base, words) in &app.image {
            nvm.write_image(*base, words);
        }
        let mut periph = gecko_mcu::Peripherals::new(0);
        gecko_mcu::run_to_completion(&app.program, &mut nvm, &mut periph, 3_000_000).unwrap();
        assert_eq!(nvm.read(app.checksum_addr), app.expected_checksum);
    }
}
