//! `dhrystone` — the classic synthetic integer workload: record copies,
//! string comparison, arithmetic procedures and branchy control flow,
//! iterated a fixed number of times.

use gecko_isa::{BinOp, Cond, ProgramBuilder, Reg, Word};

use crate::{data_stream, App};

const RUNS: u32 = 20;
const REC: u32 = 16;

fn record() -> Vec<Word> {
    let mut g = data_stream(0xD4);
    (0..REC).map(|_| g() & 0xFF).collect()
}

fn string_a() -> Vec<Word> {
    b"DHRYSTONE PROGRAM".iter().map(|&c| c as Word).collect()
}

fn string_b() -> Vec<Word> {
    b"DHRYSTONE PROGXAM".iter().map(|&c| c as Word).collect()
}

fn reference(rec: &[Word], sa: &[Word], sb: &[Word]) -> Word {
    let mut sum: Word = 0;
    let mut glob: Word = 0;
    for run in 0..RUNS as Word {
        // Proc: record copy + field arithmetic.
        let copy: Vec<Word> = rec.to_vec();
        let f0 = copy[0] + run;
        let f1 = copy[1].wrapping_mul(3);
        glob = glob.wrapping_add(f0).wrapping_add(f1);
        // Func: string comparison — position of first mismatch.
        let mut mism: Word = sa.len() as Word;
        for (k, (&a, &b)) in sa.iter().zip(sb).enumerate() {
            if a != b {
                mism = k as Word;
                break;
            }
        }
        // Branchy select.
        let pick = if glob % 3 == 0 {
            glob / 2
        } else if glob % 3 == 1 {
            glob.wrapping_mul(2)
        } else {
            glob - 7
        };
        sum = sum.wrapping_add(mism).wrapping_add(pick % 1000);
    }
    sum
}

/// Builds the `dhrystone` app.
pub fn build() -> App {
    let mut b = ProgramBuilder::new("dhrystone");
    let rec = b.segment("record", REC, false);
    let copy = b.segment("copy", REC, true);
    let sa = b.segment("str_a", 17, false);
    let sb = b.segment("str_b", 17, false);
    let out = b.segment("out", 1, true);
    let sa_len = string_a().len() as i32;

    let (run, sum, glob, k, t1, t2, p, q) = (
        Reg::R1,
        Reg::R2,
        Reg::R3,
        Reg::R4,
        Reg::R5,
        Reg::R6,
        Reg::R7,
        Reg::R8,
    );
    let (mism, pick) = (Reg::R9, Reg::R10);
    let (recb, copyb, sab, sbb) = (Reg::R11, Reg::R12, Reg::R13, Reg::R14);

    b.mov(run, 0);
    b.mov(sum, 0);
    b.mov(glob, 0);
    b.mov(recb, rec as i32);
    b.mov(copyb, copy as i32);
    b.mov(sab, sa as i32);
    b.mov(sbb, sb as i32);

    let main_loop = b.new_label("main");
    let body = b.new_label("body");
    let copy_head = b.new_label("copy_head");
    let copy_body = b.new_label("copy_body");
    let fields = b.new_label("fields");
    let cmp_head = b.new_label("cmp_head");
    let cmp_body = b.new_label("cmp_body");
    let cmp_mismatch = b.new_label("cmp_mismatch");
    let cmp_next = b.new_label("cmp_next");
    let select = b.new_label("select");
    let sel0 = b.new_label("sel0");
    let sel_not0 = b.new_label("sel_not0");
    let sel1 = b.new_label("sel1");
    let sel2 = b.new_label("sel2");
    let tally = b.new_label("tally");
    let next = b.new_label("next");
    let exit = b.new_label("exit");

    b.bind(main_loop);
    b.set_loop_bound(RUNS);
    b.branch(Cond::Lt, run, RUNS as i32, body, exit);

    // record copy
    b.bind(body);
    b.mov(k, 0);
    b.jump(copy_head);
    b.bind(copy_head);
    b.set_loop_bound(REC);
    b.branch(Cond::Lt, k, REC as i32, copy_body, fields);
    b.bind(copy_body);
    b.bin(BinOp::Add, p, recb, k);
    b.load(t1, p, 0);
    b.bin(BinOp::Add, q, copyb, k);
    b.store(t1, q, 0);
    b.bin(BinOp::Add, k, k, 1);
    b.jump(copy_head);

    // field arithmetic on the copy
    b.bind(fields);
    b.mov(q, copyb);
    b.load(t1, q, 0);
    b.bin(BinOp::Add, t1, t1, run); // f0 = copy[0] + run
    b.load(t2, q, 1);
    b.bin(BinOp::Mul, t2, t2, 3); // f1 = copy[1] * 3
    b.bin(BinOp::Add, glob, glob, t1);
    b.bin(BinOp::Add, glob, glob, t2);
    // string compare
    b.mov(k, 0);
    b.mov(mism, sa_len);
    b.jump(cmp_head);
    b.bind(cmp_head);
    b.set_loop_bound(17);
    b.branch(Cond::Lt, k, sa_len, cmp_body, select);
    b.bind(cmp_body);
    b.bin(BinOp::Add, p, sab, k);
    b.load(t1, p, 0);
    b.bin(BinOp::Add, q, sbb, k);
    b.load(t2, q, 0);
    b.branch(Cond::Ne, t1, t2, cmp_mismatch, cmp_next);
    b.bind(cmp_mismatch);
    b.mov(mism, k);
    b.jump(select);
    b.bind(cmp_next);
    b.bin(BinOp::Add, k, k, 1);
    b.jump(cmp_head);

    // three-way select on glob % 3
    b.bind(select);
    b.bin(BinOp::Rem, t1, glob, 3);
    b.branch(Cond::Eq, t1, 0, sel0, sel_not0);
    b.bind(sel0);
    b.bin(BinOp::Div, pick, glob, 2);
    b.jump(tally);
    b.bind(sel_not0);
    b.branch(Cond::Eq, t1, 1, sel1, sel2);
    b.bind(sel1);
    b.bin(BinOp::Mul, pick, glob, 2);
    b.jump(tally);
    b.bind(sel2);
    b.bin(BinOp::Sub, pick, glob, 7);
    b.jump(tally);

    b.bind(tally);
    b.bin(BinOp::Rem, t2, pick, 1000);
    b.bin(BinOp::Add, sum, sum, mism);
    b.bin(BinOp::Add, sum, sum, t2);
    b.jump(next);
    b.bind(next);
    b.bin(BinOp::Add, run, run, 1);
    b.jump(main_loop);

    b.bind(exit);
    b.mov(p, out as i32);
    b.store(sum, p, 0);
    b.send(sum);
    b.halt();

    let rec_img = record();
    let (sa_img, sb_img) = (string_a(), string_b());
    let expected = reference(&rec_img, &sa_img, &sb_img);
    App {
        name: "dhrystone",
        program: b.finish().expect("dhrystone builds"),
        image: vec![(rec, rec_img), (sa, sa_img), (sb, sb_img)],
        checksum_addr: out,
        expected_checksum: expected,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_mismatch_at_position_14() {
        let (a, b) = (string_a(), string_b());
        let mism = a.iter().zip(&b).position(|(x, y)| x != y).unwrap();
        assert_eq!(mism, 14);
    }

    #[test]
    fn golden_run_matches_reference() {
        let app = build();
        let mut nvm = gecko_mcu::Nvm::new(1 << 12);
        for (base, words) in &app.image {
            nvm.write_image(*base, words);
        }
        let mut periph = gecko_mcu::Peripherals::new(0);
        gecko_mcu::run_to_completion(&app.program, &mut nvm, &mut periph, 2_000_000).unwrap();
        assert_eq!(nvm.read(app.checksum_addr), app.expected_checksum);
    }
}
