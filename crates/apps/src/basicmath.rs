//! `basicmath` — integer square roots (Newton's method) and greatest common
//! divisors (Euclid) over a batch of inputs, the MiBench math kernel in
//! fixed point.

use gecko_isa::{BinOp, Cond, ProgramBuilder, Reg, Word};

use crate::{data_stream, App};

const N: u32 = 16;

fn inputs() -> Vec<Word> {
    let mut g = data_stream(0xBA51);
    (0..N).map(|_| (g() & 0x3FFF) + 1).collect()
}

fn isqrt(v: Word) -> Word {
    // Newton's method exactly as the assembly performs it.
    let mut x = v;
    let mut y = (x + 1) / 2;
    while y < x {
        x = y;
        y = (x + v / x) / 2;
    }
    x
}

fn gcd(mut a: Word, mut b: Word) -> Word {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

fn reference(data: &[Word]) -> Word {
    let mut sum: Word = 0;
    for (i, &v) in data.iter().enumerate() {
        let s = isqrt(v);
        let g = gcd(v, 72 + i as Word);
        sum = sum.wrapping_add(s.wrapping_mul(5)).wrapping_add(g);
    }
    sum
}

/// Builds the `basicmath` app.
pub fn build() -> App {
    let mut b = ProgramBuilder::new("basicmath");
    let data = b.segment("inputs", N, false);
    let out = b.segment("out", 1, true);

    let (i, v, x, y, sum, t1, t2, p) = (
        Reg::R1,
        Reg::R2,
        Reg::R3,
        Reg::R4,
        Reg::R5,
        Reg::R6,
        Reg::R7,
        Reg::R8,
    );
    let (ga, gb) = (Reg::R9, Reg::R10);
    let base = Reg::R11;

    b.mov(i, 0);
    b.mov(sum, 0);
    b.mov(base, data as i32);

    let outer = b.new_label("outer");
    let obody = b.new_label("obody");
    let sqrt_head = b.new_label("sqrt_head");
    let sqrt_body = b.new_label("sqrt_body");
    let gcd_init = b.new_label("gcd_init");
    let gcd_head = b.new_label("gcd_head");
    let gcd_body = b.new_label("gcd_body");
    let accumulate = b.new_label("accumulate");
    let exit = b.new_label("exit");

    b.bind(outer);
    b.set_loop_bound(N);
    b.branch(Cond::Lt, i, N as i32, obody, exit);

    b.bind(obody);
    b.bin(BinOp::Add, p, base, i);
    b.load(v, p, 0);
    // isqrt: x = v; y = (x+1)/2; while y < x { x = y; y = (x + v/x)/2 }
    b.mov(x, v);
    b.bin(BinOp::Add, y, x, 1);
    b.bin(BinOp::Div, y, y, 2);
    b.jump(sqrt_head);
    b.bind(sqrt_head);
    b.set_loop_bound(20);
    b.branch(Cond::Lt, y, x, sqrt_body, gcd_init);
    b.bind(sqrt_body);
    b.mov(x, y);
    b.bin(BinOp::Div, t1, v, x);
    b.bin(BinOp::Add, t1, t1, x);
    b.bin(BinOp::Div, y, t1, 2);
    b.jump(sqrt_head);

    // gcd(v, 72 + i)
    b.bind(gcd_init);
    b.mov(ga, v);
    b.bin(BinOp::Add, gb, i, 72);
    b.jump(gcd_head);
    b.bind(gcd_head);
    b.set_loop_bound(40);
    b.branch(Cond::Ne, gb, 0, gcd_body, accumulate);
    b.bind(gcd_body);
    b.bin(BinOp::Rem, t2, ga, gb);
    b.mov(ga, gb);
    b.mov(gb, t2);
    b.jump(gcd_head);

    b.bind(accumulate);
    b.bin(BinOp::Mul, t1, x, 5);
    b.bin(BinOp::Add, sum, sum, t1);
    b.bin(BinOp::Add, sum, sum, ga);
    b.bin(BinOp::Add, i, i, 1);
    b.jump(outer);

    b.bind(exit);
    b.mov(p, out as i32);
    b.store(sum, p, 0);
    b.send(sum);
    b.halt();

    let data_img = inputs();
    let expected = reference(&data_img);
    App {
        name: "basicmath",
        program: b.finish().expect("basicmath builds"),
        image: vec![(data, data_img)],
        checksum_addr: out,
        expected_checksum: expected,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn isqrt_is_exact_floor() {
        for v in 1..2000 {
            let s = isqrt(v);
            assert!(s * s <= v, "{v}");
            assert!((s + 1) * (s + 1) > v, "{v}");
        }
    }

    #[test]
    fn gcd_matches_euclid_properties() {
        assert_eq!(gcd(12, 18), 6);
        assert_eq!(gcd(7, 13), 1);
        assert_eq!(gcd(100, 0), 100);
    }

    #[test]
    fn golden_run_matches_reference() {
        let app = build();
        let mut nvm = gecko_mcu::Nvm::new(1 << 12);
        for (base, words) in &app.image {
            nvm.write_image(*base, words);
        }
        let mut periph = gecko_mcu::Peripherals::new(0);
        gecko_mcu::run_to_completion(&app.program, &mut nvm, &mut periph, 2_000_000).unwrap();
        assert_eq!(nvm.read(app.checksum_addr), app.expected_checksum);
    }
}
