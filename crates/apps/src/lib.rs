//! # gecko-apps
//!
//! The benchmark applications of the paper's evaluation (Figures 11–14,
//! Table III): `basicmath`, `bitcnt`, `blink`, `crc16`, `crc32`,
//! `dhrystone`, `dijkstra`, `fft`, `fir`, `qsort` and `stringsearch` —
//! MiBench-style kernels hand-written for the `gecko-isa` machine, with
//! loop bounds annotated for WCET analysis and data laid out in declared
//! segments so the compiler's alias analysis can reason about them.
//!
//! Every app writes a final **checksum** into its output segment; the
//! crash-consistency test suite compares that word against a failure-free
//! golden run. Apps are fixed-point integer kernels (the modeled MCU, like
//! the MSP430, has no FPU).
//!
//! ```
//! let apps = gecko_apps::all_apps();
//! assert_eq!(apps.len(), 11);
//! assert!(apps.iter().any(|a| a.name == "crc32"));
//! ```

pub mod basicmath;
pub mod bitcnt;
pub mod blink;
pub mod crc16;
pub mod crc32;
pub mod dhrystone;
pub mod dijkstra;
pub mod fft;
pub mod fir;
pub mod qsort;
pub mod stringsearch;

use gecko_isa::{Program, Word};

/// A ready-to-run benchmark application.
#[derive(Debug, Clone, PartialEq)]
pub struct App {
    /// Benchmark name as used in the paper's tables.
    pub name: &'static str,
    /// The program (uninstrumented; schemes compile it as needed).
    pub program: Program,
    /// Initial data image: `(base_address, words)` runs to copy into NVM
    /// before (each) execution.
    pub image: Vec<(u32, Vec<Word>)>,
    /// Address of the checksum word the app writes on completion.
    pub checksum_addr: u32,
    /// The checksum value a correct run must produce (verified against a
    /// native Rust implementation in each app's tests).
    pub expected_checksum: Word,
}

impl App {
    /// Upper bound on instructions a complete run may execute (golden-run
    /// budget for tests and simulators).
    pub fn step_budget(&self) -> u64 {
        5_000_000
    }
}

/// All eleven benchmarks, in the paper's table order.
pub fn all_apps() -> Vec<App> {
    vec![
        basicmath::build(),
        bitcnt::build(),
        blink::build(),
        crc16::build(),
        crc32::build(),
        dhrystone::build(),
        dijkstra::build(),
        fft::build(),
        fir::build(),
        qsort::build(),
        stringsearch::build(),
    ]
}

/// Looks up an app by name.
pub fn app_by_name(name: &str) -> Option<App> {
    all_apps().into_iter().find(|a| a.name == name)
}

/// Deterministic pseudo-random data generator for app inputs
/// ([`gecko_isa::rng::SplitMix64`], pre-mixed seed preserved from the
/// original in-crate stream so golden checksums stay stable).
pub(crate) fn data_stream(seed: u64) -> impl FnMut() -> Word {
    let mut rng = gecko_isa::SplitMix64::from_state(
        seed.wrapping_mul(gecko_isa::rng::GOLDEN_GAMMA)
            .wrapping_add(0xD1B5),
    );
    move || (rng.next_u64() & 0x7FFF) as Word
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eleven_apps_with_unique_names() {
        let apps = all_apps();
        assert_eq!(apps.len(), 11);
        let mut names: Vec<_> = apps.iter().map(|a| a.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 11);
    }

    #[test]
    fn lookup_by_name() {
        assert!(app_by_name("fft").is_some());
        assert!(app_by_name("doom").is_none());
    }

    #[test]
    fn all_programs_verify() {
        for app in all_apps() {
            gecko_isa::verify(&app.program).unwrap_or_else(|e| panic!("{}: {e}", app.name));
        }
    }

    #[test]
    fn data_stream_is_deterministic() {
        let mut a = data_stream(1);
        let mut b = data_stream(1);
        for _ in 0..32 {
            assert_eq!(a(), b());
        }
    }

    /// Every app must run to completion on the bare machine and produce its
    /// expected checksum (golden run).
    #[test]
    fn golden_runs_produce_expected_checksums() {
        for app in all_apps() {
            let mut nvm = gecko_mcu::Nvm::new(1 << 16);
            for (base, words) in &app.image {
                nvm.write_image(*base, words);
            }
            let mut periph = gecko_mcu::Peripherals::new(7);
            gecko_mcu::run_to_completion(&app.program, &mut nvm, &mut periph, app.step_budget())
                .unwrap_or_else(|e| panic!("{}: {e}", app.name));
            assert_eq!(
                nvm.read(app.checksum_addr),
                app.expected_checksum,
                "{} checksum mismatch",
                app.name
            );
        }
    }

    /// Every app must survive the full GECKO pipeline.
    #[test]
    fn all_apps_compile_under_gecko() {
        for app in all_apps() {
            let out =
                gecko_compiler::compile(&app.program, &gecko_compiler::CompileOptions::default())
                    .unwrap_or_else(|e| panic!("{}: {e}", app.name));
            assert!(!out.regions.is_empty(), "{}", app.name);
        }
    }
}
