//! Backward liveness analysis with per-point queries.

use gecko_isa::{BlockId, Program, Reg};

/// A set of registers as a 16-bit mask.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RegSet(u16);

impl RegSet {
    /// The empty set.
    pub const EMPTY: RegSet = RegSet(0);

    /// All sixteen registers.
    pub const ALL: RegSet = RegSet(u16::MAX);

    /// Inserts a register; returns whether the set changed.
    pub fn insert(&mut self, r: Reg) -> bool {
        let before = self.0;
        self.0 |= 1 << r.index();
        self.0 != before
    }

    /// Removes a register.
    pub fn remove(&mut self, r: Reg) {
        self.0 &= !(1 << r.index());
    }

    /// Whether the set contains `r`.
    pub fn contains(&self, r: Reg) -> bool {
        self.0 & (1 << r.index()) != 0
    }

    /// Set union; returns whether `self` changed.
    pub fn union_with(&mut self, other: RegSet) -> bool {
        let before = self.0;
        self.0 |= other.0;
        self.0 != before
    }

    /// Number of registers in the set.
    pub fn len(&self) -> usize {
        self.0.count_ones() as usize
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.0 == 0
    }

    /// Iterates over members in register order.
    pub fn iter(&self) -> impl Iterator<Item = Reg> + '_ {
        let bits = self.0;
        Reg::all().filter(move |r| bits & (1 << r.index()) != 0)
    }
}

impl FromIterator<Reg> for RegSet {
    fn from_iter<I: IntoIterator<Item = Reg>>(iter: I) -> RegSet {
        let mut s = RegSet::EMPTY;
        for r in iter {
            s.insert(r);
        }
        s
    }
}

/// Classic backward may-liveness over the CFG.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Liveness {
    live_out: Vec<RegSet>,
    live_in: Vec<RegSet>,
}

impl Liveness {
    /// Computes liveness for `program`.
    pub fn compute(program: &Program) -> Liveness {
        let n = program.block_count();
        let mut live_in = vec![RegSet::EMPTY; n];
        let mut live_out = vec![RegSet::EMPTY; n];
        let mut changed = true;
        while changed {
            changed = false;
            // Backward problem: iterate blocks in reverse index order (any
            // order converges; reverse tends to be fast).
            for idx in (0..n).rev() {
                let b = BlockId::new(idx);
                let mut out = RegSet::EMPTY;
                for s in program.successors(b) {
                    out.union_with(live_in[s.index()]);
                }
                let inb = Self::transfer(program, b, out);
                if out != live_out[idx] {
                    live_out[idx] = out;
                    changed = true;
                }
                if inb != live_in[idx] {
                    live_in[idx] = inb;
                    changed = true;
                }
            }
        }
        Liveness { live_out, live_in }
    }

    fn transfer(program: &Program, b: BlockId, mut live: RegSet) -> RegSet {
        let block = program.block(b);
        for r in block.term.uses() {
            live.insert(r);
        }
        for inst in block.insts.iter().rev() {
            if let Some(d) = inst.def() {
                live.remove(d);
            }
            for u in inst.uses() {
                live.insert(u);
            }
        }
        live
    }

    /// Registers live at the start of block `b`.
    pub fn live_in(&self, b: BlockId) -> RegSet {
        self.live_in[b.index()]
    }

    /// Registers live at the end of block `b`.
    pub fn live_out(&self, b: BlockId) -> RegSet {
        self.live_out[b.index()]
    }

    /// Registers live immediately **before** instruction `index` of block
    /// `b` (`index == insts.len()` means before the terminator).
    pub fn live_at(&self, program: &Program, b: BlockId, index: usize) -> RegSet {
        let block = program.block(b);
        assert!(index <= block.insts.len(), "index out of range");
        let mut live = self.live_out[b.index()];
        for r in block.term.uses() {
            live.insert(r);
        }
        for inst in block.insts[index..].iter().rev() {
            if let Some(d) = inst.def() {
                live.remove(d);
            }
            for u in inst.uses() {
                live.insert(u);
            }
        }
        live
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gecko_isa::{BinOp, Cond, ProgramBuilder};

    #[test]
    fn regset_basics() {
        let mut s = RegSet::EMPTY;
        assert!(s.insert(Reg::R3));
        assert!(!s.insert(Reg::R3), "no change on re-insert");
        assert!(s.contains(Reg::R3));
        assert_eq!(s.len(), 1);
        s.remove(Reg::R3);
        assert!(s.is_empty());
        let s2: RegSet = [Reg::R1, Reg::R5].into_iter().collect();
        assert_eq!(s2.iter().collect::<Vec<_>>(), vec![Reg::R1, Reg::R5]);
    }

    #[test]
    fn straight_line_liveness() {
        // r1 = 1; r2 = r1 + 1; halt  — nothing live at exit.
        let mut b = ProgramBuilder::new("t");
        b.mov(Reg::R1, 1);
        b.bin(BinOp::Add, Reg::R2, Reg::R1, 1);
        b.halt();
        let p = b.finish().unwrap();
        let l = Liveness::compute(&p);
        let entry = p.entry();
        assert!(l.live_in(entry).is_empty());
        // Before the add, r1 is live.
        let at1 = l.live_at(&p, entry, 1);
        assert!(at1.contains(Reg::R1));
        assert!(!at1.contains(Reg::R2));
    }

    #[test]
    fn loop_carried_liveness() {
        // acc and i live around the loop.
        let mut b = ProgramBuilder::new("t");
        let (acc, i) = (Reg::R1, Reg::R2);
        b.mov(acc, 0);
        b.mov(i, 0);
        let head = b.new_label("head");
        let body = b.new_label("body");
        let exit = b.new_label("exit");
        b.bind(head);
        b.branch(Cond::Lt, i, 8, body, exit);
        b.bind(body);
        b.bin(BinOp::Add, acc, acc, i);
        b.bin(BinOp::Add, i, i, 1);
        b.jump(head);
        b.bind(exit);
        b.send(acc);
        b.halt();
        let p = b.finish().unwrap();
        let l = Liveness::compute(&p);
        let head_in = l.live_in(head);
        assert!(head_in.contains(acc), "acc live at header");
        assert!(head_in.contains(i), "i live at header");
        assert!(l.live_in(exit).contains(acc));
        assert!(!l.live_out(exit).contains(acc), "dead after send");
    }

    #[test]
    fn dead_code_not_live() {
        let mut b = ProgramBuilder::new("t");
        b.mov(Reg::R7, 9); // dead: never used
        b.halt();
        let p = b.finish().unwrap();
        let l = Liveness::compute(&p);
        assert!(!l.live_at(&p, p.entry(), 0).contains(Reg::R7));
    }

    #[test]
    fn branch_condition_is_a_use() {
        let mut b = ProgramBuilder::new("t");
        b.mov(Reg::R4, 0);
        let t = b.new_label("t");
        let f = b.new_label("f");
        b.branch(Cond::Eq, Reg::R4, 0, t, f);
        b.bind(t);
        b.halt();
        b.bind(f);
        b.halt();
        let p = b.finish().unwrap();
        let l = Liveness::compute(&p);
        // Live before the terminator of the entry block.
        let at_term = l.live_at(&p, p.entry(), 1);
        assert!(at_term.contains(Reg::R4));
    }
}
