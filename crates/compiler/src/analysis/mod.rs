//! Program analyses shared by the GECKO passes.

pub mod alias;
pub mod dominators;
pub mod liveness;
pub mod loops;
pub mod reaching;

pub use alias::{AbsVal, AliasAnalysis, MemLoc};
pub use dominators::Dominators;
pub use liveness::Liveness;
pub use loops::{loop_headers, natural_loops, NaturalLoop};
pub use reaching::{DefSite, ReachingDefs};
