//! Dominator computation (iterative Cooper–Harvey–Kennedy algorithm).

use gecko_isa::{BlockId, Program};

/// The dominator tree of a program's CFG.
///
/// Unreachable blocks have no immediate dominator and dominate nothing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dominators {
    /// `idom[b]` = immediate dominator of block `b` (entry maps to itself).
    idom: Vec<Option<BlockId>>,
    rpo_index: Vec<usize>,
}

impl Dominators {
    /// Computes dominators for `program`.
    pub fn compute(program: &Program) -> Dominators {
        let n = program.block_count();
        let rpo = program.reverse_post_order();
        let mut rpo_index = vec![usize::MAX; n];
        for (i, b) in rpo.iter().enumerate() {
            rpo_index[b.index()] = i;
        }
        let preds = program.predecessors();
        let entry = program.entry();
        let mut idom: Vec<Option<BlockId>> = vec![None; n];
        idom[entry.index()] = Some(entry);

        let mut changed = true;
        while changed {
            changed = false;
            for &b in rpo.iter().skip(1) {
                let mut new_idom: Option<BlockId> = None;
                for &p in &preds[b.index()] {
                    if idom[p.index()].is_none() {
                        continue; // unprocessed or unreachable
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(&idom, &rpo_index, p, cur),
                    });
                }
                if let Some(ni) = new_idom {
                    if idom[b.index()] != Some(ni) {
                        idom[b.index()] = Some(ni);
                        changed = true;
                    }
                }
            }
        }
        Dominators { idom, rpo_index }
    }

    /// The immediate dominator of `b` (the entry's is itself); `None` for
    /// unreachable blocks.
    pub fn idom(&self, b: BlockId) -> Option<BlockId> {
        self.idom[b.index()]
    }

    /// Whether `a` dominates `b` (reflexive).
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        if self.idom[b.index()].is_none() {
            return false; // b unreachable
        }
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            let Some(parent) = self.idom[cur.index()] else {
                return false;
            };
            if parent == cur {
                return cur == a; // reached entry
            }
            cur = parent;
        }
    }
}

fn intersect(
    idom: &[Option<BlockId>],
    rpo_index: &[usize],
    mut a: BlockId,
    mut b: BlockId,
) -> BlockId {
    while a != b {
        while rpo_index[a.index()] > rpo_index[b.index()] {
            a = idom[a.index()].expect("processed block");
        }
        while rpo_index[b.index()] > rpo_index[a.index()] {
            b = idom[b.index()].expect("processed block");
        }
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use gecko_isa::{Block, Cond, Operand, Program, Reg, Terminator};

    fn block(term: Terminator) -> Block {
        Block::new(vec![], term)
    }

    fn branch(taken: usize, fall: usize) -> Terminator {
        Terminator::Branch {
            cond: Cond::Eq,
            lhs: Reg::R0,
            rhs: Operand::Imm(0),
            taken: BlockId::new(taken),
            fall: BlockId::new(fall),
        }
    }

    /// 0 → {1, 2} → 3 (diamond).
    fn diamond() -> Program {
        Program::from_parts(
            "d",
            vec![
                block(branch(1, 2)),
                block(Terminator::Jump(BlockId::new(3))),
                block(Terminator::Jump(BlockId::new(3))),
                block(Terminator::Halt),
            ],
            BlockId::new(0),
            vec![],
        )
    }

    #[test]
    fn diamond_dominators() {
        let p = diamond();
        let d = Dominators::compute(&p);
        let b = BlockId::new;
        assert_eq!(d.idom(b(0)), Some(b(0)));
        assert_eq!(d.idom(b(1)), Some(b(0)));
        assert_eq!(d.idom(b(2)), Some(b(0)));
        assert_eq!(d.idom(b(3)), Some(b(0)), "join dominated by fork only");
        assert!(d.dominates(b(0), b(3)));
        assert!(!d.dominates(b(1), b(3)));
        assert!(d.dominates(b(3), b(3)), "reflexive");
    }

    /// 0 → 1 → 2 → 1 (loop), 2 → 3 exit.
    #[test]
    fn loop_dominators() {
        let p = Program::from_parts(
            "l",
            vec![
                block(Terminator::Jump(BlockId::new(1))),
                block(Terminator::Jump(BlockId::new(2))),
                block(branch(1, 3)),
                block(Terminator::Halt),
            ],
            BlockId::new(0),
            vec![],
        );
        let d = Dominators::compute(&p);
        let b = BlockId::new;
        assert_eq!(d.idom(b(1)), Some(b(0)));
        assert_eq!(d.idom(b(2)), Some(b(1)));
        assert_eq!(d.idom(b(3)), Some(b(2)));
        assert!(d.dominates(b(1), b(2)), "header dominates latch");
    }

    #[test]
    fn unreachable_blocks_have_no_idom() {
        let p = Program::from_parts(
            "u",
            vec![block(Terminator::Halt), block(Terminator::Halt)],
            BlockId::new(0),
            vec![],
        );
        let d = Dominators::compute(&p);
        assert_eq!(d.idom(BlockId::new(1)), None);
        assert!(!d.dominates(BlockId::new(0), BlockId::new(1)));
    }
}
