//! Abstract-address alias analysis.
//!
//! Registers are tracked through a tiny constant/segment lattice:
//!
//! * [`AbsVal::Exact`] — the register holds a known constant;
//! * [`AbsVal::InSeg`] — the register holds an address somewhere inside a
//!   declared [`gecko_isa::Segment`] (base + unknown index);
//! * [`AbsVal::Unknown`] — anything.
//!
//! Memory accesses then classify to a [`MemLoc`], and `may_alias` /
//! WARAW-style must-equality questions are answered conservatively. The
//! analysis trusts segment declarations: programs are assumed to index
//! within the segment a pointer was derived from (our apps are built that
//! way; wild pointers degrade soundly to [`MemLoc::Any`] only when the
//! *base* is unknown, so untracked arithmetic stays conservative).

use gecko_isa::{BinOp, BlockId, Inst, Operand, Program, Reg};

/// Abstract value of a register.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AbsVal {
    /// Known constant (usable as an exact address).
    Exact(i32),
    /// Unknown value lying within segment `seg` (index into the program's
    /// segment table).
    InSeg(usize),
    /// No information.
    Unknown,
}

impl AbsVal {
    /// Lattice meet (join of paths).
    fn meet(self, other: AbsVal, program: &Program) -> AbsVal {
        use AbsVal::*;
        match (self, other) {
            (Exact(a), Exact(b)) if a == b => Exact(a),
            (a, b) => {
                // Two different values may still share a segment.
                match (a.segment(program), b.segment(program)) {
                    (Some(s1), Some(s2)) if s1 == s2 => InSeg(s1),
                    _ => Unknown,
                }
            }
        }
    }

    /// The segment this value certainly lies in, if any.
    fn segment(self, program: &Program) -> Option<usize> {
        match self {
            AbsVal::Exact(v) => {
                if v >= 0 {
                    program.segment_of(v as u32)
                } else {
                    None
                }
            }
            AbsVal::InSeg(s) => Some(s),
            AbsVal::Unknown => None,
        }
    }
}

/// Abstract location of a memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemLoc {
    /// Exactly this word address.
    Addr(u32),
    /// Somewhere within this segment.
    Seg(usize),
    /// Could be anywhere.
    Any,
}

impl MemLoc {
    /// Conservative may-alias between two locations.
    pub fn may_alias(self, other: MemLoc, program: &Program) -> bool {
        use MemLoc::*;
        match (self, other) {
            (Addr(a), Addr(b)) => a == b,
            (Addr(a), Seg(s)) | (Seg(s), Addr(a)) => {
                program.segments().get(s).is_some_and(|seg| seg.contains(a))
            }
            (Seg(a), Seg(b)) => a == b,
            (Any, _) | (_, Any) => true,
        }
    }

    /// Whether this location is certainly within a read-only segment, and
    /// therefore can never participate in an anti-dependence.
    pub fn is_read_only(self, program: &Program) -> bool {
        let seg = match self {
            MemLoc::Addr(a) => program.segment_of(a),
            MemLoc::Seg(s) => Some(s),
            MemLoc::Any => None,
        };
        seg.is_some_and(|s| !program.segments()[s].writable)
    }
}

/// Per-block abstract register states with per-point queries.
#[derive(Debug, Clone)]
pub struct AliasAnalysis {
    /// Abstract register state at entry of each block.
    block_in: Vec<[AbsVal; Reg::COUNT]>,
}

impl AliasAnalysis {
    /// Runs the forward dataflow to fixpoint.
    pub fn compute(program: &Program) -> AliasAnalysis {
        let n = program.block_count();
        // Registers boot to zero, so the entry state is Exact(0); other
        // blocks start optimistic (Exact of nothing = use Unknown lattice
        // bottom substitute: start from "not yet visited").
        let mut block_in: Vec<Option<[AbsVal; Reg::COUNT]>> = vec![None; n];
        block_in[program.entry().index()] = Some([AbsVal::Exact(0); Reg::COUNT]);

        let rpo = program.reverse_post_order();
        let mut changed = true;
        while changed {
            changed = false;
            for &b in &rpo {
                let Some(state_in) = block_in[b.index()] else {
                    continue;
                };
                let state_out = Self::transfer_block(program, b, state_in);
                for s in program.successors(b) {
                    let merged = match block_in[s.index()] {
                        None => state_out,
                        Some(prev) => {
                            let mut m = prev;
                            for (i, slot) in m.iter_mut().enumerate() {
                                *slot = slot.meet(state_out[i], program);
                            }
                            m
                        }
                    };
                    if block_in[s.index()] != Some(merged) {
                        block_in[s.index()] = Some(merged);
                        changed = true;
                    }
                }
            }
        }
        AliasAnalysis {
            block_in: block_in
                .into_iter()
                .map(|s| s.unwrap_or([AbsVal::Unknown; Reg::COUNT]))
                .collect(),
        }
    }

    fn transfer_block(
        program: &Program,
        b: BlockId,
        mut state: [AbsVal; Reg::COUNT],
    ) -> [AbsVal; Reg::COUNT] {
        for inst in &program.block(b).insts {
            Self::transfer(program, *inst, &mut state);
        }
        state
    }

    fn operand(state: &[AbsVal; Reg::COUNT], op: Operand) -> AbsVal {
        match op {
            Operand::Reg(r) => state[r.index()],
            Operand::Imm(v) => AbsVal::Exact(v),
        }
    }

    fn transfer(program: &Program, inst: Inst, state: &mut [AbsVal; Reg::COUNT]) {
        match inst {
            Inst::Mov { dst, src } => state[dst.index()] = Self::operand(state, src),
            Inst::Bin { op, dst, lhs, rhs } => {
                let l = state[lhs.index()];
                let r = Self::operand(state, rhs);
                state[dst.index()] = Self::transfer_bin(program, op, l, r);
            }
            Inst::Load { dst, .. } => state[dst.index()] = AbsVal::Unknown,
            Inst::Io { op, reg } => {
                if matches!(op, gecko_isa::IoOp::Sense) {
                    state[reg.index()] = AbsVal::Unknown;
                }
            }
            _ => {}
        }
    }

    fn transfer_bin(program: &Program, op: BinOp, l: AbsVal, r: AbsVal) -> AbsVal {
        use AbsVal::*;
        if let (Exact(a), Exact(b)) = (l, r) {
            return Exact(op.eval(a, b));
        }
        match op {
            BinOp::Add | BinOp::Sub => {
                // pointer ± index stays in the pointer's segment (programs
                // index within their declared arrays).
                match (l.segment(program), r) {
                    (Some(s), _) => InSeg(s),
                    (None, _) => match r.segment(program) {
                        Some(s) if op == BinOp::Add => InSeg(s),
                        _ => Unknown,
                    },
                }
            }
            _ => Unknown,
        }
    }

    /// Abstract register state just before instruction `index` of block `b`.
    pub fn state_at(&self, program: &Program, b: BlockId, index: usize) -> [AbsVal; Reg::COUNT] {
        let mut state = self.block_in[b.index()];
        for inst in &program.block(b).insts[..index] {
            Self::transfer(program, *inst, &mut state);
        }
        state
    }

    /// The abstract location accessed by the load/store at `(b, index)`.
    ///
    /// # Panics
    ///
    /// Panics if the instruction there is not a memory access.
    pub fn access_loc(&self, program: &Program, b: BlockId, index: usize) -> MemLoc {
        let inst = program.block(b).insts[index];
        let state = self.state_at(program, b, index);
        let (base, off) = match inst {
            Inst::Load { base, off, .. } => (base, off),
            Inst::Store { base, off, .. } => (base, off),
            other => panic!("not a memory access: {other}"),
        };
        Self::loc_of(program, state[base.index()], off)
    }

    /// Classifies `base_val + off` as a memory location.
    pub fn loc_of(_program: &Program, base_val: AbsVal, off: i32) -> MemLoc {
        match base_val {
            AbsVal::Exact(v) => {
                let addr = v.wrapping_add(off);
                if addr >= 0 {
                    MemLoc::Addr(addr as u32)
                } else {
                    MemLoc::Any
                }
            }
            AbsVal::InSeg(s) => MemLoc::Seg(s),
            AbsVal::Unknown => MemLoc::Any,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gecko_isa::{Cond, ProgramBuilder};

    #[test]
    fn constants_propagate() {
        let mut b = ProgramBuilder::new("t");
        let seg = b.segment("a", 16, true);
        b.mov(Reg::R1, seg as i32);
        b.bin(BinOp::Add, Reg::R2, Reg::R1, 4);
        b.load(Reg::R3, Reg::R2, 1);
        b.halt();
        let p = b.finish().unwrap();
        let a = AliasAnalysis::compute(&p);
        assert_eq!(a.access_loc(&p, p.entry(), 2), MemLoc::Addr(seg + 5));
    }

    #[test]
    fn indexed_access_stays_in_segment() {
        let mut b = ProgramBuilder::new("t");
        let sa = b.segment("a", 16, true);
        let _sb = b.segment("b", 16, true);
        b.sense(Reg::R4); // unknown index
        b.mov(Reg::R1, sa as i32);
        b.bin(BinOp::Add, Reg::R1, Reg::R1, Reg::R4);
        b.load(Reg::R2, Reg::R1, 0);
        b.halt();
        let p = b.finish().unwrap();
        let a = AliasAnalysis::compute(&p);
        assert_eq!(a.access_loc(&p, p.entry(), 3), MemLoc::Seg(0));
    }

    #[test]
    fn different_segments_do_not_alias() {
        let mut b = ProgramBuilder::new("t");
        let sa = b.segment("a", 16, true);
        let sb = b.segment("b", 16, true);
        b.halt();
        let p = b.finish().unwrap();
        assert!(!MemLoc::Seg(0).may_alias(MemLoc::Seg(1), &p));
        assert!(MemLoc::Addr(sa).may_alias(MemLoc::Seg(0), &p));
        assert!(!MemLoc::Addr(sa).may_alias(MemLoc::Seg(1), &p));
        assert!(MemLoc::Addr(sb).may_alias(MemLoc::Seg(1), &p));
        assert!(MemLoc::Any.may_alias(MemLoc::Addr(sa), &p));
        assert!(!MemLoc::Addr(3).may_alias(MemLoc::Addr(4), &p));
    }

    #[test]
    fn read_only_segments_detected() {
        let mut b = ProgramBuilder::new("t");
        let _rw = b.segment("rw", 8, true);
        let ro = b.segment("ro", 8, false);
        b.halt();
        let p = b.finish().unwrap();
        assert!(MemLoc::Addr(ro).is_read_only(&p));
        assert!(MemLoc::Seg(1).is_read_only(&p));
        assert!(!MemLoc::Seg(0).is_read_only(&p));
        assert!(!MemLoc::Any.is_read_only(&p));
    }

    #[test]
    fn join_meets_states() {
        // Two paths set r1 to different addresses in the same segment:
        // after the join the access still classifies to that segment.
        let mut b = ProgramBuilder::new("t");
        let seg = b.segment("a", 16, true);
        b.mov(Reg::R9, 0);
        let t = b.new_label("t");
        let f = b.new_label("f");
        let j = b.new_label("j");
        b.branch(Cond::Eq, Reg::R9, 0, t, f);
        b.bind(t);
        b.mov(Reg::R1, seg as i32);
        b.jump(j);
        b.bind(f);
        b.mov(Reg::R1, seg as i32 + 4);
        b.jump(j);
        b.bind(j);
        b.load(Reg::R2, Reg::R1, 0);
        b.halt();
        let p = b.finish().unwrap();
        let a = AliasAnalysis::compute(&p);
        assert_eq!(a.access_loc(&p, j, 0), MemLoc::Seg(0));
    }

    #[test]
    fn sense_clobbers_to_unknown() {
        let mut b = ProgramBuilder::new("t");
        b.segment("a", 8, true);
        b.mov(Reg::R1, 2);
        b.sense(Reg::R1);
        b.load(Reg::R2, Reg::R1, 0);
        b.halt();
        let p = b.finish().unwrap();
        let a = AliasAnalysis::compute(&p);
        // Value 2 lies in segment "a", but sense overwrote it.
        assert_eq!(a.access_loc(&p, p.entry(), 2), MemLoc::Any);
    }
}
