//! Reaching-definitions analysis with per-point queries.
//!
//! Used by checkpoint pruning (Section VI-E) to backtrack data dependences:
//! a register's value at a region entry can be reconstructed only when a
//! *unique* definition reaches that point and the definition's operands are
//! themselves reconstructible.

use std::collections::BTreeSet;

use gecko_isa::{BlockId, Program, Reg};

/// A definition site of a register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DefSite {
    /// The implicit power-on definition (registers boot to zero).
    Entry,
    /// The instruction at `(block, index)` defines the register.
    At(BlockId, usize),
}

type RegDefs = [BTreeSet<DefSite>; Reg::COUNT];

fn empty_defs() -> RegDefs {
    Default::default()
}

/// Reaching definitions per register, per block entry, with per-point
/// queries.
#[derive(Debug, Clone)]
pub struct ReachingDefs {
    block_in: Vec<RegDefs>,
}

impl ReachingDefs {
    /// Computes reaching definitions for `program`.
    pub fn compute(program: &Program) -> ReachingDefs {
        let n = program.block_count();
        let mut block_in: Vec<RegDefs> = (0..n).map(|_| empty_defs()).collect();
        // Entry block starts with the implicit zero definitions.
        for set in block_in[program.entry().index()].iter_mut() {
            set.insert(DefSite::Entry);
        }
        let rpo = program.reverse_post_order();
        let mut changed = true;
        while changed {
            changed = false;
            for &b in &rpo {
                let out = Self::transfer_block(program, b, block_in[b.index()].clone());
                for s in program.successors(b) {
                    let dst = &mut block_in[s.index()];
                    for (i, defs) in out.iter().enumerate() {
                        for &d in defs {
                            if dst[i].insert(d) {
                                changed = true;
                            }
                        }
                    }
                }
            }
        }
        ReachingDefs { block_in }
    }

    fn transfer_block(program: &Program, b: BlockId, mut state: RegDefs) -> RegDefs {
        for (i, inst) in program.block(b).insts.iter().enumerate() {
            if let Some(d) = inst.def() {
                let set = &mut state[d.index()];
                set.clear();
                set.insert(DefSite::At(b, i));
            }
        }
        state
    }

    /// The definitions of `r` reaching the point just before instruction
    /// `index` of block `b` (`index == insts.len()` = before the
    /// terminator).
    pub fn defs_at(
        &self,
        program: &Program,
        b: BlockId,
        index: usize,
        r: Reg,
    ) -> BTreeSet<DefSite> {
        let mut state = self.block_in[b.index()].clone();
        for (i, inst) in program.block(b).insts[..index].iter().enumerate() {
            if let Some(d) = inst.def() {
                let set = &mut state[d.index()];
                set.clear();
                set.insert(DefSite::At(b, i));
            }
        }
        state[r.index()].clone()
    }

    /// The unique definition of `r` reaching `(b, index)`, if exactly one
    /// does.
    pub fn unique_def_at(
        &self,
        program: &Program,
        b: BlockId,
        index: usize,
        r: Reg,
    ) -> Option<DefSite> {
        let defs = self.defs_at(program, b, index, r);
        if defs.len() == 1 {
            defs.into_iter().next()
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gecko_isa::{BinOp, Cond, ProgramBuilder};

    #[test]
    fn straight_line_unique_defs() {
        let mut b = ProgramBuilder::new("t");
        b.mov(Reg::R1, 1); // def 0
        b.mov(Reg::R1, 2); // def 1 kills def 0
        b.bin(BinOp::Add, Reg::R2, Reg::R1, 0);
        b.halt();
        let p = b.finish().unwrap();
        let rd = ReachingDefs::compute(&p);
        let e = p.entry();
        assert_eq!(rd.unique_def_at(&p, e, 2, Reg::R1), Some(DefSite::At(e, 1)));
        assert_eq!(rd.unique_def_at(&p, e, 1, Reg::R1), Some(DefSite::At(e, 0)));
        assert_eq!(rd.unique_def_at(&p, e, 0, Reg::R1), Some(DefSite::Entry));
    }

    #[test]
    fn joins_merge_definitions() {
        let mut b = ProgramBuilder::new("t");
        b.mov(Reg::R9, 0);
        let t = b.new_label("t");
        let f = b.new_label("f");
        let j = b.new_label("j");
        b.branch(Cond::Eq, Reg::R9, 0, t, f);
        b.bind(t);
        b.mov(Reg::R1, 10);
        b.jump(j);
        b.bind(f);
        b.mov(Reg::R1, 20);
        b.jump(j);
        b.bind(j);
        b.halt();
        let p = b.finish().unwrap();
        let rd = ReachingDefs::compute(&p);
        let defs = rd.defs_at(&p, j, 0, Reg::R1);
        assert_eq!(defs.len(), 2, "two defs reach the join: {defs:?}");
        assert_eq!(rd.unique_def_at(&p, j, 0, Reg::R1), None);
    }

    #[test]
    fn loop_defs_reach_header() {
        let mut b = ProgramBuilder::new("t");
        let i = Reg::R2;
        b.mov(i, 0);
        let head = b.new_label("head");
        let body = b.new_label("body");
        let exit = b.new_label("exit");
        b.bind(head);
        b.branch(Cond::Lt, i, 8, body, exit);
        b.bind(body);
        b.bin(BinOp::Add, i, i, 1);
        b.jump(head);
        b.bind(exit);
        b.halt();
        let p = b.finish().unwrap();
        let rd = ReachingDefs::compute(&p);
        // Both the init and the increment reach the header.
        let defs = rd.defs_at(&p, head, 0, i);
        assert_eq!(defs.len(), 2, "{defs:?}");
    }

    #[test]
    fn entry_def_for_untouched_register() {
        let mut b = ProgramBuilder::new("t");
        b.mov(Reg::R1, 5);
        b.halt();
        let p = b.finish().unwrap();
        let rd = ReachingDefs::compute(&p);
        assert_eq!(
            rd.unique_def_at(&p, p.entry(), 1, Reg::R8),
            Some(DefSite::Entry),
            "never-written registers keep their power-on zero def"
        );
    }
}
