//! Natural-loop detection: back edges and loop headers.

use gecko_isa::{BlockId, Program};

use super::dominators::Dominators;

/// The loop headers of `program`: targets of back edges (`u → h` where `h`
/// dominates `u`). Returned sorted by block index, deduplicated.
pub fn loop_headers(program: &Program, dom: &Dominators) -> Vec<BlockId> {
    let mut headers = Vec::new();
    for (u, block) in program.blocks() {
        for h in block.term.successors() {
            if dom.dominates(h, u) {
                headers.push(h);
            }
        }
    }
    headers.sort_unstable();
    headers.dedup();
    headers
}

/// A natural loop: its header plus all blocks in its body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NaturalLoop {
    /// The loop header (target of the back edge).
    pub header: BlockId,
    /// All blocks of the loop, including the header.
    pub blocks: Vec<BlockId>,
}

/// Computes the natural loops of `program` (one per header; bodies of
/// back edges sharing a header are merged).
pub fn natural_loops(program: &Program, dom: &Dominators) -> Vec<NaturalLoop> {
    use std::collections::BTreeSet;
    let preds = program.predecessors();
    let mut by_header: std::collections::BTreeMap<BlockId, BTreeSet<BlockId>> =
        std::collections::BTreeMap::new();
    for (u, block) in program.blocks() {
        for h in block.term.successors() {
            if dom.dominates(h, u) {
                // Natural loop of back edge u -> h: h plus everything that
                // reaches u without passing through h.
                let body = by_header.entry(h).or_default();
                body.insert(h);
                let mut work = vec![u];
                while let Some(b) = work.pop() {
                    if b != h && body.insert(b) {
                        work.extend(preds[b.index()].iter().copied());
                    }
                }
            }
        }
    }
    by_header
        .into_iter()
        .map(|(header, blocks)| NaturalLoop {
            header,
            blocks: blocks.into_iter().collect(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gecko_isa::{Block, Cond, Operand, Reg, Terminator};

    fn block(term: Terminator) -> Block {
        Block::new(vec![], term)
    }

    #[test]
    fn finds_simple_loop_header() {
        // 0 → 1(head) → 2(body) → 1, 1 → 3(exit)
        let p = Program::from_parts(
            "l",
            vec![
                block(Terminator::Jump(BlockId::new(1))),
                block(Terminator::Branch {
                    cond: Cond::Lt,
                    lhs: Reg::R1,
                    rhs: Operand::Imm(4),
                    taken: BlockId::new(2),
                    fall: BlockId::new(3),
                }),
                block(Terminator::Jump(BlockId::new(1))),
                block(Terminator::Halt),
            ],
            BlockId::new(0),
            vec![],
        );
        let dom = Dominators::compute(&p);
        assert_eq!(loop_headers(&p, &dom), vec![BlockId::new(1)]);
    }

    #[test]
    fn nested_loops_two_headers() {
        // 0→1; 1→2; 2→2 (self loop) and 2→1 (outer latch), 1→3 exit.
        let p = Program::from_parts(
            "n",
            vec![
                block(Terminator::Jump(BlockId::new(1))),
                block(Terminator::Branch {
                    cond: Cond::Lt,
                    lhs: Reg::R1,
                    rhs: Operand::Imm(4),
                    taken: BlockId::new(2),
                    fall: BlockId::new(3),
                }),
                block(Terminator::Branch {
                    cond: Cond::Lt,
                    lhs: Reg::R2,
                    rhs: Operand::Imm(4),
                    taken: BlockId::new(2),
                    fall: BlockId::new(1),
                }),
                block(Terminator::Halt),
            ],
            BlockId::new(0),
            vec![],
        );
        let dom = Dominators::compute(&p);
        assert_eq!(
            loop_headers(&p, &dom),
            vec![BlockId::new(1), BlockId::new(2)]
        );
    }

    #[test]
    fn natural_loop_bodies() {
        // 0 -> 1(head) -> 2(body) -> 1, 1 -> 3(exit)
        let p = Program::from_parts(
            "l",
            vec![
                block(Terminator::Jump(BlockId::new(1))),
                block(Terminator::Branch {
                    cond: Cond::Lt,
                    lhs: Reg::R1,
                    rhs: Operand::Imm(4),
                    taken: BlockId::new(2),
                    fall: BlockId::new(3),
                }),
                block(Terminator::Jump(BlockId::new(1))),
                block(Terminator::Halt),
            ],
            BlockId::new(0),
            vec![],
        );
        let dom = Dominators::compute(&p);
        let loops = natural_loops(&p, &dom);
        assert_eq!(loops.len(), 1);
        assert_eq!(loops[0].header, BlockId::new(1));
        assert_eq!(
            loops[0].blocks,
            vec![BlockId::new(1), BlockId::new(2)],
            "body excludes pre-header and exit"
        );
    }

    #[test]
    fn acyclic_program_has_no_headers() {
        let p = Program::from_parts(
            "a",
            vec![
                block(Terminator::Jump(BlockId::new(1))),
                block(Terminator::Halt),
            ],
            BlockId::new(0),
            vec![],
        );
        let dom = Dominators::compute(&p);
        assert!(loop_headers(&p, &dom).is_empty());
    }
}
