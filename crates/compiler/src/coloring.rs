//! Double-buffer slot assignment by 2-coloring (Section VI-D).
//!
//! **Why coloring exists.** A checkpoint cluster for region `R'` executes
//! *during* region `R` (the cluster precedes `R'`'s boundary commit). If
//! power fails mid-cluster, recovery rolls back to `R` and reads `R`'s
//! slots — so the cluster must never overwrite a slot `R`'s recovery needs.
//! GECKO assigns each cluster a static parity (0/1) used as the slot color
//! for every checkpoint in it; the constraint is that *adjacent* clusters
//! (consecutive region entries sharing checkpointed registers) carry
//! different parities. Compared to Ratchet's dynamic index flip this costs
//! zero runtime bookkeeping: `16 CheckpointStores + 16 IndexStores +
//! 16 IndexLoads` collapse to plain stores (the paper's motivating count).
//!
//! **Conflicts.** The region adjacency graph may not be bipartite (odd
//! cycles through loops, joins whose predecessors disagree). Following the
//! paper, a conflicted region is repaired by *creating a new region with
//! additional checkpoints* (Section VI-D). Our realization: a **fix-up
//! region** `M` inserted immediately before the conflicted cluster,
//! checkpointing everything live there into a dedicated third slot
//! (`FIXUP_SLOT`). This is sound without any further constraints:
//!
//! * `M`'s cluster writes only slot 2, which no normal region's recovery
//!   reads — so they can never corrupt the committed region's slots,
//!   whatever its parity;
//! * while `M` is committed, the only checkpoint writes that occur are the
//!   conflicted region's own cluster (parity 0/1), which never touches
//!   slot 2 — `M`'s recovery data stays intact;
//! * two fix-up regions are never adjacent: the commit immediately after
//!   `M` is, by construction, the conflicted region itself.

use std::collections::{BTreeMap, BTreeSet};

use gecko_isa::{BlockId, Inst, Program, Reg, RegionId};

use crate::analysis::liveness::{Liveness, RegSet};
use crate::checkpoint::cluster_before;
use crate::pipeline::CompileError;
use crate::recovery::RegionTable;

/// The slot color reserved for coloring fix-up regions.
pub const FIXUP_SLOT: u8 = 2;

/// A fix-up region inserted by the coloring pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FixupRegion {
    /// The new region's id.
    pub id: RegionId,
    /// Registers checkpointed in its cluster (all in [`FIXUP_SLOT`]).
    pub saved: Vec<(Reg, u8)>,
}

/// Outcome of the coloring pass.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ColoringOutcome {
    /// Fix-up regions inserted before conflicted clusters.
    pub fixups: Vec<FixupRegion>,
    /// Final parity per region (fix-ups map to [`FIXUP_SLOT`]).
    pub parity: BTreeMap<RegionId, u8>,
}

/// Assigns slot colors to every checkpoint instruction, inserting fix-up
/// regions where the adjacency graph resists 2-coloring.
///
/// # Errors
///
/// Currently infallible (the fix-up mechanism repairs every conflict);
/// the `Result` is kept for interface stability with the rest of the
/// pipeline.
pub fn color_checkpoints(program: &mut Program) -> Result<ColoringOutcome, CompileError> {
    let table = RegionTable::from_program(program);
    let kept = kept_sets(program, &table);
    let adj = region_adjacency(program, &table);

    // BFS 2-coloring over constrained edges (shared kept registers),
    // propagating along both edge directions.
    let mut undirected: BTreeMap<RegionId, BTreeSet<RegionId>> = BTreeMap::new();
    for (&a, succs) in &adj {
        for &b in succs {
            if constrained(&kept, a, b) {
                undirected.entry(a).or_default().insert(b);
                undirected.entry(b).or_default().insert(a);
            }
        }
    }
    let mut parity: BTreeMap<RegionId, u8> = BTreeMap::new();
    let ids: Vec<RegionId> = table.iter().map(|i| i.id).collect();
    for &root in &ids {
        if parity.contains_key(&root) {
            continue;
        }
        parity.insert(root, 0);
        let mut queue = vec![root];
        while let Some(a) = queue.pop() {
            let pa = parity[&a];
            for &b in undirected.get(&a).into_iter().flatten() {
                if let std::collections::btree_map::Entry::Vacant(e) = parity.entry(b) {
                    e.insert(1 - pa);
                    queue.push(b);
                }
            }
        }
    }

    // Regions whose incoming constrained edge is monochromatic.
    let mut conflicted: BTreeSet<RegionId> = BTreeSet::new();
    for (&a, succs) in &adj {
        for &b in succs {
            if constrained(&kept, a, b) && parity[&a] == parity[&b] {
                conflicted.insert(b);
            }
        }
    }

    // Repair each conflicted region with a slot-2 fix-up region placed
    // immediately before its cluster.
    let mut outcome = ColoringOutcome::default();
    let mut next_id = ids.iter().map(|i| i.index()).max().unwrap_or(0) + 1;
    if !conflicted.is_empty() {
        let live = Liveness::compute(program);
        // (block, cluster_start, live set) per conflicted region; applied
        // back-to-front per block so indices stay valid.
        let mut insertions: Vec<(BlockId, usize, RegSet)> = Vec::new();
        for r in &conflicted {
            let info = *table.get(*r).expect("region exists");
            let (cs, _) = cluster_before(program, info.block, info.boundary_index);
            insertions.push((info.block, cs, live.live_at(program, info.block, cs)));
        }
        insertions.sort_by(|x, y| x.0.cmp(&y.0).then(y.1.cmp(&x.1)));
        for (b, idx, live_here) in insertions {
            let id = RegionId::new(next_id);
            next_id += 1;
            let saved: Vec<(Reg, u8)> = live_here.iter().map(|r| (r, FIXUP_SLOT)).collect();
            let block = program.block_mut(b);
            block.insts.insert(idx, Inst::Boundary { region: id });
            for &(reg, slot) in saved.iter().rev() {
                block.insts.insert(idx, Inst::Checkpoint { reg, slot });
            }
            parity.insert(id, FIXUP_SLOT);
            outcome.fixups.push(FixupRegion { id, saved });
        }
    }

    // Write colors into every original cluster.
    let table = RegionTable::from_program(program);
    let fixup_ids: BTreeSet<RegionId> = outcome.fixups.iter().map(|f| f.id).collect();
    for info in table.iter().copied().collect::<Vec<_>>() {
        if fixup_ids.contains(&info.id) {
            continue; // already colored at insertion
        }
        let p = *parity.get(&info.id).unwrap_or(&0);
        let (cs, _) = cluster_before(program, info.block, info.boundary_index);
        let block = program.block_mut(info.block);
        for inst in &mut block.insts[cs..info.boundary_index] {
            if let Inst::Checkpoint { slot, .. } = inst {
                *slot = p;
            }
        }
    }
    outcome.parity = parity;
    Ok(outcome)
}

/// The kept (still-checkpointed) registers of each region's cluster.
fn kept_sets(program: &Program, table: &RegionTable) -> BTreeMap<RegionId, RegSet> {
    table
        .iter()
        .map(|info| {
            let (_, cluster) = cluster_before(program, info.block, info.boundary_index);
            (info.id, cluster.iter().map(|(_, r, _)| *r).collect())
        })
        .collect()
}

fn constrained(kept: &BTreeMap<RegionId, RegSet>, a: RegionId, b: RegionId) -> bool {
    let (Some(ka), Some(kb)) = (kept.get(&a), kept.get(&b)) else {
        return false;
    };
    ka.iter().any(|r| kb.contains(r))
}

/// Region adjacency: for each region, the set of regions whose boundary can
/// be the *next* boundary crossed.
///
/// Computed as a proper dataflow fixpoint: since GECKO does not cut every
/// loop header, boundary-free cycles are legal and a recursive memoized
/// walk would silently drop edges along them (the cause of a subtle
/// slot-clobbering miscompile caught by the crash-consistency suite).
pub fn region_adjacency(
    program: &Program,
    table: &RegionTable,
) -> BTreeMap<RegionId, BTreeSet<RegionId>> {
    let nb = next_boundaries_per_block(program);
    let mut adj = BTreeMap::new();
    for info in table.iter() {
        adj.insert(
            info.id,
            next_from(program, info.block, info.boundary_index + 1, &nb),
        );
    }
    adj
}

/// For each block: the set of region boundaries that can be the first one
/// crossed when execution enters the block at its top.
fn next_boundaries_per_block(program: &Program) -> Vec<BTreeSet<RegionId>> {
    let n = program.block_count();
    // first_boundary[b] = the block's own first boundary, if any.
    let first: Vec<Option<RegionId>> = program
        .block_ids()
        .map(|b| {
            program.block(b).insts.iter().find_map(|i| match i {
                Inst::Boundary { region } => Some(*region),
                _ => None,
            })
        })
        .collect();
    let mut nb: Vec<BTreeSet<RegionId>> = vec![BTreeSet::new(); n];
    let mut changed = true;
    while changed {
        changed = false;
        for b in program.block_ids() {
            if let Some(r) = first[b.index()] {
                if nb[b.index()].insert(r) {
                    changed = true;
                }
                continue;
            }
            let mut merged = BTreeSet::new();
            for s in program.successors(b) {
                merged.extend(nb[s.index()].iter().copied());
            }
            for r in merged {
                if nb[b.index()].insert(r) {
                    changed = true;
                }
            }
        }
    }
    nb
}

fn next_from(
    program: &Program,
    block: BlockId,
    index: usize,
    nb: &[BTreeSet<RegionId>],
) -> BTreeSet<RegionId> {
    let blk = program.block(block);
    for inst in &blk.insts[index..] {
        if let Inst::Boundary { region } = inst {
            return [*region].into_iter().collect();
        }
    }
    let mut out = BTreeSet::new();
    for s in blk.term.successors() {
        out.extend(nb[s.index()].iter().copied());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkpoint::insert_checkpoints;
    use crate::pipeline::split_critical_edges;
    use crate::regions::form_regions;
    use gecko_isa::{BinOp, Cond, ProgramBuilder};

    fn prepare(mut p: Program) -> Program {
        split_critical_edges(&mut p);
        form_regions(&mut p);
        insert_checkpoints(&mut p);
        p
    }

    /// Validates the coloring invariant directly: for every adjacent pair
    /// of clusters with shared registers, slot sets are disjoint per shared
    /// register (different parity, or one side is a slot-2 fix-up).
    fn assert_valid_coloring(program: &Program) {
        let table = RegionTable::from_program(program);
        let adj = region_adjacency(program, &table);
        let cluster_slots = |id: RegionId| -> BTreeMap<Reg, u8> {
            let info = table.get(id).expect("region");
            let (_, cluster) = cluster_before(program, info.block, info.boundary_index);
            cluster.iter().map(|&(_, r, s)| (r, s)).collect()
        };
        for (&a, succs) in &adj {
            let sa = cluster_slots(a);
            for &b in succs {
                let sb = cluster_slots(b);
                for (r, &slot_a) in &sa {
                    if let Some(&slot_b) = sb.get(r) {
                        assert_ne!(
                            slot_a, slot_b,
                            "adjacent clusters {a}->{b} share slot {slot_a} for {r}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn loop_gets_alternating_parities_or_fixups() {
        let mut b = ProgramBuilder::new("t");
        let (acc, i) = (Reg::R1, Reg::R2);
        b.mov(acc, 0);
        b.mov(i, 0);
        let head = b.new_label("head");
        let body = b.new_label("body");
        let exit = b.new_label("exit");
        b.bind(head);
        b.branch(Cond::Lt, i, 8, body, exit);
        b.bind(body);
        b.bin(BinOp::Add, acc, acc, i);
        b.bin(BinOp::Add, i, i, 1);
        b.jump(head);
        b.bind(exit);
        b.send(acc);
        b.halt();
        let mut p = prepare(b.finish().unwrap());
        let out = color_checkpoints(&mut p).unwrap();
        assert!(!out.parity.is_empty());
        assert_valid_coloring(&p);
    }

    #[test]
    fn self_adjacent_region_forces_fixup() {
        // A loop whose body contains no other boundary: the header region
        // is adjacent to itself, an unavoidable conflict repaired by a
        // slot-2 fix-up region before its cluster.
        let mut b = ProgramBuilder::new("t");
        let i = Reg::R1;
        b.mov(i, 0);
        let head = b.new_label("head");
        let body = b.new_label("body");
        let exit = b.new_label("exit");
        b.bind(head);
        b.branch(Cond::Lt, i, 8, body, exit);
        b.bind(body);
        b.bin(BinOp::Add, i, i, 1);
        b.jump(head);
        b.bind(exit);
        b.send(i);
        b.halt();
        let mut p = prepare(b.finish().unwrap());
        let out = color_checkpoints(&mut p).unwrap();
        assert!(
            !out.fixups.is_empty(),
            "self-adjacency must be repaired: {out:?}"
        );
        assert_valid_coloring(&p);
        // The fix-up cluster checkpoints the live register i in slot 2.
        assert!(out.fixups[0]
            .saved
            .iter()
            .any(|&(r, s)| r == i && s == FIXUP_SLOT));
    }

    #[test]
    fn straight_line_needs_no_fixups() {
        let mut b = ProgramBuilder::new("t");
        b.sense(Reg::R1); // boundaries around io
        b.bin(BinOp::Add, Reg::R2, Reg::R1, 1);
        b.send(Reg::R2);
        b.halt();
        let mut p = prepare(b.finish().unwrap());
        let out = color_checkpoints(&mut p).unwrap();
        assert!(out.fixups.is_empty(), "{out:?}");
        assert_valid_coloring(&p);
    }

    #[test]
    fn colors_are_written_into_instructions() {
        let mut b = ProgramBuilder::new("t");
        b.sense(Reg::R1);
        b.send(Reg::R1);
        b.halt();
        let mut p = prepare(b.finish().unwrap());
        color_checkpoints(&mut p).unwrap();
        // All checkpoints have slot 0..=2 (verified), and at least one
        // checkpoint exists (R1 across the io boundary).
        assert!(p.checkpoint_count() > 0);
        gecko_isa::verify(&p).unwrap();
    }

    #[test]
    fn adjacency_reflects_program_order() {
        let mut b = ProgramBuilder::new("t");
        b.sense(Reg::R1);
        b.send(Reg::R1);
        b.halt();
        let p = prepare(b.finish().unwrap());
        let table = RegionTable::from_program(&p);
        let adj = region_adjacency(&p, &table);
        let entry_succs = &adj[&RegionId::new(0)];
        assert!(!entry_succs.is_empty());
        assert!(!entry_succs.contains(&RegionId::new(0)));
    }

    #[test]
    fn fixups_are_never_adjacent_to_fixups() {
        // Build something join-heavy and verify structurally.
        let mut b = ProgramBuilder::new("t");
        let d = b.segment("d", 8, true);
        let (i, acc, p_) = (Reg::R1, Reg::R2, Reg::R3);
        b.mov(i, 0);
        b.mov(acc, 0);
        b.mov(p_, d as i32);
        let head = b.new_label("head");
        let odd = b.new_label("odd");
        let even = b.new_label("even");
        let step = b.new_label("step");
        let exit = b.new_label("exit");
        b.bind(head);
        b.branch(Cond::Lt, i, 8, odd, exit);
        b.bind(odd);
        b.bin(BinOp::And, Reg::R4, i, 1);
        b.branch(Cond::Eq, Reg::R4, 0, even, step);
        b.bind(even);
        b.load(Reg::R5, p_, 0);
        b.bin(BinOp::Add, acc, acc, Reg::R5);
        b.store(acc, p_, 0);
        b.jump(step);
        b.bind(step);
        b.bin(BinOp::Add, i, i, 1);
        b.jump(head);
        b.bind(exit);
        b.send(acc);
        b.halt();
        let mut p = prepare(b.finish().unwrap());
        let out = color_checkpoints(&mut p).unwrap();
        let table = RegionTable::from_program(&p);
        let adj = region_adjacency(&p, &table);
        let fixup_ids: BTreeSet<RegionId> = out.fixups.iter().map(|f| f.id).collect();
        for f in &fixup_ids {
            for succ in &adj[f] {
                assert!(
                    !fixup_ids.contains(succ),
                    "fix-up {f} adjacent to fix-up {succ}"
                );
            }
        }
        assert_valid_coloring(&p);
    }
}
