//! Checkpoint pruning with recovery blocks (Sections VI-C and VI-E).
//!
//! A checkpoint of register `r` at region entry `E` can be removed when a
//! **recovery block** — a short straight-line slice — can recompute `r`'s
//! value-at-`E` from material available at recovery time:
//!
//! * constants (including the architectural power-on zero),
//! * loads from **read-only** segments (their contents never change),
//! * registers whose own checkpoints at `E` are *kept* (the slice's
//!   dependencies, which the pruning pass locks against later pruning).
//!
//! The slice is built by data-dependence backtracking over reaching
//! definitions (the paper's `RgE →δd v₁ →δd …` traversal), terminating at
//! constant leaves, at already-checkpointed values, or failing on unsafe
//! vertices (sensor reads, writable-memory loads, multiple reaching
//! definitions — the control-dependence integrity condition: a unique
//! reaching definition means the recomputation is control-equivalent).
//!
//! At recovery the runtime first restores every kept register from its
//! slot, then executes each slice in a scratch context seeded with the
//! restored file (so slices cannot clobber one another), charging the
//! cycles only when an attack actually forced a rollback — the cost shift
//! that gives GECKO its 6% overhead.

use std::collections::BTreeMap;

use gecko_isa::{BlockId, Inst, Program, Reg, RegionId};

use crate::analysis::liveness::RegSet;
use crate::analysis::{AliasAnalysis, DefSite, ReachingDefs};
use crate::checkpoint::cluster_before;
use crate::recovery::RegionTable;

/// A program position: just before instruction `index` of `block`.
type Pos = (BlockId, usize);

/// Result of the pruning pass.
#[derive(Debug, Clone, Default)]
pub struct PruneOutcome {
    /// Per region: the pruned registers with their recovery slices.
    pub pruned: BTreeMap<RegionId, Vec<(Reg, Vec<Inst>)>>,
    /// Total checkpoint stores removed.
    pub removed: usize,
}

/// Prunes checkpoints across all regions of `program`.
/// `max_slice_insts` bounds each recovery block's length.
pub fn prune_checkpoints(program: &mut Program, max_slice_insts: usize) -> PruneOutcome {
    prune_checkpoints_filtered(program, max_slice_insts, None)
}

/// [`prune_checkpoints`] restricted to the given regions (used to prune the
/// clusters of coloring fix-up regions after the coloring pass; a blanket
/// second pass would be unsound because it could remove checkpoints that
/// existing recovery slices depend on).
pub fn prune_checkpoints_filtered(
    program: &mut Program,
    max_slice_insts: usize,
    only: Option<&std::collections::BTreeSet<RegionId>>,
) -> PruneOutcome {
    let table = RegionTable::from_program(program);
    let rd = ReachingDefs::compute(program);
    let alias = AliasAnalysis::compute(program);
    let def_sites = collect_def_sites(program);

    let mut outcome = PruneOutcome::default();
    // (block, inst index) pairs to delete, applied at the end.
    let mut deletions: Vec<Pos> = Vec::new();

    for info in table.iter() {
        if only.is_some_and(|set| !set.contains(&info.id)) {
            continue;
        }
        let (cluster_start, cluster) = cluster_before(program, info.block, info.boundary_index);
        if cluster.is_empty() {
            continue;
        }
        let entry: Pos = (info.block, cluster_start);
        let live_here: RegSet = cluster.iter().map(|(_, r, _)| *r).collect();

        let mut kept = live_here;
        let mut locked = RegSet::EMPTY;
        let mut pruned_here: Vec<(Reg, Vec<Inst>)> = Vec::new();

        for &(inst_idx, r, _) in &cluster {
            if locked.contains(r) {
                continue;
            }
            let builder = SliceBuilder {
                program,
                rd: &rd,
                alias: &alias,
                def_sites: &def_sites,
                entry,
                live_at_entry: live_here,
            };
            let Some((slice, deps)) = builder.build(r, entry, max_slice_insts) else {
                continue;
            };
            // Every dependency must stay checkpointed.
            let mut deps_ok = true;
            for d in deps.iter() {
                if d == r || !kept.contains(d) {
                    deps_ok = false;
                    break;
                }
            }
            if !deps_ok {
                continue;
            }
            kept.remove(r);
            locked.union_with(deps);
            pruned_here.push((r, slice));
            deletions.push((info.block, inst_idx));
            outcome.removed += 1;
        }
        if !pruned_here.is_empty() {
            outcome.pruned.insert(info.id, pruned_here);
        }
    }

    // Apply deletions, per block, descending index.
    deletions.sort_by(|a, b| (a.0, b.1).cmp(&(b.0, a.1)));
    let mut by_block: BTreeMap<BlockId, Vec<usize>> = BTreeMap::new();
    for (b, i) in deletions {
        by_block.entry(b).or_default().push(i);
    }
    for (b, mut idxs) in by_block {
        idxs.sort_unstable();
        let block = program.block_mut(b);
        for i in idxs.into_iter().rev() {
            debug_assert!(matches!(block.insts[i], Inst::Checkpoint { .. }));
            block.insts.remove(i);
        }
    }
    outcome
}

/// All definition sites of each register (for the redefinition-between
/// query).
fn collect_def_sites(program: &Program) -> Vec<Vec<Pos>> {
    let mut sites: Vec<Vec<Pos>> = vec![Vec::new(); Reg::COUNT];
    for (b, block) in program.blocks() {
        for (i, inst) in block.insts.iter().enumerate() {
            if let Some(d) = inst.def() {
                sites[d.index()].push((b, i));
            }
        }
    }
    sites
}

struct SliceBuilder<'a> {
    program: &'a Program,
    rd: &'a ReachingDefs,
    alias: &'a AliasAnalysis,
    def_sites: &'a [Vec<Pos>],
    entry: Pos,
    live_at_entry: RegSet,
}

impl<'a> SliceBuilder<'a> {
    /// Builds a recovery slice recomputing `r`'s value at `at`, bounded by
    /// `fuel` instructions. Returns the slice (execution order) and the
    /// registers it depends on (which must be slot-restored at the entry).
    fn build(&self, r: Reg, at: Pos, fuel: usize) -> Option<(Vec<Inst>, RegSet)> {
        let mut slice = Vec::new();
        let mut deps = RegSet::EMPTY;
        let mut budget = fuel;
        self.emit_value(r, at, &mut slice, &mut deps, &mut budget)?;
        Some((slice, deps))
    }

    /// Emits instructions computing `r`'s value at `at` into `slice`.
    fn emit_value(
        &self,
        r: Reg,
        at: Pos,
        slice: &mut Vec<Inst>,
        deps: &mut RegSet,
        budget: &mut usize,
    ) -> Option<()> {
        let def = self.rd.unique_def_at(self.program, at.0, at.1, r)?;
        match def {
            DefSite::Entry => self.push(
                Inst::Mov {
                    dst: r,
                    src: gecko_isa::Operand::Imm(0),
                },
                slice,
                budget,
            ),
            DefSite::At(db, di) => {
                let inst = self.program.block(db).insts[di];
                match inst {
                    Inst::Mov {
                        src: gecko_isa::Operand::Imm(_),
                        ..
                    } => self.push(inst, slice, budget),
                    Inst::Mov {
                        src: gecko_isa::Operand::Reg(a),
                        ..
                    } => {
                        self.resolve_operand(a, (db, di), slice, deps, budget)?;
                        self.push(inst, slice, budget)
                    }
                    Inst::Bin { lhs, rhs, .. } => {
                        self.resolve_operand(lhs, (db, di), slice, deps, budget)?;
                        if let gecko_isa::Operand::Reg(rr) = rhs {
                            self.resolve_operand(rr, (db, di), slice, deps, budget)?;
                        }
                        self.push(inst, slice, budget)
                    }
                    Inst::Load { base, .. } => {
                        // Only read-only memory is stable across time.
                        let loc = self.alias.access_loc(self.program, db, di);
                        if !loc.is_read_only(self.program) {
                            return None;
                        }
                        self.resolve_operand(base, (db, di), slice, deps, budget)?;
                        self.push(inst, slice, budget)
                    }
                    // Sensor reads are not reproducible; other instructions
                    // do not define registers.
                    _ => None,
                }
            }
        }
    }

    /// Makes `a`'s value at `at` available: either as a slot-restored leaf
    /// dependency (when `a` is unchanged from `at` to the region entry and
    /// is part of the entry's checkpoint set) or by recursing through its
    /// definition.
    fn resolve_operand(
        &self,
        a: Reg,
        at: Pos,
        slice: &mut Vec<Inst>,
        deps: &mut RegSet,
        budget: &mut usize,
    ) -> Option<()> {
        // Already computed by an earlier slice instruction? Then its value
        // in the scratch context is exactly the def this use consumes
        // whenever that def is the same; conservatively we only reuse via
        // the leaf path below and otherwise recompute.
        let def_here = self.rd.unique_def_at(self.program, at.0, at.1, a);
        let def_entry = self
            .rd
            .unique_def_at(self.program, self.entry.0, self.entry.1, a);
        let unchanged = match (def_here, def_entry) {
            (Some(x), Some(y)) => x == y && !self.redefined_between(a, at),
            _ => false,
        };
        if unchanged && self.live_at_entry.contains(a) {
            deps.insert(a);
            return Some(());
        }
        self.emit_value(a, at, slice, deps, budget)
    }

    fn push(&self, inst: Inst, slice: &mut Vec<Inst>, budget: &mut usize) -> Option<()> {
        if *budget == 0 {
            return None;
        }
        *budget -= 1;
        slice.push(inst);
        Some(())
    }

    /// Whether some definition of `a` may execute between `at` and the
    /// region entry (conservative block-level reachability with index
    /// refinement).
    fn redefined_between(&self, a: Reg, at: Pos) -> bool {
        self.def_sites[a.index()].iter().any(|&d| {
            pos_reaches(self.program, at, d) && pos_reaches_after(self.program, d, self.entry)
        })
    }
}

/// Whether a CFG path leads from position `from` to position `to`
/// (conservative: block-level BFS, index-refined within a block).
fn pos_reaches(program: &Program, from: Pos, to: Pos) -> bool {
    if from.0 == to.0 && from.1 <= to.1 {
        return true;
    }
    block_reaches(program, from.0, to.0)
}

/// Whether a path exists from just *after* position `d` to position `to`.
fn pos_reaches_after(program: &Program, d: Pos, to: Pos) -> bool {
    if d.0 == to.0 && d.1 < to.1 {
        return true;
    }
    block_reaches(program, d.0, to.0)
}

/// Whether `to` is reachable from the *successors* of `from` (so self-loops
/// are honoured but staying inside `from` is not counted).
fn block_reaches(program: &Program, from: BlockId, to: BlockId) -> bool {
    let mut seen = vec![false; program.block_count()];
    let mut work: Vec<BlockId> = program.successors(from);
    while let Some(b) = work.pop() {
        if seen[b.index()] {
            continue;
        }
        seen[b.index()] = true;
        if b == to {
            return true;
        }
        work.extend(program.successors(b));
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkpoint::insert_checkpoints;
    use crate::regions::form_regions;
    use gecko_isa::{BinOp, Cond, ProgramBuilder};

    fn instrument(mut p: Program) -> (Program, usize) {
        form_regions(&mut p);
        let n = insert_checkpoints(&mut p);
        (p, n)
    }

    #[test]
    fn constant_checkpoint_is_pruned() {
        // base pointer = segment constant, live across an I/O boundary:
        // its checkpoint can be recomputed by `mov`.
        let mut b = ProgramBuilder::new("t");
        let d = b.segment("d", 8, true);
        b.mov(Reg::R1, d as i32);
        b.sense(Reg::R2);
        b.store(Reg::R2, Reg::R1, 0);
        b.halt();
        let p = b.finish().unwrap();
        let (mut p, before) = instrument(p);
        let out = prune_checkpoints(&mut p, 8);
        assert!(out.removed > 0, "constant base must be pruned");
        assert_eq!(p.checkpoint_count(), before - out.removed);
        // The slice is a single mov of the constant.
        let slices: Vec<_> = out.pruned.values().flatten().collect();
        assert!(
            slices.iter().any(|(r, s)| {
                *r == Reg::R1
                    && s.len() == 1
                    && matches!(
                        s[0],
                        Inst::Mov {
                            dst: Reg::R1,
                            src: gecko_isa::Operand::Imm(v)
                        } if v == d as i32
                    )
            }),
            "{slices:?}"
        );
    }

    #[test]
    fn sensed_value_is_never_pruned() {
        let mut b = ProgramBuilder::new("t");
        let d = b.segment("d", 8, true);
        b.mov(Reg::R1, d as i32);
        b.sense(Reg::R2); // not reproducible
        b.blink(); // boundary after; R2 live across
        b.store(Reg::R2, Reg::R1, 0);
        b.halt();
        let p = b.finish().unwrap();
        let (mut p, _) = instrument(p);
        let out = prune_checkpoints(&mut p, 8);
        for slices in out.pruned.values() {
            for (r, _) in slices {
                assert_ne!(*r, Reg::R2, "sensed register must stay checkpointed");
            }
        }
        // R2's checkpoints survive.
        let mut r2_ckpts = 0;
        for (_, block) in p.blocks() {
            for inst in &block.insts {
                if matches!(inst, Inst::Checkpoint { reg: Reg::R2, .. }) {
                    r2_ckpts += 1;
                }
            }
        }
        assert!(r2_ckpts > 0);
    }

    #[test]
    fn derived_value_gets_multi_inst_slice() {
        // R3 = R2(sensed) * 2 + 1, both live across a boundary. R3 is
        // derivable from R2, so R3's checkpoint is pruned with a slice
        // depending on R2 (which gets locked).
        let mut b = ProgramBuilder::new("t");
        let d = b.segment("d", 8, true);
        b.sense(Reg::R2);
        b.bin(BinOp::Mul, Reg::R3, Reg::R2, 2);
        b.bin(BinOp::Add, Reg::R3, Reg::R3, 1);
        b.blink(); // boundary; R2 and R3 live after
        b.mov(Reg::R1, d as i32);
        b.store(Reg::R2, Reg::R1, 0);
        b.store(Reg::R3, Reg::R1, 1);
        b.halt();
        let p = b.finish().unwrap();
        let (mut p, _) = instrument(p);
        let out = prune_checkpoints(&mut p, 8);
        let pruned_regs: Vec<Reg> = out.pruned.values().flatten().map(|(r, _)| *r).collect();
        assert!(pruned_regs.contains(&Reg::R3), "{out:?}");
        assert!(
            !pruned_regs.contains(&Reg::R2),
            "R2 is a locked dependency: {out:?}"
        );
        let (_, slice) = out
            .pruned
            .values()
            .flatten()
            .find(|(r, _)| *r == Reg::R3)
            .unwrap();
        assert_eq!(slice.len(), 2, "mul + add: {slice:?}");
    }

    #[test]
    fn read_only_load_is_sliceable() {
        let mut b = ProgramBuilder::new("t");
        let ro = b.segment("ro", 4, false);
        let rw = b.segment("rw", 4, true);
        b.mov(Reg::R1, ro as i32);
        b.load(Reg::R2, Reg::R1, 1); // stable value
        b.blink(); // boundary
        b.mov(Reg::R3, rw as i32);
        b.store(Reg::R2, Reg::R3, 0);
        b.halt();
        let p = b.finish().unwrap();
        let (mut p, _) = instrument(p);
        let out = prune_checkpoints(&mut p, 8);
        let pruned: Vec<Reg> = out.pruned.values().flatten().map(|(r, _)| *r).collect();
        assert!(
            pruned.contains(&Reg::R2),
            "RO load is recomputable: {out:?}"
        );
    }

    #[test]
    fn writable_load_is_not_sliceable() {
        let mut b = ProgramBuilder::new("t");
        let rw = b.segment("rw", 4, true);
        b.mov(Reg::R1, rw as i32);
        b.load(Reg::R2, Reg::R1, 1); // may change before recovery
        b.blink();
        b.store(Reg::R2, Reg::R1, 0);
        b.halt();
        let p = b.finish().unwrap();
        let (mut p, _) = instrument(p);
        let out = prune_checkpoints(&mut p, 8);
        let pruned: Vec<Reg> = out.pruned.values().flatten().map(|(r, _)| *r).collect();
        assert!(!pruned.contains(&Reg::R2), "{out:?}");
    }

    #[test]
    fn loop_variant_register_not_pruned_by_stale_def() {
        // i is redefined every iteration; at the header its reaching defs
        // are {init, increment} — multiple, so control-dependence integrity
        // fails and i stays checkpointed.
        let mut b = ProgramBuilder::new("t");
        let i = Reg::R1;
        b.mov(i, 0);
        let head = b.new_label("head");
        let body = b.new_label("body");
        let exit = b.new_label("exit");
        b.bind(head);
        b.branch(Cond::Lt, i, 8, body, exit);
        b.bind(body);
        b.bin(BinOp::Add, i, i, 1);
        b.jump(head);
        b.bind(exit);
        b.send(i);
        b.halt();
        let p = b.finish().unwrap();
        let (mut p, _) = instrument(p);
        let out = prune_checkpoints(&mut p, 8);
        for slices in out.pruned.values() {
            for (r, _) in slices {
                assert_ne!(*r, i, "loop induction variable must stay");
            }
        }
    }

    #[test]
    fn fuel_limits_slice_size() {
        // A long dependency chain exceeds a tiny fuel budget.
        let mut b = ProgramBuilder::new("t");
        b.mov(Reg::R1, 1);
        for _ in 0..10 {
            b.bin(BinOp::Add, Reg::R1, Reg::R1, 1);
        }
        b.blink(); // boundary; R1 live after
        b.send(Reg::R1);
        b.halt();
        let p = b.finish().unwrap();
        let (mut p0, _) = instrument(p.clone());
        let none = prune_checkpoints(&mut p0, 3);
        let pruned0: Vec<Reg> = none.pruned.values().flatten().map(|(r, _)| *r).collect();
        assert!(!pruned0.contains(&Reg::R1), "chain too long for fuel 3");

        let (mut p1, _) = instrument(p);
        let some = prune_checkpoints(&mut p1, 32);
        let pruned1: Vec<Reg> = some.pruned.values().flatten().map(|(r, _)| *r).collect();
        assert!(pruned1.contains(&Reg::R1), "enough fuel prunes the chain");
    }
}
