//! Checkpoint insertion (the unpruned GECKO configuration).
//!
//! At every region boundary, the registers **live into the region** are
//! checkpointed in a *cluster* of `Checkpoint` pseudo-instructions placed
//! immediately **before** the boundary. The ordering matters: the boundary
//! is the atomic commit (a single NVM word holding the region id), so the
//! checkpoint payload is fully persisted *before* the commit — a power
//! failure mid-cluster rolls back to the previous region, whose slots the
//! 2-coloring keeps intact.
//!
//! All live-in registers are saved, not just those the region redefines:
//! after a power failure the register file is wiped, so every value a
//! re-execution (of this or any later region) may read must be
//! reconstructible. Checkpoint *pruning* then removes the ones a recovery
//! block can recompute.

use gecko_isa::{Inst, Program, Reg};

use crate::analysis::liveness::{Liveness, RegSet};
use crate::recovery::RegionTable;

/// Inserts checkpoint clusters before every boundary. Slots are a
/// placeholder 0 until the coloring pass assigns real colors. Returns the
/// number of checkpoint stores inserted.
pub fn insert_checkpoints(program: &mut Program) -> usize {
    let live = Liveness::compute(program);
    let table = RegionTable::from_program(program);
    // Group boundaries per block and insert from the back so earlier
    // indices stay valid.
    let mut per_block: Vec<(usize, Vec<(usize, RegSet)>)> = Vec::new();
    for info in table.iter() {
        let set = live.live_at(program, info.block, info.boundary_index);
        let entry = per_block.iter_mut().find(|(b, _)| *b == info.block.index());
        match entry {
            Some((_, v)) => v.push((info.boundary_index, set)),
            None => per_block.push((info.block.index(), vec![(info.boundary_index, set)])),
        }
    }
    let mut inserted = 0usize;
    for (block_idx, mut sites) in per_block {
        sites.sort_by_key(|(i, _)| *i);
        let block = program.block_mut(gecko_isa::BlockId::new(block_idx));
        for (idx, set) in sites.into_iter().rev() {
            for reg in set.iter().collect::<Vec<Reg>>().into_iter().rev() {
                block.insts.insert(idx, Inst::Checkpoint { reg, slot: 0 });
                inserted += 1;
            }
        }
    }
    inserted
}

/// The contiguous checkpoint cluster immediately preceding the boundary at
/// `(block, boundary_index)`: returns `(start_index, registers)` in
/// instruction order.
pub fn cluster_before(
    program: &Program,
    block: gecko_isa::BlockId,
    boundary_index: usize,
) -> (usize, Vec<(usize, Reg, u8)>) {
    let insts = &program.block(block).insts;
    let mut start = boundary_index;
    while start > 0 {
        if matches!(insts[start - 1], Inst::Checkpoint { .. }) {
            start -= 1;
        } else {
            break;
        }
    }
    let entries = (start..boundary_index)
        .map(|i| match insts[i] {
            Inst::Checkpoint { reg, slot } => (i, reg, slot),
            _ => unreachable!("cluster scan found non-checkpoint"),
        })
        .collect();
    (start, entries)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regions::form_regions;
    use gecko_isa::{BinOp, BlockId, Cond, ProgramBuilder, RegionId};

    #[test]
    fn live_in_registers_are_checkpointed_at_loop_header() {
        let mut b = ProgramBuilder::new("t");
        let (acc, i) = (Reg::R1, Reg::R2);
        b.mov(acc, 0);
        b.mov(i, 0);
        let head = b.new_label("head");
        let body = b.new_label("body");
        let exit = b.new_label("exit");
        b.bind(head);
        b.branch(Cond::Lt, i, 8, body, exit);
        b.bind(body);
        b.bin(BinOp::Add, acc, acc, i);
        b.bin(BinOp::Add, i, i, 1);
        b.jump(head);
        b.bind(exit);
        b.send(acc);
        b.halt();
        let mut p = b.finish().unwrap();
        form_regions(&mut p);
        let n = insert_checkpoints(&mut p);
        assert!(n >= 2, "at least acc and i at the header: {n}");

        // Find the header boundary and its cluster.
        let table = RegionTable::from_program(&p);
        let header_info = table
            .iter()
            .find(|info| info.block == head)
            .expect("header boundary");
        let (_, cluster) = cluster_before(&p, head, header_info.boundary_index);
        let regs: Vec<Reg> = cluster.iter().map(|(_, r, _)| *r).collect();
        assert!(regs.contains(&acc), "{regs:?}");
        assert!(regs.contains(&i), "{regs:?}");
    }

    #[test]
    fn dead_registers_not_checkpointed() {
        let mut b = ProgramBuilder::new("t");
        b.mov(Reg::R7, 1); // dead immediately
        b.sense(Reg::R1);
        b.send(Reg::R1);
        b.halt();
        let mut p = b.finish().unwrap();
        form_regions(&mut p);
        insert_checkpoints(&mut p);
        for (_, block) in p.blocks() {
            for inst in &block.insts {
                if let Inst::Checkpoint { reg, .. } = inst {
                    assert_ne!(*reg, Reg::R7, "dead register checkpointed");
                }
            }
        }
    }

    #[test]
    fn clusters_precede_boundaries() {
        let mut b = ProgramBuilder::new("t");
        let d = b.segment("d", 4, true);
        b.mov(Reg::R1, d as i32);
        b.load(Reg::R2, Reg::R1, 0);
        b.store(Reg::R2, Reg::R1, 0); // forces a mid-block boundary
        b.halt();
        let mut p = b.finish().unwrap();
        form_regions(&mut p);
        insert_checkpoints(&mut p);
        // Every boundary's cluster consists only of checkpoints, and every
        // checkpoint belongs to some cluster.
        let table = RegionTable::from_program(&p);
        let mut clustered = 0usize;
        for info in table.iter() {
            let (_, cluster) = cluster_before(&p, info.block, info.boundary_index);
            clustered += cluster.len();
        }
        assert_eq!(clustered, p.checkpoint_count());
    }

    #[test]
    fn entry_cluster_captures_power_on_zeros() {
        // A program reading an uninitialized (zero) register: the entry
        // cluster must checkpoint it, preserving the architectural zero.
        let mut b = ProgramBuilder::new("t");
        b.bin(BinOp::Add, Reg::R1, Reg::R9, 1); // R9 never written: reads 0
        b.send(Reg::R1);
        b.halt();
        let mut p = b.finish().unwrap();
        form_regions(&mut p);
        insert_checkpoints(&mut p);
        let table = RegionTable::from_program(&p);
        let entry_info = table.get(RegionId::new(0)).unwrap();
        assert_eq!(entry_info.block, BlockId::new(0));
        let (_, cluster) = cluster_before(&p, entry_info.block, entry_info.boundary_index);
        assert!(cluster.iter().any(|(_, r, _)| *r == Reg::R9));
    }
}
