//! The end-to-end GECKO compilation pipeline (Section VI-B's five steps
//! plus coloring), its options, errors, statistics and output type.

use std::fmt;

use gecko_isa::{Block, BlockId, CostModel, Program, RegionId, Terminator, VerifyError};

use crate::checkpoint::{cluster_before, insert_checkpoints};
use crate::coloring::color_checkpoints;
use crate::pruning::{prune_checkpoints, prune_checkpoints_filtered};
use crate::recovery::{RecoveryTable, RegionTable, RestoreAction};
use crate::regions::{form_regions_policy, hoist_war_boundaries};
use crate::wcet::split_regions;

/// Tuning knobs for [`compile`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompileOptions {
    /// Maximum worst-case cycles a region may take — the minimum power-on
    /// budget of Section VI-B. `None` disables splitting.
    pub wcet_budget_cycles: Option<u64>,
    /// Whether to run checkpoint pruning (disable for the Figure 11
    /// "GECKO w/o pruning" ablation).
    pub prune: bool,
    /// Maximum instructions per recovery block.
    pub max_slice_insts: usize,
}

impl Default for CompileOptions {
    /// Pruning on, 12-instruction slices, and a 4k-cycle (≈0.25 ms at
    /// 16 MHz) region budget — a conservative minimum power-on period
    /// (well below even the spoofed-outage windows an attacker can force).
    fn default() -> CompileOptions {
        CompileOptions {
            wcet_budget_cycles: Some(4_000),
            prune: true,
            max_slice_insts: 12,
        }
    }
}

impl CompileOptions {
    /// The Figure 11 ablation: identical but with pruning disabled.
    pub fn without_pruning(self) -> CompileOptions {
        CompileOptions {
            prune: false,
            ..self
        }
    }
}

/// Compilation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// A region contains a cycle with no boundary (cannot occur after
    /// region formation; indicates a malformed hand-instrumented input).
    UnboundedRegion {
        /// A block on the boundary-free cycle.
        block: BlockId,
    },
    /// A region cannot be split under the WCET budget (a single
    /// instruction exceeds it).
    UnsplittableRegion {
        /// The block heading the unsplittable region.
        region_head: BlockId,
    },
    /// Region splitting failed to converge (defensive bound).
    SplittingDiverged,
    /// A loop that can iterate inside a region has no annotated bound, so
    /// its WCET cannot be established.
    MissingLoopBound {
        /// The unbounded loop's header block.
        header: BlockId,
    },
    /// A coloring conflict could not be localized to a single edge.
    ColoringFailed {
        /// The join region whose predecessors disagree.
        region: RegionId,
    },
    /// The instrumented program failed verification (a compiler bug).
    Verify(VerifyError),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::UnboundedRegion { block } => {
                write!(f, "region through {block} contains a boundary-free cycle")
            }
            CompileError::UnsplittableRegion { region_head } => {
                write!(f, "region at {region_head} cannot fit the WCET budget")
            }
            CompileError::SplittingDiverged => write!(f, "region splitting diverged"),
            CompileError::MissingLoopBound { header } => {
                write!(f, "loop headed by {header} has no loop_bound annotation")
            }
            CompileError::ColoringFailed { region } => {
                write!(
                    f,
                    "slot coloring conflict at region {region} not repairable"
                )
            }
            CompileError::Verify(e) => write!(f, "instrumented program invalid: {e}"),
        }
    }
}

impl std::error::Error for CompileError {}

impl From<VerifyError> for CompileError {
    fn from(e: VerifyError) -> CompileError {
        CompileError::Verify(e)
    }
}

/// Statistics of one compilation, feeding Figures 11–12 and Table III.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CompileStats {
    /// Region boundaries in the final program.
    pub regions: usize,
    /// Boundaries added by WCET splitting.
    pub regions_split: usize,
    /// Checkpoint stores before pruning.
    pub checkpoints_before: usize,
    /// Checkpoint stores surviving in the final program (including
    /// coloring fix-ups).
    pub checkpoints_after: usize,
    /// Checkpoint stores removed by pruning.
    pub checkpoints_pruned: usize,
    /// Recovery blocks generated.
    pub recovery_blocks: usize,
    /// Total instructions across recovery blocks.
    pub recovery_insts: usize,
    /// Fix-up regions inserted by coloring.
    pub coloring_fixups: usize,
    /// WAR-cut boundaries hoisted out of loops.
    pub boundaries_hoisted: usize,
}

impl CompileStats {
    /// Fraction of checkpoint stores removed by pruning, in `0..=1`.
    pub fn prune_ratio(&self) -> f64 {
        if self.checkpoints_before == 0 {
            0.0
        } else {
            self.checkpoints_pruned as f64 / self.checkpoints_before as f64
        }
    }
}

/// A compiled, instrumented program with its recovery metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct InstrumentedProgram {
    /// The instrumented program (boundaries + checkpoint clusters).
    pub program: Program,
    /// Where each region's boundary lives.
    pub regions: RegionTable,
    /// The recovery lookup table.
    pub recovery: RecoveryTable,
    /// Compilation statistics.
    pub stats: CompileStats,
}

/// Runs the full GECKO pipeline on `program`.
///
/// # Errors
///
/// See [`CompileError`]. With default options the only reachable errors
/// are WCET unsplittability (an atomic instruction larger than the budget)
/// and coloring-localization failure.
pub fn compile(
    program: &Program,
    options: &CompileOptions,
) -> Result<InstrumentedProgram, CompileError> {
    let cost = CostModel::default();
    let mut p = program.clone();

    // 1. Canonicalize.
    split_critical_edges(&mut p);

    // 2. Idempotent region formation: entry, I/O brackets and
    //    anti-dependence cuts. Loop headers are NOT cut here — the WCET
    //    pass bounds region length instead, typically slicing programs at
    //    outer-iteration granularity (far coarser, and therefore far
    //    cheaper, than Ratchet's per-header regions).
    form_regions_policy(&mut p, false);

    // 2b. Loop-invariant boundary hoisting: move WAR cuts out of loops
    //     whenever the verifier proves every anti-dependence stays cut.
    let hoisted = hoist_war_boundaries(&mut p);

    // 3–4. WCET analysis + splitting.
    let mut split = 0;
    if let Some(budget) = options.wcet_budget_cycles {
        split = split_regions(&mut p, &cost, budget)?;
    }

    // 5a. Checkpoint insertion.
    let checkpoints_before = insert_checkpoints(&mut p);

    // 5b. Pruning.
    let prune_out = if options.prune {
        prune_checkpoints(&mut p, options.max_slice_insts)
    } else {
        Default::default()
    };

    // 6. Slot coloring (may insert fix-up regions).
    let coloring = color_checkpoints(&mut p)?;

    // 6b. Prune the fix-up clusters too (their slices may only depend on
    //     registers kept within the same fix-up cluster).
    let fixup_ids: std::collections::BTreeSet<gecko_isa::RegionId> =
        coloring.fixups.iter().map(|f| f.id).collect();
    let fixup_prune = if options.prune && !fixup_ids.is_empty() {
        prune_checkpoints_filtered(&mut p, options.max_slice_insts, Some(&fixup_ids))
    } else {
        Default::default()
    };

    gecko_isa::verify(&p)?;

    // Assemble metadata.
    let regions = RegionTable::from_program(&p);
    let mut recovery = RecoveryTable::new();
    for info in regions.iter() {
        let (_, cluster) = cluster_before(&p, info.block, info.boundary_index);
        let mut actions: Vec<RestoreAction> = cluster
            .iter()
            .map(|&(_, reg, slot)| RestoreAction::FromSlot { reg, slot })
            .collect();
        if let Some(pruned) = prune_out.pruned.get(&info.id) {
            for (reg, slice) in pruned {
                actions.push(RestoreAction::Recompute {
                    reg: *reg,
                    slice: slice.clone(),
                });
            }
        }
        if let Some(pruned) = fixup_prune.pruned.get(&info.id) {
            for (reg, slice) in pruned {
                actions.push(RestoreAction::Recompute {
                    reg: *reg,
                    slice: slice.clone(),
                });
            }
        }
        recovery.set(info.id, actions);
    }

    let stats = CompileStats {
        regions: regions.len(),
        regions_split: split,
        checkpoints_before,
        checkpoints_after: p.checkpoint_count(),
        checkpoints_pruned: prune_out.removed + fixup_prune.removed,
        recovery_blocks: recovery.recovery_block_count(),
        recovery_insts: recovery.recovery_inst_count(),
        coloring_fixups: coloring.fixups.len(),
        boundaries_hoisted: hoisted,
    };
    Ok(InstrumentedProgram {
        program: p,
        regions,
        recovery,
        stats,
    })
}

/// The Figure 11 ablation: full pipeline with pruning disabled.
///
/// # Errors
///
/// Same as [`compile`].
pub fn compile_unpruned(
    program: &Program,
    options: &CompileOptions,
) -> Result<InstrumentedProgram, CompileError> {
    compile(program, &options.without_pruning())
}

/// Splits critical edges (an edge from a multi-successor block to a
/// multi-predecessor block) by interposing empty blocks, so that later
/// passes can insert code on a specific edge.
pub fn split_critical_edges(program: &mut Program) {
    let preds = program.predecessors();
    let multi_pred: Vec<bool> = preds.iter().map(|p| p.len() > 1).collect();
    for b in program.block_ids().collect::<Vec<_>>() {
        let succs = program.successors(b);
        if succs.len() < 2 {
            continue;
        }
        let term = program.block(b).term;
        if let Terminator::Branch {
            cond,
            lhs,
            rhs,
            taken,
            fall,
        } = term
        {
            let mut new_taken = taken;
            let mut new_fall = fall;
            if multi_pred[taken.index()] {
                new_taken = program.push_block(Block::new(vec![], Terminator::Jump(taken)));
            }
            if multi_pred[fall.index()] {
                new_fall = program.push_block(Block::new(vec![], Terminator::Jump(fall)));
            }
            if new_taken != taken || new_fall != fall {
                program.block_mut(b).term = Terminator::Branch {
                    cond,
                    lhs,
                    rhs,
                    taken: new_taken,
                    fall: new_fall,
                };
            }
        }
    }
}

/// Convenience: count the checkpoint stores a [`Program`] executes along a
/// straight interpretation-free scan (static count, used by Table III).
pub fn static_checkpoint_count(p: &InstrumentedProgram) -> usize {
    p.program.checkpoint_count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gecko_isa::{BinOp, Cond, ProgramBuilder, Reg};

    fn loop_program() -> Program {
        let mut b = ProgramBuilder::new("loop");
        let d = b.segment("d", 16, true);
        let (i, acc, base) = (Reg::R1, Reg::R2, Reg::R3);
        b.mov(i, 0);
        b.mov(acc, 0);
        b.mov(base, d as i32);
        let head = b.new_label("head");
        let body = b.new_label("body");
        let exit = b.new_label("exit");
        b.bind(head);
        b.set_loop_bound(16);
        b.branch(Cond::Lt, i, 16, body, exit);
        b.bind(body);
        b.load(Reg::R4, base, 0);
        b.bin(BinOp::Add, acc, acc, Reg::R4);
        b.store(acc, base, 0);
        b.bin(BinOp::Add, i, i, 1);
        b.jump(head);
        b.bind(exit);
        b.send(acc);
        b.halt();
        b.finish().unwrap()
    }

    #[test]
    fn full_pipeline_produces_consistent_metadata() {
        let p = loop_program();
        let out = compile(&p, &CompileOptions::default()).unwrap();
        assert!(out.regions.len() >= 2);
        assert_eq!(out.stats.regions, out.regions.len());
        assert_eq!(out.stats.checkpoints_after, out.program.checkpoint_count());
        // Every region has recovery actions covering its cluster.
        for info in out.regions.iter() {
            let (_, cluster) = cluster_before(&out.program, info.block, info.boundary_index);
            let actions = out.recovery.actions(info.id);
            for &(_, reg, slot) in &cluster {
                assert!(
                    actions.iter().any(|a| matches!(a,
                        RestoreAction::FromSlot { reg: r, slot: s } if *r == reg && *s == slot)),
                    "cluster reg {reg} missing from recovery table"
                );
            }
        }
    }

    #[test]
    fn pruning_reduces_checkpoints() {
        let p = loop_program();
        let pruned = compile(&p, &CompileOptions::default()).unwrap();
        let unpruned = compile_unpruned(&p, &CompileOptions::default()).unwrap();
        assert!(
            pruned.stats.checkpoints_after <= unpruned.stats.checkpoints_after,
            "pruned {} vs unpruned {}",
            pruned.stats.checkpoints_after,
            unpruned.stats.checkpoints_after
        );
        assert_eq!(unpruned.stats.checkpoints_pruned, 0);
        assert_eq!(unpruned.stats.recovery_blocks, 0);
        // The base pointer checkpoint is prunable here.
        assert!(pruned.stats.checkpoints_pruned > 0);
        assert!(pruned.stats.prune_ratio() > 0.0);
    }

    #[test]
    fn wcet_budget_splits_regions() {
        let mut b = ProgramBuilder::new("long");
        for _ in 0..300 {
            b.bin(BinOp::Add, Reg::R1, Reg::R1, 1);
        }
        b.halt();
        let p = b.finish().unwrap();
        let opts = CompileOptions {
            wcet_budget_cycles: Some(100),
            ..CompileOptions::default()
        };
        let out = compile(&p, &opts).unwrap();
        assert!(out.stats.regions_split > 0);
    }

    #[test]
    fn no_budget_means_no_splitting() {
        let p = loop_program();
        let opts = CompileOptions {
            wcet_budget_cycles: None,
            ..CompileOptions::default()
        };
        let out = compile(&p, &opts).unwrap();
        assert_eq!(out.stats.regions_split, 0);
    }

    #[test]
    fn critical_edge_splitting_preserves_structure() {
        // branch into a shared join from two branching blocks.
        let mut b = ProgramBuilder::new("ce");
        b.mov(Reg::R1, 0);
        let x = b.new_label("x");
        let join = b.new_label("join");
        b.branch(Cond::Eq, Reg::R1, 0, join, x); // edge -> join is critical
        b.bind(x);
        b.jump(join);
        b.bind(join);
        b.halt();
        let mut p = b.finish().unwrap();
        let before = p.block_count();
        split_critical_edges(&mut p);
        assert!(p.block_count() > before);
        gecko_isa::verify(&p).unwrap();
    }

    #[test]
    fn instrumented_program_verifies() {
        let p = loop_program();
        let out = compile(&p, &CompileOptions::default()).unwrap();
        gecko_isa::verify(&out.program).unwrap();
        assert_eq!(static_checkpoint_count(&out), out.stats.checkpoints_after);
    }
}
