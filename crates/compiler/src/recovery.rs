//! Region and recovery metadata emitted by the compiler — the "lookup
//! table" the GECKO runtime consults in the wake of a power failure
//! (Section VI-E).

use std::collections::BTreeMap;

use gecko_isa::{BlockId, Inst, Program, Reg, RegionId};

/// Where a region lives in the instrumented program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegionInfo {
    /// The region's id (as embedded in its `Boundary` instruction).
    pub id: RegionId,
    /// Block containing the boundary.
    pub block: BlockId,
    /// Instruction index of the `Boundary` within the block.
    pub boundary_index: usize,
}

impl RegionInfo {
    /// The position execution resumes at after rolling back to this region:
    /// immediately after the boundary commit.
    pub fn resume_point(&self) -> (BlockId, usize) {
        (self.block, self.boundary_index + 1)
    }

    /// A one-line human-readable location, e.g. `region 3 @ b2[5] (resume
    /// b2[6])` — the vocabulary blame reports use to name a rollback
    /// target.
    pub fn describe(&self) -> String {
        let (rb, ri) = self.resume_point();
        format!(
            "region {} @ {}[{}] (resume {rb}[{ri}])",
            self.id, self.block, self.boundary_index
        )
    }
}

/// All regions of an instrumented program, indexed by region id.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RegionTable {
    entries: BTreeMap<RegionId, RegionInfo>,
}

impl RegionTable {
    /// Builds the table by scanning for `Boundary` instructions.
    ///
    /// # Panics
    ///
    /// Panics if two boundaries carry the same region id (a compiler bug).
    pub fn from_program(program: &Program) -> RegionTable {
        let mut entries = BTreeMap::new();
        for (b, block) in program.blocks() {
            for (i, inst) in block.insts.iter().enumerate() {
                if let Inst::Boundary { region } = *inst {
                    let prev = entries.insert(
                        region,
                        RegionInfo {
                            id: region,
                            block: b,
                            boundary_index: i,
                        },
                    );
                    assert!(prev.is_none(), "duplicate region id {region}");
                }
            }
        }
        RegionTable { entries }
    }

    /// Looks up a region.
    pub fn get(&self, id: RegionId) -> Option<&RegionInfo> {
        self.entries.get(&id)
    }

    /// Number of regions.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether there are no regions (an uninstrumented program).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates regions in id order.
    pub fn iter(&self) -> impl Iterator<Item = &RegionInfo> {
        self.entries.values()
    }
}

/// How to reconstruct one register during recovery of a region.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RestoreAction {
    /// Read the register's checkpoint slot of the given color.
    FromSlot {
        /// Register to restore.
        reg: Reg,
        /// Double-buffer color its checkpoint was written with.
        slot: u8,
    },
    /// Execute a recovery block — a short straight-line slice that
    /// recomputes the register from already-restored registers, constants
    /// and read-only memory. The slice runs in a scratch context seeded
    /// with the slot-restored registers.
    Recompute {
        /// Register to reconstruct.
        reg: Reg,
        /// The recovery block, in execution order.
        slice: Vec<Inst>,
    },
}

impl RestoreAction {
    /// The register this action restores.
    pub fn reg(&self) -> Reg {
        match self {
            RestoreAction::FromSlot { reg, .. } => *reg,
            RestoreAction::Recompute { reg, .. } => *reg,
        }
    }
}

/// The recovery lookup table: per region, the restore actions that rebuild
/// the register file at the region's entry. Slot restores are listed before
/// recomputes so slices can rely on restored dependencies.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RecoveryTable {
    per_region: BTreeMap<RegionId, Vec<RestoreAction>>,
}

impl RecoveryTable {
    /// Creates an empty table.
    pub fn new() -> RecoveryTable {
        RecoveryTable::default()
    }

    /// Sets the actions for a region (slot restores first).
    pub fn set(&mut self, region: RegionId, mut actions: Vec<RestoreAction>) {
        actions.sort_by_key(|a| match a {
            RestoreAction::FromSlot { reg, .. } => (0, reg.index()),
            RestoreAction::Recompute { reg, .. } => (1, reg.index()),
        });
        self.per_region.insert(region, actions);
    }

    /// The restore actions for a region (empty slice when none recorded —
    /// e.g. the entry region of a program with no live-in registers).
    pub fn actions(&self, region: RegionId) -> &[RestoreAction] {
        self.per_region
            .get(&region)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Number of recovery blocks (recompute actions) across all regions.
    pub fn recovery_block_count(&self) -> usize {
        self.per_region
            .values()
            .flatten()
            .filter(|a| matches!(a, RestoreAction::Recompute { .. }))
            .count()
    }

    /// Total instructions across all recovery blocks.
    pub fn recovery_inst_count(&self) -> usize {
        self.per_region
            .values()
            .flatten()
            .map(|a| match a {
                RestoreAction::Recompute { slice, .. } => slice.len(),
                _ => 0,
            })
            .sum()
    }

    /// Mean instructions per recovery block (0 when there are none).
    pub fn mean_recovery_block_len(&self) -> f64 {
        let blocks = self.recovery_block_count();
        if blocks == 0 {
            0.0
        } else {
            self.recovery_inst_count() as f64 / blocks as f64
        }
    }

    /// The model cost, in instructions, of the lookup-table dispatch the
    /// runtime executes to find a region's actions (the paper reports a
    /// ~130-instruction lookup table).
    pub fn lookup_cost_insts(&self) -> usize {
        // Binary-search dispatch over region entries.
        8 + 4 * (usize::BITS - self.per_region.len().leading_zeros()) as usize
    }

    /// `(slot restores, recomputes)` for one region — the shape of the
    /// recovery a rollback to it performs, as blame reports cite it.
    pub fn action_counts(&self, region: RegionId) -> (usize, usize) {
        let mut slots = 0;
        let mut recomputes = 0;
        for action in self.actions(region) {
            match action {
                RestoreAction::FromSlot { .. } => slots += 1,
                RestoreAction::Recompute { .. } => recomputes += 1,
            }
        }
        (slots, recomputes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gecko_isa::{Operand, ProgramBuilder};

    #[test]
    fn region_table_scans_boundaries() {
        let mut b = ProgramBuilder::new("t");
        b.push(Inst::Boundary {
            region: RegionId::new(0),
        });
        b.mov(Reg::R1, 1);
        b.push(Inst::Boundary {
            region: RegionId::new(1),
        });
        b.halt();
        let p = b.finish().unwrap();
        let t = RegionTable::from_program(&p);
        assert_eq!(t.len(), 2);
        let r0 = t.get(RegionId::new(0)).unwrap();
        assert_eq!(r0.boundary_index, 0);
        assert_eq!(r0.resume_point(), (p.entry(), 1));
        let r1 = t.get(RegionId::new(1)).unwrap();
        assert_eq!(r1.boundary_index, 2);
        assert!(t.get(RegionId::new(7)).is_none());
    }

    #[test]
    #[should_panic(expected = "duplicate region id")]
    fn duplicate_region_ids_rejected() {
        let mut b = ProgramBuilder::new("t");
        b.push(Inst::Boundary {
            region: RegionId::new(0),
        });
        b.push(Inst::Boundary {
            region: RegionId::new(0),
        });
        b.halt();
        let p = b.finish().unwrap();
        let _ = RegionTable::from_program(&p);
    }

    #[test]
    fn recovery_table_orders_and_counts() {
        let mut t = RecoveryTable::new();
        t.set(
            RegionId::new(1),
            vec![
                RestoreAction::Recompute {
                    reg: Reg::R2,
                    slice: vec![
                        Inst::Mov {
                            dst: Reg::R2,
                            src: Operand::Imm(5),
                        },
                        Inst::Bin {
                            op: gecko_isa::BinOp::Add,
                            dst: Reg::R2,
                            lhs: Reg::R2,
                            rhs: Operand::Imm(1),
                        },
                    ],
                },
                RestoreAction::FromSlot {
                    reg: Reg::R1,
                    slot: 0,
                },
            ],
        );
        let acts = t.actions(RegionId::new(1));
        assert!(
            matches!(acts[0], RestoreAction::FromSlot { .. }),
            "slots first"
        );
        assert_eq!(acts[1].reg(), Reg::R2);
        assert_eq!(t.recovery_block_count(), 1);
        assert_eq!(t.recovery_inst_count(), 2);
        assert!((t.mean_recovery_block_len() - 2.0).abs() < 1e-12);
        assert!(t.lookup_cost_insts() > 0);
        assert!(t.actions(RegionId::new(9)).is_empty());
    }
}
