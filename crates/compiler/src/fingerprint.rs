//! Content fingerprints of a compiled program, per idempotent region —
//! the change-detection layer behind the checker's incremental re-checks.
//!
//! A memoized checker verdict is a statement about *code*: "crashing in
//! window w and recovering through region r's restore actions reaches a
//! clean completion". When the program is recompiled, verdicts blamed on
//! regions whose code and recovery metadata are unchanged are still
//! sound; only verdicts touching a changed region need re-exploration
//! (DESIGN.md §18). This module supplies the identity that decision keys
//! on:
//!
//! * a **per-region fingerprint** — FNV-1a over the region's id, its
//!   boundary location, every instruction (and the terminator) of the
//!   boundary block, and the region's [`RecoveryTable`] restore actions;
//! * a **whole-program fingerprint** — FNV-1a over every block and every
//!   recovery entry, folding the per-region digests in id order.
//!
//! Instructions hash through their [`Display`](std::fmt::Display)
//! rendering: the textual ISA is the stable vocabulary every layer
//! (blame reports, dot dumps, journals) already shares, so a fingerprint
//! changes exactly when the rendered program changes.

use std::collections::BTreeMap;

use gecko_isa::{Program, RegionId};

use crate::recovery::{RecoveryTable, RegionTable, RestoreAction};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x1000_0000_01b3;

fn fnv_u64(mut h: u64, v: u64) -> u64 {
    for byte in v.to_le_bytes() {
        h = (h ^ byte as u64).wrapping_mul(FNV_PRIME);
    }
    h
}

fn fnv_str(mut h: u64, s: &str) -> u64 {
    h = fnv_u64(h, s.len() as u64);
    for byte in s.bytes() {
        h = (h ^ byte as u64).wrapping_mul(FNV_PRIME);
    }
    h
}

/// Fingerprints of one compiled artifact: the whole program plus one
/// digest per idempotent region, in region-id order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProgramFingerprints {
    /// FNV-1a digest over every block (instructions, terminators, loop
    /// bounds) and every recovery entry. Two artifacts with equal program
    /// fingerprints execute identically under the checker.
    pub program: u64,
    /// Per-region digests keyed by raw region id: the region's boundary
    /// location, its boundary block's code, and its restore actions. An
    /// uninstrumented program (NVP) has no regions and an empty map.
    pub regions: BTreeMap<u32, u64>,
}

/// Computes [`ProgramFingerprints`] for an instrumented program and its
/// recovery table. Regions are discovered by scanning for `Boundary`
/// instructions (the same scan [`RegionTable::from_program`] performs).
pub fn fingerprint_program(program: &Program, recovery: &RecoveryTable) -> ProgramFingerprints {
    let table = RegionTable::from_program(program);
    let mut regions = BTreeMap::new();
    for info in table.iter() {
        let mut h = FNV_OFFSET;
        h = fnv_u64(h, info.id.index() as u64);
        h = fnv_u64(h, info.block.index() as u64);
        h = fnv_u64(h, info.boundary_index as u64);
        let block = program.block(info.block);
        h = fnv_u64(h, block.insts.len() as u64);
        for inst in &block.insts {
            h = fnv_str(h, &format!("{inst}"));
        }
        h = fnv_str(h, &format!("{}", block.term));
        h = fnv_actions(h, recovery.actions(info.id));
        regions.insert(info.id.index() as u32, h);
    }

    let mut h = FNV_OFFSET;
    h = fnv_str(h, program.name());
    h = fnv_u64(h, program.entry().index() as u64);
    h = fnv_u64(h, program.block_count() as u64);
    for (_, block) in program.blocks() {
        h = fnv_u64(h, block.insts.len() as u64);
        for inst in &block.insts {
            h = fnv_str(h, &format!("{inst}"));
        }
        h = fnv_str(h, &format!("{}", block.term));
        h = fnv_u64(h, block.loop_bound.map_or(u64::MAX, u64::from));
    }
    for (&id, &fp) in &regions {
        h = fnv_u64(h, id as u64);
        h = fnv_u64(h, fp);
    }
    ProgramFingerprints {
        program: h,
        regions,
    }
}

fn fnv_actions(mut h: u64, actions: &[RestoreAction]) -> u64 {
    h = fnv_u64(h, actions.len() as u64);
    for action in actions {
        match action {
            RestoreAction::FromSlot { reg, slot } => {
                h = fnv_u64(h, 1);
                h = fnv_u64(h, reg.index() as u64);
                h = fnv_u64(h, *slot as u64);
            }
            RestoreAction::Recompute { reg, slice } => {
                h = fnv_u64(h, 2);
                h = fnv_u64(h, reg.index() as u64);
                h = fnv_u64(h, slice.len() as u64);
                for inst in slice {
                    h = fnv_str(h, &format!("{inst}"));
                }
            }
        }
    }
    h
}

impl ProgramFingerprints {
    /// Digest of a *subset* of regions: FNV-1a over the sorted
    /// `(id, fingerprint)` pairs of `ids`. `None` when any id is unknown
    /// to this artifact (a recompile removed the region — nothing keyed
    /// on it can be validated). The checker's memo store records this for
    /// each slab's blamed-region set and revalidates it against the
    /// current artifact on restore.
    pub fn region_set_digest(&self, ids: impl IntoIterator<Item = u32>) -> Option<u64> {
        let mut h = FNV_OFFSET;
        let mut sorted: Vec<u32> = ids.into_iter().collect();
        sorted.sort_unstable();
        sorted.dedup();
        h = fnv_u64(h, sorted.len() as u64);
        for id in sorted {
            let fp = self.regions.get(&id)?;
            h = fnv_u64(h, id as u64);
            h = fnv_u64(h, *fp);
        }
        Some(h)
    }

    /// The fingerprint of one region by raw id (`None` for unknown ids).
    pub fn region(&self, id: u32) -> Option<u64> {
        self.regions.get(&id).copied()
    }
}

/// Convenience: region ids referenced by a [`RegionId`] iterator, as the
/// raw `u32`s the fingerprint map is keyed by.
pub fn raw_region_ids(ids: impl IntoIterator<Item = RegionId>) -> Vec<u32> {
    ids.into_iter().map(|r| r.index() as u32).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{compile, CompileOptions};
    use gecko_isa::{BinOp, Cond, ProgramBuilder, Reg};

    fn sample_program(imm: i32) -> Program {
        let mut b = ProgramBuilder::new("fp");
        let d = b.segment("d", 16, true);
        let (i, acc, base) = (Reg::R1, Reg::R2, Reg::R3);
        b.mov(i, 0);
        b.mov(acc, imm);
        b.mov(base, d as i32);
        let head = b.new_label("head");
        let body = b.new_label("body");
        let exit = b.new_label("exit");
        b.bind(head);
        b.set_loop_bound(8);
        b.branch(Cond::Lt, i, 8, body, exit);
        b.bind(body);
        b.load(Reg::R4, base, 0);
        b.bin(BinOp::Add, acc, acc, Reg::R4);
        b.store(acc, base, 0);
        b.bin(BinOp::Add, i, i, 1);
        b.jump(head);
        b.bind(exit);
        b.halt();
        b.finish().unwrap()
    }

    #[test]
    fn fingerprints_are_stable_and_change_with_the_program() {
        let out_a = compile(&sample_program(0), &CompileOptions::default()).unwrap();
        let out_b = compile(&sample_program(0), &CompileOptions::default()).unwrap();
        let fa = fingerprint_program(&out_a.program, &out_a.recovery);
        let fb = fingerprint_program(&out_b.program, &out_b.recovery);
        assert_eq!(fa, fb, "same source compiles to the same fingerprints");
        assert!(!fa.regions.is_empty(), "instrumented program has regions");

        let out_c = compile(&sample_program(1), &CompileOptions::default()).unwrap();
        let fc = fingerprint_program(&out_c.program, &out_c.recovery);
        assert_ne!(
            fa.program, fc.program,
            "a changed immediate changes the program digest"
        );
    }

    #[test]
    fn region_set_digest_tracks_member_fingerprints() {
        let out = compile(&sample_program(0), &CompileOptions::default()).unwrap();
        let fps = fingerprint_program(&out.program, &out.recovery);
        let ids: Vec<u32> = fps.regions.keys().copied().collect();
        let all = fps.region_set_digest(ids.iter().copied()).unwrap();
        // Order- and duplicate-insensitive.
        let mut shuffled = ids.clone();
        shuffled.reverse();
        shuffled.push(ids[0]);
        assert_eq!(fps.region_set_digest(shuffled), Some(all));
        // Unknown member: nothing to validate against.
        assert_eq!(fps.region_set_digest([u32::MAX]), None);
        // The empty set digests (to a constant) rather than failing.
        assert!(fps.region_set_digest([]).is_some());
    }
}
