//! The Ratchet baseline (van der Woude & Hicks, OSDI'16): compiler-formed
//! idempotent regions with **centralized** full-register-file
//! checkpointing at every boundary.
//!
//! Differences from GECKO, mirroring the paper's comparison:
//!
//! * no checkpoint clusters in the instruction stream — the *runtime*
//!   saves all sixteen registers (plus a dynamically flipped double-buffer
//!   index) at every boundary commit, which is what makes Ratchet ~2.4×
//!   slower (Figure 11);
//! * no WCET-driven splitting — Ratchet has no notion of a power-on
//!   budget, which is why some of its regions cannot complete within one
//!   charge cycle under attack (the DoS of Section VII-B3);
//! * recovery restores the whole file from the active buffer, so no
//!   recovery table is needed.

use gecko_isa::{CostModel, Program, Reg};

use crate::pipeline::{split_critical_edges, CompileError, CompileStats, InstrumentedProgram};
use crate::recovery::{RecoveryTable, RegionTable};
use crate::regions::form_regions;

/// Compiles `program` in the Ratchet configuration.
///
/// # Errors
///
/// Verification errors only (region formation itself cannot fail).
pub fn compile_ratchet(program: &Program) -> Result<InstrumentedProgram, CompileError> {
    let mut p = program.clone();
    split_critical_edges(&mut p);
    let regions = form_regions(&mut p);
    gecko_isa::verify(&p)?;
    let table = RegionTable::from_program(&p);
    let stats = CompileStats {
        regions,
        ..Default::default()
    };
    Ok(InstrumentedProgram {
        program: p,
        regions: table,
        recovery: RecoveryTable::new(),
        stats,
    })
}

/// Cycles the Ratchet runtime spends at one boundary commit: sixteen
/// register stores (streamed into the checkpoint area, like GECKO's
/// clusters), the double-buffer index load/flip, and the packed commit
/// store (the cost the paper itemizes in Section VI-D).
pub fn ratchet_boundary_cycles(cost: &CostModel) -> u64 {
    Reg::COUNT as u64 * cost.checkpoint + cost.load + cost.alu + cost.boundary
}

/// Cycles the Ratchet runtime spends restoring at recovery.
pub fn ratchet_restore_cycles(cost: &CostModel) -> u64 {
    Reg::COUNT as u64 * cost.load + cost.load + 30
}

#[cfg(test)]
mod tests {
    use super::*;
    use gecko_isa::{BinOp, Cond, ProgramBuilder};

    #[test]
    fn ratchet_has_regions_but_no_checkpoints() {
        let mut b = ProgramBuilder::new("t");
        let (i, acc) = (Reg::R1, Reg::R2);
        b.mov(i, 0);
        b.mov(acc, 0);
        let head = b.new_label("head");
        let body = b.new_label("body");
        let exit = b.new_label("exit");
        b.bind(head);
        b.branch(Cond::Lt, i, 8, body, exit);
        b.bind(body);
        b.bin(BinOp::Add, acc, acc, i);
        b.bin(BinOp::Add, i, i, 1);
        b.jump(head);
        b.bind(exit);
        b.send(acc);
        b.halt();
        let p = b.finish().unwrap();
        let out = compile_ratchet(&p).unwrap();
        assert!(out.regions.len() >= 2);
        assert_eq!(out.program.checkpoint_count(), 0, "runtime checkpoints");
        assert_eq!(out.recovery.recovery_block_count(), 0);
    }

    #[test]
    fn boundary_cost_dominated_by_sixteen_stores() {
        let cost = CostModel::default();
        let c = ratchet_boundary_cycles(&cost);
        assert!(c >= 16 * cost.checkpoint);
        assert!(ratchet_restore_cycles(&cost) >= 16 * cost.load);
    }
}
