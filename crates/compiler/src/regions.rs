//! Idempotent region formation (Section VI-B).
//!
//! A region is *idempotent* when re-executing it from its entry produces
//! the same result — which holds exactly when no memory **anti-dependence**
//! (a load followed by a may-aliasing store) lies entirely inside it: the
//! re-executed load must not observe the store of the first attempt.
//!
//! The pass places `Boundary` pseudo-instructions so that:
//!
//! * the program entry starts region 0;
//! * every loop header opens a region (cutting all cyclic paths, which also
//!   makes every region an acyclic subgraph — a property the WCET pass
//!   relies on);
//! * every I/O operation is bracketed by boundaries (the paper treats
//!   interrupts/IO as separate regions);
//! * every anti-dependent load→store path crosses a boundary: a dataflow
//!   over "addresses loaded since the last boundary" inserts a boundary in
//!   front of any store that may alias a pending load;
//! * **WARAW** dependences are exempt (Section VI-B, "Region formation"):
//!   a load that reads an address the *same region* has already written on
//!   every path is protected — re-execution rewrites the value first — so
//!   it never becomes a pending anti-dependence source.

use std::collections::BTreeSet;

use gecko_isa::{BlockId, Inst, Program, RegionId};

use crate::analysis::{loop_headers, AliasAnalysis, Dominators, MemLoc};

/// Pending anti-dependence sources: the abstract addresses loaded since the
/// last region boundary.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
struct Pending {
    /// A load with an unknown address happened (aliases everything).
    any: bool,
    /// Exactly-known loaded addresses.
    addrs: BTreeSet<u32>,
    /// Segments with loads at unknown offsets.
    segs: BTreeSet<usize>,
}

impl Pending {
    fn clear(&mut self) {
        self.any = false;
        self.addrs.clear();
        self.segs.clear();
    }

    fn add(&mut self, loc: MemLoc) {
        match loc {
            MemLoc::Addr(a) => {
                self.addrs.insert(a);
            }
            MemLoc::Seg(s) => {
                self.segs.insert(s);
            }
            MemLoc::Any => self.any = true,
        }
    }

    fn union_with(&mut self, other: &Pending) -> bool {
        let mut changed = false;
        if other.any && !self.any {
            self.any = true;
            changed = true;
        }
        for &a in &other.addrs {
            changed |= self.addrs.insert(a);
        }
        for &s in &other.segs {
            changed |= self.segs.insert(s);
        }
        changed
    }

    fn store_conflicts(&self, store: MemLoc, program: &Program) -> bool {
        if self.any {
            return true;
        }
        match store {
            MemLoc::Any => !self.addrs.is_empty() || !self.segs.is_empty(),
            MemLoc::Addr(a) => {
                self.addrs.contains(&a)
                    || program
                        .segment_of(a)
                        .is_some_and(|s| self.segs.contains(&s))
            }
            MemLoc::Seg(s) => {
                self.segs.contains(&s)
                    || self
                        .addrs
                        .iter()
                        .any(|&a| program.segments()[s].contains(a))
            }
        }
    }
}

/// Must-written addresses since the last boundary (for the WARAW
/// exemption). `None` = "not yet reached" (top of the intersection
/// lattice).
type Written = Option<BTreeSet<u32>>;

fn intersect(a: &mut Written, b: &BTreeSet<u32>) -> bool {
    match a {
        None => {
            *a = Some(b.clone());
            true
        }
        Some(set) => {
            let before = set.len();
            set.retain(|x| b.contains(x));
            set.len() != before
        }
    }
}

/// Places region boundaries into `program` (mutating it), assigning region
/// ids `0..n` with the entry boundary guaranteed to be region 0. Returns
/// the number of regions created.
///
/// This is the *Ratchet-style* formation that also opens a region at every
/// loop header. GECKO instead uses [`form_regions_policy`] with
/// `cut_loop_headers = false` and relies on loop-bound-aware WCET
/// splitting to bound region lengths — that difference is what makes
/// Ratchet ~2.4x and GECKO ~1.06x in Figure 11.
pub fn form_regions(program: &mut Program) -> usize {
    form_regions_policy(program, true)
}

/// [`form_regions`] with the loop-header rule made optional.
pub fn form_regions_policy(program: &mut Program, cut_loop_headers: bool) -> usize {
    insert_mandatory_boundaries(program, cut_loop_headers);
    cut_anti_dependences(program);
    renumber_boundaries(program)
}

/// Step 1: boundaries at the entry, (optionally) every loop header, and
/// around I/O.
fn insert_mandatory_boundaries(program: &mut Program, cut_loop_headers: bool) {
    let placeholder = Inst::Boundary {
        region: RegionId::new(u32::MAX as usize),
    };
    let dom = Dominators::compute(program);
    let headers: BTreeSet<BlockId> = if cut_loop_headers {
        loop_headers(program, &dom).into_iter().collect()
    } else {
        BTreeSet::new()
    };

    for b in program.block_ids().collect::<Vec<_>>() {
        let is_entry = b == program.entry();
        let block = program.block_mut(b);
        let mut out: Vec<Inst> = Vec::with_capacity(block.insts.len() + 2);
        if is_entry || headers.contains(&b) {
            out.push(placeholder);
        }
        for inst in block.insts.drain(..) {
            if matches!(inst, Inst::Io { .. }) {
                // Bracket I/O: boundary before (unless one is already
                // pending) and after.
                if !matches!(out.last(), Some(Inst::Boundary { .. })) {
                    out.push(placeholder);
                }
                out.push(inst);
                out.push(placeholder);
            } else {
                out.push(inst);
            }
        }
        block.insts = out;
    }
}

/// Step 2: dataflow + insertion pass cutting anti-dependences.
fn cut_anti_dependences(program: &mut Program) {
    let alias = AliasAnalysis::compute(program);
    let n = program.block_count();
    let preds = program.predecessors();

    // Fixpoint over block-entry states.
    let mut pending_in: Vec<Pending> = vec![Pending::default(); n];
    let mut written_in: Vec<Written> = vec![None; n];
    written_in[program.entry().index()] = Some(BTreeSet::new());

    let transfer = |program: &Program,
                    alias: &AliasAnalysis,
                    b: BlockId,
                    pending: &mut Pending,
                    written: &mut BTreeSet<u32>| {
        for (i, inst) in program.block(b).insts.iter().enumerate() {
            match inst {
                Inst::Boundary { .. } => {
                    pending.clear();
                    written.clear();
                }
                Inst::Load { .. } => {
                    let loc = alias.access_loc(program, b, i);
                    if loc.is_read_only(program) {
                        continue;
                    }
                    // WARAW exemption: reads of addresses this region has
                    // certainly written are safe.
                    if let MemLoc::Addr(a) = loc {
                        if written.contains(&a) {
                            continue;
                        }
                    }
                    pending.add(loc);
                }
                Inst::Store { .. } => {
                    let loc = alias.access_loc(program, b, i);
                    if pending.store_conflicts(loc, program) {
                        // The insertion pass will place a boundary before
                        // this store; model its effect.
                        pending.clear();
                        written.clear();
                    }
                    if let MemLoc::Addr(a) = loc {
                        written.insert(a);
                    }
                }
                _ => {}
            }
        }
    };

    let rpo = program.reverse_post_order();
    let mut changed = true;
    while changed {
        changed = false;
        for &b in &rpo {
            let mut pending = pending_in[b.index()].clone();
            let mut written = written_in[b.index()].clone().unwrap_or_default();
            transfer(program, &alias, b, &mut pending, &mut written);
            for s in program.successors(b) {
                changed |= pending_in[s.index()].union_with(&pending);
                changed |= intersect(&mut written_in[s.index()], &written);
            }
        }
        // Unreached-by-intersection blocks (unreachable) settle to empty.
        let _ = &preds;
    }

    // Insertion pass: walk each block with its fixpoint in-state and record
    // the store positions that need a preceding boundary.
    let placeholder = Inst::Boundary {
        region: RegionId::new(u32::MAX as usize),
    };
    for b in program.block_ids().collect::<Vec<_>>() {
        let mut pending = pending_in[b.index()].clone();
        let mut written = written_in[b.index()].clone().unwrap_or_default();
        let mut cuts: Vec<usize> = Vec::new();
        for (i, inst) in program.block(b).insts.iter().enumerate() {
            match inst {
                Inst::Boundary { .. } => {
                    pending.clear();
                    written.clear();
                }
                Inst::Load { .. } => {
                    let loc = alias.access_loc(program, b, i);
                    if loc.is_read_only(program) {
                        continue;
                    }
                    if let MemLoc::Addr(a) = loc {
                        if written.contains(&a) {
                            continue;
                        }
                    }
                    pending.add(loc);
                }
                Inst::Store { .. } => {
                    let loc = alias.access_loc(program, b, i);
                    if pending.store_conflicts(loc, program) {
                        cuts.push(i);
                        pending.clear();
                        written.clear();
                    }
                    if let MemLoc::Addr(a) = loc {
                        written.insert(a);
                    }
                }
                _ => {}
            }
        }
        let block = program.block_mut(b);
        for &i in cuts.iter().rev() {
            block.insts.insert(i, placeholder);
        }
    }
}

/// Check-only verifier: whether every anti-dependent load→store path in
/// `program` already crosses a boundary. Used by the hoisting optimization
/// to validate candidate boundary moves. Unlike the insertion pass, a
/// conflicting store does **not** clear the pending set (we want every
/// violation reported, and a violation means the candidate is rejected
/// anyway).
pub fn anti_dependences_are_cut(program: &Program) -> bool {
    let alias = AliasAnalysis::compute(program);
    let n = program.block_count();
    let mut pending_in: Vec<Pending> = vec![Pending::default(); n];
    let mut written_in: Vec<Written> = vec![None; n];
    written_in[program.entry().index()] = Some(BTreeSet::new());

    let transfer = |pending: &mut Pending,
                    written: &mut BTreeSet<u32>,
                    b: gecko_isa::BlockId,
                    check: &mut bool| {
        for (i, inst) in program.block(b).insts.iter().enumerate() {
            match inst {
                Inst::Boundary { .. } => {
                    pending.clear();
                    written.clear();
                }
                Inst::Load { .. } => {
                    let loc = alias.access_loc(program, b, i);
                    if loc.is_read_only(program) {
                        continue;
                    }
                    if let MemLoc::Addr(a) = loc {
                        if written.contains(&a) {
                            continue;
                        }
                    }
                    pending.add(loc);
                }
                Inst::Store { .. } => {
                    let loc = alias.access_loc(program, b, i);
                    if pending.store_conflicts(loc, program) {
                        *check = false;
                    }
                    if let MemLoc::Addr(a) = loc {
                        written.insert(a);
                    }
                }
                _ => {}
            }
        }
    };

    let rpo = program.reverse_post_order();
    let mut changed = true;
    while changed {
        changed = false;
        for &b in &rpo {
            let mut pending = pending_in[b.index()].clone();
            let mut written = written_in[b.index()].clone().unwrap_or_default();
            let mut ok = true;
            transfer(&mut pending, &mut written, b, &mut ok);
            for s in program.successors(b) {
                changed |= pending_in[s.index()].union_with(&pending);
                changed |= intersect(&mut written_in[s.index()], &written);
            }
        }
    }
    let mut all_ok = true;
    for b in program.block_ids() {
        let mut pending = pending_in[b.index()].clone();
        let mut written = written_in[b.index()].clone().unwrap_or_default();
        transfer(&mut pending, &mut written, b, &mut all_ok);
        if !all_ok {
            return false;
        }
    }
    all_ok
}

/// Loop-invariant boundary hoisting: a WAR-cut boundary inside a loop
/// executes once per iteration, but when the anti-dependence it cuts spans
/// loop *iterations of an enclosing loop* (load outside, store inside —
/// dhrystone's record copy is the canonical case), a single boundary in the
/// loop's preheader cuts every path just as well at a fraction of the
/// dynamic cost. Each candidate move is validated with the check-only
/// verifier and reverted if any anti-dependence would go uncut.
///
/// Only plain WAR-cut boundaries are moved: the entry boundary and the I/O
/// brackets stay where region formation put them.
pub fn hoist_war_boundaries(program: &mut Program) -> usize {
    use crate::analysis::natural_loops;
    let mut hoisted = 0usize;
    // Re-derive loops after every successful move; bounded by boundary count.
    for _ in 0..program.boundary_count() + 1 {
        let dom = Dominators::compute(program);
        let loops = natural_loops(program, &dom);
        let preds = program.predecessors();
        let mut moved = false;

        'search: for l in &loops {
            // Unique preheader: the single predecessor of the header from
            // outside the loop.
            let outside: Vec<_> = preds[l.header.index()]
                .iter()
                .copied()
                .filter(|p| !l.blocks.contains(p))
                .collect();
            let [preheader] = outside.as_slice() else {
                continue;
            };
            for &b in &l.blocks {
                let n_insts = program.block(b).insts.len();
                for i in 0..n_insts {
                    if !matches!(program.block(b).insts[i], Inst::Boundary { .. }) {
                        continue;
                    }
                    if is_pinned_boundary(program, b, i) {
                        continue;
                    }
                    // Tentative move: delete here, append to the preheader.
                    let mut trial = program.clone();
                    let boundary = trial.block_mut(b).insts.remove(i);
                    let ph = trial.block_mut(*preheader);
                    ph.insts.push(boundary);
                    if anti_dependences_are_cut(&trial) {
                        *program = trial;
                        hoisted += 1;
                        moved = true;
                        break 'search;
                    }
                }
            }
        }
        if !moved {
            break;
        }
    }
    if hoisted > 0 {
        renumber_boundaries(program);
    }
    hoisted
}

/// Whether the boundary at `(b, i)` must not be moved: the program entry
/// boundary, or an I/O bracket (immediately adjacent to an `Io`
/// instruction).
fn is_pinned_boundary(program: &Program, b: gecko_isa::BlockId, i: usize) -> bool {
    if b == program.entry() && i == 0 {
        return true;
    }
    let insts = &program.block(b).insts;
    let after_io = i > 0 && matches!(insts[i - 1], Inst::Io { .. });
    let before_io = i + 1 < insts.len() && matches!(insts[i + 1], Inst::Io { .. });
    after_io || before_io
}

/// Assigns fresh sequential region ids to every boundary, entry boundary
/// first (id 0), in reverse post-order so ids roughly follow execution
/// order. Returns the region count.
pub fn renumber_boundaries(program: &mut Program) -> usize {
    let mut next = 0usize;
    for b in program.reverse_post_order() {
        let block = program.block_mut(b);
        for inst in &mut block.insts {
            if let Inst::Boundary { region } = inst {
                *region = RegionId::new(next);
                next += 1;
            }
        }
    }
    next
}

#[cfg(test)]
mod tests {
    use super::*;
    use gecko_isa::{BinOp, Cond, ProgramBuilder, Reg};

    fn boundaries_in(program: &Program, b: BlockId) -> Vec<usize> {
        program
            .block(b)
            .insts
            .iter()
            .enumerate()
            .filter(|(_, i)| matches!(i, Inst::Boundary { .. }))
            .map(|(i, _)| i)
            .collect()
    }

    #[test]
    fn entry_gets_region_zero() {
        let mut b = ProgramBuilder::new("t");
        b.mov(Reg::R1, 1);
        b.halt();
        let mut p = b.finish().unwrap();
        let n = form_regions(&mut p);
        assert_eq!(n, 1);
        assert_eq!(
            p.block(p.entry()).insts[0],
            Inst::Boundary {
                region: RegionId::new(0)
            }
        );
    }

    #[test]
    fn loop_headers_get_boundaries() {
        let mut b = ProgramBuilder::new("t");
        let i = Reg::R1;
        b.mov(i, 0);
        let head = b.new_label("head");
        let body = b.new_label("body");
        let exit = b.new_label("exit");
        b.bind(head);
        b.branch(Cond::Lt, i, 8, body, exit);
        b.bind(body);
        b.bin(BinOp::Add, i, i, 1);
        b.jump(head);
        b.bind(exit);
        b.halt();
        let mut p = b.finish().unwrap();
        let n = form_regions(&mut p);
        assert!(n >= 2);
        assert_eq!(boundaries_in(&p, head), vec![0], "header boundary at top");
        assert!(boundaries_in(&p, body).is_empty(), "no WAR in body");
    }

    #[test]
    fn io_is_bracketed() {
        let mut b = ProgramBuilder::new("t");
        b.mov(Reg::R1, 1);
        b.send(Reg::R1);
        b.mov(Reg::R2, 2);
        b.halt();
        let mut p = b.finish().unwrap();
        form_regions(&mut p);
        let insts = &p.block(p.entry()).insts;
        // boundary(entry) mov boundary send boundary mov
        let kinds: Vec<bool> = insts
            .iter()
            .map(|i| matches!(i, Inst::Boundary { .. }))
            .collect();
        assert_eq!(kinds, vec![true, false, true, false, true, false]);
    }

    #[test]
    fn same_block_anti_dependence_is_cut() {
        let mut b = ProgramBuilder::new("t");
        let d = b.segment("d", 8, true);
        b.mov(Reg::R1, d as i32);
        b.load(Reg::R2, Reg::R1, 0);
        b.bin(BinOp::Add, Reg::R2, Reg::R2, 1);
        b.store(Reg::R2, Reg::R1, 0); // anti-dependence with the load
        b.halt();
        let mut p = b.finish().unwrap();
        form_regions(&mut p);
        let insts = &p.block(p.entry()).insts;
        // Find the store; the instruction before it must be a boundary.
        let store_idx = insts
            .iter()
            .position(|i| matches!(i, Inst::Store { .. }))
            .unwrap();
        assert!(
            matches!(insts[store_idx - 1], Inst::Boundary { .. }),
            "boundary must precede the anti-dependent store: {insts:?}"
        );
    }

    #[test]
    fn waraw_is_not_cut() {
        // store A; load A; store A  — the load is WARAW-protected.
        let mut b = ProgramBuilder::new("t");
        let d = b.segment("d", 8, true);
        b.mov(Reg::R1, d as i32);
        b.mov(Reg::R2, 5);
        b.store(Reg::R2, Reg::R1, 0);
        b.load(Reg::R3, Reg::R1, 0);
        b.bin(BinOp::Add, Reg::R3, Reg::R3, 1);
        b.store(Reg::R3, Reg::R1, 0);
        b.halt();
        let mut p = b.finish().unwrap();
        form_regions(&mut p);
        // Only the entry boundary: the WARAW chain needs no cut.
        assert_eq!(boundaries_in(&p, p.entry()).len(), 1, "{p}");
    }

    #[test]
    fn disjoint_segments_not_cut() {
        let mut b = ProgramBuilder::new("t");
        let a = b.segment("a", 8, true);
        let c = b.segment("c", 8, true);
        b.mov(Reg::R1, a as i32);
        b.mov(Reg::R2, c as i32);
        b.load(Reg::R3, Reg::R1, 0); // load from a
        b.store(Reg::R3, Reg::R2, 0); // store to c: no alias
        b.halt();
        let mut p = b.finish().unwrap();
        form_regions(&mut p);
        assert_eq!(boundaries_in(&p, p.entry()).len(), 1);
    }

    #[test]
    fn read_only_loads_never_pend() {
        let mut b = ProgramBuilder::new("t");
        let ro = b.segment("ro", 8, false);
        let rw = b.segment("rw", 8, true);
        b.mov(Reg::R1, ro as i32);
        b.mov(Reg::R2, rw as i32);
        b.load(Reg::R3, Reg::R1, 0); // read-only load
        b.store(Reg::R3, Reg::R2, 0); // store elsewhere
        b.halt();
        let mut p = b.finish().unwrap();
        form_regions(&mut p);
        assert_eq!(boundaries_in(&p, p.entry()).len(), 1);
    }

    #[test]
    fn cross_block_anti_dependence_is_cut() {
        // Block A loads addr; block B stores it; no boundary between unless
        // inserted by the pass.
        let mut b = ProgramBuilder::new("t");
        let d = b.segment("d", 8, true);
        b.mov(Reg::R1, d as i32);
        b.load(Reg::R2, Reg::R1, 0);
        let nxt = b.new_label("next");
        b.jump(nxt);
        b.bind(nxt);
        b.store(Reg::R2, Reg::R1, 0);
        b.halt();
        let mut p = b.finish().unwrap();
        form_regions(&mut p);
        let insts = &p.block(nxt).insts;
        let store_idx = insts
            .iter()
            .position(|i| matches!(i, Inst::Store { .. }))
            .unwrap();
        assert!(
            store_idx > 0 && matches!(insts[store_idx - 1], Inst::Boundary { .. }),
            "cross-block WAR must be cut: {insts:?}"
        );
    }

    #[test]
    fn hoisting_moves_cross_iteration_cuts_to_the_preheader() {
        // The dhrystone pattern: an outer loop whose body (an inner copy
        // loop) stores to memory that was loaded *after* the inner loop in
        // the previous outer iteration. The WAR cut lands inside the inner
        // loop; hoisting lifts it out.
        let mut b = ProgramBuilder::new("t");
        let rec = b.segment("rec", 8, false);
        let copy = b.segment("copy", 8, true);
        let (run, k, t, p, q, recb, copyb) = (
            Reg::R1,
            Reg::R2,
            Reg::R3,
            Reg::R4,
            Reg::R5,
            Reg::R10,
            Reg::R11,
        );
        b.mov(recb, rec as i32);
        b.mov(copyb, copy as i32);
        b.mov(run, 0);
        let main = b.new_label("main");
        let body = b.new_label("body");
        let ch = b.new_label("copy_head");
        let cb = b.new_label("copy_body");
        let fields = b.new_label("fields");
        let exit = b.new_label("exit");
        b.bind(main);
        b.set_loop_bound(10);
        b.branch(Cond::Lt, run, 10, body, exit);
        b.bind(body);
        b.mov(k, 0);
        b.jump(ch);
        b.bind(ch);
        b.set_loop_bound(8);
        b.branch(Cond::Lt, k, 8, cb, fields);
        b.bind(cb);
        b.bin(BinOp::Add, p, recb, k);
        b.load(t, p, 0);
        b.bin(BinOp::Add, q, copyb, k);
        b.store(t, q, 0); // WAR with the `fields` load of the previous run
        b.bin(BinOp::Add, k, k, 1);
        b.jump(ch);
        b.bind(fields);
        b.load(t, copyb, 0);
        b.bin(BinOp::Add, run, run, Reg::R3);
        b.jump(main);
        b.bind(exit);
        b.halt();
        let mut p0 = b.finish().unwrap();
        form_regions_policy(&mut p0, false);
        let mut hoisted_prog = p0.clone();
        let hoisted = hoist_war_boundaries(&mut hoisted_prog);
        assert!(hoisted >= 1, "the inner-loop cut must hoist");
        assert!(anti_dependences_are_cut(&hoisted_prog), "still sound");
        // The inner copy-body block no longer contains a boundary.
        let cb_boundaries = hoisted_prog
            .block(cb)
            .insts
            .iter()
            .filter(|i| matches!(i, Inst::Boundary { .. }))
            .count();
        assert_eq!(cb_boundaries, 0, "{hoisted_prog}");
    }

    #[test]
    fn hoisting_keeps_same_iteration_cuts_in_place() {
        // load a[j] then store a[j] within the same iteration: the cut must
        // stay inside the loop (moving it would leave the WAR uncut).
        let mut b = ProgramBuilder::new("t");
        let arr = b.segment("arr", 8, true);
        let (i, t, p, base) = (Reg::R1, Reg::R2, Reg::R3, Reg::R10);
        b.mov(base, arr as i32);
        b.mov(i, 0);
        let head = b.new_label("head");
        let body = b.new_label("body");
        let exit = b.new_label("exit");
        b.bind(head);
        b.set_loop_bound(8);
        b.branch(Cond::Lt, i, 8, body, exit);
        b.bind(body);
        b.bin(BinOp::Add, p, base, i);
        b.load(t, p, 0);
        b.bin(BinOp::Add, t, t, 1);
        b.store(t, p, 0);
        b.bin(BinOp::Add, i, i, 1);
        b.jump(head);
        b.bind(exit);
        b.halt();
        let mut p0 = b.finish().unwrap();
        form_regions_policy(&mut p0, false);
        let before = p0.clone();
        let hoisted = hoist_war_boundaries(&mut p0);
        assert!(anti_dependences_are_cut(&p0));
        // The cut stays inside the loop body.
        let body_boundaries = p0
            .block(body)
            .insts
            .iter()
            .filter(|x| matches!(x, Inst::Boundary { .. }))
            .count();
        assert_eq!(body_boundaries, 1, "hoisted={hoisted}\n{before}\n{p0}");
    }

    #[test]
    fn verifier_accepts_formed_programs_and_rejects_stripped_ones() {
        let mut b = ProgramBuilder::new("t");
        let d = b.segment("d", 8, true);
        b.mov(Reg::R1, d as i32);
        b.load(Reg::R2, Reg::R1, 0);
        b.store(Reg::R2, Reg::R1, 0);
        b.halt();
        let mut p = b.finish().unwrap();
        form_regions_policy(&mut p, false);
        assert!(anti_dependences_are_cut(&p));
        // Strip every boundary: the WAR is now uncut.
        for blk in p.block_ids().collect::<Vec<_>>() {
            p.block_mut(blk)
                .insts
                .retain(|i| !matches!(i, Inst::Boundary { .. }));
        }
        assert!(!anti_dependences_are_cut(&p));
    }

    #[test]
    fn renumber_is_dense_and_unique() {
        let mut b = ProgramBuilder::new("t");
        let d = b.segment("d", 8, true);
        b.mov(Reg::R1, d as i32);
        b.load(Reg::R2, Reg::R1, 0);
        b.store(Reg::R2, Reg::R1, 0);
        b.sense(Reg::R3);
        b.halt();
        let mut p = b.finish().unwrap();
        let n = form_regions(&mut p);
        let mut seen = BTreeSet::new();
        for (_, block) in p.blocks() {
            for inst in &block.insts {
                if let Inst::Boundary { region } = inst {
                    assert!(seen.insert(region.index()), "duplicate id");
                }
            }
        }
        assert_eq!(seen.len(), n);
        assert_eq!(*seen.iter().max().unwrap(), n - 1, "dense ids");
        assert!(seen.contains(&0));
    }
}
