//! Worst-case execution time (WCET) analysis and region splitting
//! (Section VI-B, steps 3–4).
//!
//! GECKO — unlike Ratchet — does **not** open a region at every loop
//! header. Instead it bounds each region's WCET using the applications'
//! annotated loop bounds ([`gecko_isa::Block::loop_bound`], the paper's
//! WCET analysis input) and splits any region that could not complete
//! within the minimum power-on period. This is what keeps GECKO's regions
//! coarse (cheap) while guaranteeing forward progress: a region longer
//! than one capacitor charge cycle could never commit and would starve —
//! the Ratchet DoS of Section VII-B3.
//!
//! The WCET estimate is deliberately conservative: the cost of every block
//! reachable from the region entry without crossing a boundary is summed,
//! each multiplied by the trip product of the loops that can actually
//! iterate inside the region (loops containing the region's own boundary
//! are cut by it and count once).

use std::collections::BTreeMap;

use gecko_isa::{BlockId, CostModel, Inst, Program, RegionId};

use crate::analysis::{natural_loops, Dominators, NaturalLoop};
use crate::pipeline::CompileError;
use crate::recovery::RegionTable;
use crate::regions::renumber_boundaries;

/// Per-region worst-case cycles, from the boundary commit (inclusive) to
/// the next boundary commit or halt.
///
/// # Errors
///
/// [`CompileError::MissingLoopBound`] when a loop that can iterate inside
/// some region has no annotated bound.
pub fn region_wcets(
    program: &Program,
    cost: &CostModel,
) -> Result<BTreeMap<RegionId, u64>, CompileError> {
    let table = RegionTable::from_program(program);
    let dom = Dominators::compute(program);
    let loops = natural_loops(program, &dom);
    let mut out = BTreeMap::new();
    for info in table.iter() {
        let detail = analyze_region(program, cost, &loops, info.block, info.boundary_index)?;
        out.insert(info.id, detail.wcet);
    }
    Ok(out)
}

/// Per-block accounting of one region.
#[derive(Debug, Clone)]
struct RegionDetail {
    wcet: u64,
    blocks: Vec<BlockEntry>,
}

/// One block's contribution to a region.
#[derive(Debug, Clone, Copy)]
struct BlockEntry {
    block: BlockId,
    /// First counted instruction index.
    start: usize,
    /// Number of counted instructions (up to the terminating boundary).
    prefix_len: usize,
    /// Cycles of the counted portion.
    cycles: u64,
    /// Multiplier from enclosing counted loops.
    trips: u64,
}

fn trip_product(
    loops: &[NaturalLoop],
    program: &Program,
    block: BlockId,
    region_block: BlockId,
) -> Result<u64, CompileError> {
    let mut product: u64 = 1;
    for l in loops {
        if l.blocks.contains(&block) && !l.blocks.contains(&region_block) {
            let bound = program
                .block(l.header)
                .loop_bound
                .ok_or(CompileError::MissingLoopBound { header: l.header })?;
            product = product.saturating_mul(bound.max(1) as u64);
        }
    }
    Ok(product)
}

fn analyze_region(
    program: &Program,
    cost: &CostModel,
    loops: &[NaturalLoop],
    region_block: BlockId,
    boundary_index: usize,
) -> Result<RegionDetail, CompileError> {
    let commit = cost.boundary;
    let mut total = commit;
    let mut blocks = Vec::new();
    let mut visited = vec![false; program.block_count()];
    // (block, start index) — only the region's own block starts mid-way.
    let mut work: Vec<(BlockId, usize)> = vec![(region_block, boundary_index + 1)];
    while let Some((b, start)) = work.pop() {
        if start == 0 {
            if visited[b.index()] {
                continue;
            }
            visited[b.index()] = true;
        }
        let blk = program.block(b);
        let mut acc = 0u64;
        let mut end = blk.insts.len();
        let mut hit_boundary = false;
        for (i, inst) in blk.insts.iter().enumerate().skip(start) {
            if matches!(inst, Inst::Boundary { .. }) {
                acc += cost.inst_cycles(inst);
                end = i;
                hit_boundary = true;
                break;
            }
            acc += cost.inst_cycles(inst);
        }
        if !hit_boundary {
            acc += cost.term_cycles(&blk.term);
        }
        // A block whose counted portion ends at a boundary terminates the
        // region: it can execute at most once per region entry, whatever
        // loops contain it.
        let trips = if hit_boundary {
            1
        } else {
            trip_product(loops, program, b, region_block)?
        };
        total = total.saturating_add(acc.saturating_mul(trips));
        let prefix_len = end.saturating_sub(start);
        blocks.push(BlockEntry {
            block: b,
            start,
            prefix_len,
            cycles: acc,
            trips,
        });
        if !hit_boundary {
            for s in blk.term.successors() {
                if !visited[s.index()] {
                    work.push((s, 0));
                }
            }
        }
    }
    Ok(RegionDetail {
        wcet: total,
        blocks,
    })
}

/// Splits every region whose WCET exceeds `budget_cycles` by inserting
/// additional boundaries (inside loops when a loop's trip product is what
/// blows the budget), then renumbers all boundaries. Returns the number of
/// boundaries inserted.
///
/// # Errors
///
/// [`CompileError::UnsplittableRegion`] when no insertion can shrink the
/// worst region (a single instruction exceeds the budget), and
/// [`CompileError::MissingLoopBound`] from the analysis.
pub fn split_regions(
    program: &mut Program,
    cost: &CostModel,
    budget_cycles: u64,
) -> Result<usize, CompileError> {
    let mut inserted = 0usize;
    let max_rounds = 2 * program.inst_count() + 8;
    #[allow(clippy::explicit_counter_loop)] // `inserted` counts insertions, not iterations
    for _ in 0..max_rounds {
        let dom = Dominators::compute(program);
        let loops = natural_loops(program, &dom);
        let table = RegionTable::from_program(program);
        let mut worst: Option<(RegionId, RegionDetail)> = None;
        for info in table.iter() {
            let d = analyze_region(program, cost, &loops, info.block, info.boundary_index)?;
            if worst.as_ref().map(|(_, w)| d.wcet > w.wcet).unwrap_or(true) {
                worst = Some((info.id, d));
            }
        }
        let Some((worst_id, detail)) = worst else {
            return Ok(inserted);
        };
        if detail.wcet <= budget_cycles {
            renumber_boundaries(program);
            return Ok(inserted);
        }
        let info = *table.get(worst_id).expect("region exists");
        let pos = find_insertion(program, cost, &loops, info.block, &detail, budget_cycles)?;
        let (b, i) = pos;
        program.block_mut(b).insts.insert(
            i,
            Inst::Boundary {
                region: RegionId::new(u32::MAX as usize),
            },
        );
        renumber_boundaries(program);
        inserted += 1;
    }
    Err(CompileError::SplittingDiverged)
}

/// Chooses where to put a new boundary to shrink the region described by
/// `detail`.
fn find_insertion(
    program: &Program,
    cost: &CostModel,
    loops: &[NaturalLoop],
    region_block: BlockId,
    detail: &RegionDetail,
    budget_cycles: u64,
) -> Result<(BlockId, usize), CompileError> {
    // Rank blocks by weighted contribution, heaviest first.
    let mut ranked: Vec<&BlockEntry> = detail.blocks.iter().collect();
    ranked.sort_by_key(|e| std::cmp::Reverse(e.cycles.saturating_mul(e.trips)));

    for e in ranked {
        if e.trips > 1 {
            // Cut the *outermost* counted loop whose single iteration still
            // fits the budget: a boundary at its header turns its
            // iterations into separate regions of exactly that size. When
            // even the innermost loop's iteration is too big, cut the
            // innermost anyway and let later rounds split its body.
            let mut candidates: Vec<&NaturalLoop> = loops
                .iter()
                .filter(|l| l.blocks.contains(&e.block) && !l.blocks.contains(&region_block))
                .collect();
            candidates.sort_by_key(|l| std::cmp::Reverse(l.blocks.len())); // outermost first
            let fitting = candidates
                .iter()
                .find(|l| loop_iteration_cost(program, cost, loops, l) <= budget_cycles);
            let chosen = fitting.copied().or_else(|| candidates.last().copied());
            if let Some(l) = chosen {
                let header = program.block(l.header);
                if !matches!(header.insts.first(), Some(Inst::Boundary { .. })) {
                    return Ok((l.header, 0));
                }
                // Header already cut: fall through to intra-block split of
                // the innermost body.
            }
        }
        // Split this block's counted prefix in half.
        if e.prefix_len >= 2 {
            return Ok((e.block, e.start + e.prefix_len / 2));
        }
    }
    Err(CompileError::UnsplittableRegion {
        region_head: region_block,
    })
}

/// Worst-case cycles of a single iteration of loop `l`: every block of the
/// loop, each multiplied by the trip products of the loops strictly inside
/// `l` that contain it.
fn loop_iteration_cost(
    program: &Program,
    cost: &CostModel,
    loops: &[NaturalLoop],
    l: &NaturalLoop,
) -> u64 {
    let inner: Vec<&NaturalLoop> = loops
        .iter()
        .filter(|m| m.header != l.header && m.blocks.iter().all(|b| l.blocks.contains(b)))
        .collect();
    let mut total = 0u64;
    for &b in &l.blocks {
        let blk = program.block(b);
        let mut c: u64 = blk.insts.iter().map(|i| cost.inst_cycles(i)).sum();
        c += cost.term_cycles(&blk.term);
        let mut trips = 1u64;
        for m in &inner {
            if m.blocks.contains(&b) {
                let bound = program.block(m.header).loop_bound.unwrap_or(1).max(1) as u64;
                trips = trips.saturating_mul(bound);
            }
        }
        total = total.saturating_add(c.saturating_mul(trips));
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regions::{form_regions, form_regions_policy};
    use gecko_isa::{BinOp, Cond, ProgramBuilder, Reg};

    fn straight_line(n: usize) -> Program {
        let mut b = ProgramBuilder::new("line");
        for _ in 0..n {
            b.bin(BinOp::Add, Reg::R1, Reg::R1, 1);
        }
        b.halt();
        b.finish().unwrap()
    }

    fn counted_loop(iters: u32, body_adds: usize) -> Program {
        let mut b = ProgramBuilder::new("loop");
        let i = Reg::R1;
        b.mov(i, 0);
        let head = b.new_label("head");
        let body = b.new_label("body");
        let exit = b.new_label("exit");
        b.bind(head);
        b.set_loop_bound(iters);
        b.branch(Cond::Lt, i, iters as i32, body, exit);
        b.bind(body);
        for _ in 0..body_adds {
            b.bin(BinOp::Add, Reg::R2, Reg::R2, 1);
        }
        b.bin(BinOp::Add, i, i, 1);
        b.jump(head);
        b.bind(exit);
        b.halt();
        b.finish().unwrap()
    }

    #[test]
    fn wcet_of_straight_line() {
        let mut p = straight_line(10);
        form_regions(&mut p);
        let cost = CostModel::default();
        let w = region_wcets(&p, &cost).unwrap();
        assert_eq!(w.len(), 1);
        let wcet = w[&RegionId::new(0)];
        // 10 ALU + halt + boundary commit.
        assert_eq!(wcet, 10 * cost.alu + 1 + cost.boundary);
    }

    #[test]
    fn loop_bound_multiplies_cost_without_header_cut() {
        let mut p = counted_loop(100, 5);
        // GECKO-style: no loop-header boundary.
        form_regions_policy(&mut p, false);
        let cost = CostModel::default();
        let w = region_wcets(&p, &cost).unwrap();
        assert_eq!(w.len(), 1, "single coarse region");
        let wcet = w[&RegionId::new(0)];
        // At least 100 iterations of (5 adds + increment + branches).
        assert!(wcet >= 100 * 6 * cost.alu, "wcet {wcet}");
    }

    #[test]
    fn header_cut_loops_count_once() {
        let mut p = counted_loop(100, 5);
        form_regions(&mut p); // Ratchet-style header cut
        let cost = CostModel::default();
        let w = region_wcets(&p, &cost).unwrap();
        for wc in w.values() {
            assert!(*wc < 200, "per-iteration region wcet bounded: {wc}");
        }
    }

    #[test]
    fn missing_loop_bound_is_reported() {
        let mut b = ProgramBuilder::new("nobound");
        let i = Reg::R1;
        b.mov(i, 0);
        let head = b.new_label("head");
        let body = b.new_label("body");
        let exit = b.new_label("exit");
        b.bind(head);
        // no set_loop_bound!
        b.branch(Cond::Lt, i, 4, body, exit);
        b.bind(body);
        b.bin(BinOp::Add, i, i, 1);
        b.jump(head);
        b.bind(exit);
        b.halt();
        let mut p = b.finish().unwrap();
        form_regions_policy(&mut p, false);
        let cost = CostModel::default();
        assert!(matches!(
            region_wcets(&p, &cost),
            Err(CompileError::MissingLoopBound { .. })
        ));
    }

    #[test]
    fn splitting_cuts_oversized_loops_at_their_header() {
        let mut p = counted_loop(1000, 20);
        form_regions_policy(&mut p, false);
        let cost = CostModel::default();
        let budget = 2_000; // far below 1000 iterations of ~25 cycles
        let inserted = split_regions(&mut p, &cost, budget).unwrap();
        assert!(inserted >= 1);
        for (_, w) in region_wcets(&p, &cost).unwrap() {
            assert!(w <= budget, "region over budget after split: {w}");
        }
    }

    #[test]
    fn splitting_brings_straight_line_under_budget() {
        let mut p = straight_line(200);
        form_regions_policy(&mut p, false);
        let cost = CostModel::default();
        let budget = 50 * cost.alu;
        let inserted = split_regions(&mut p, &cost, budget).unwrap();
        assert!(inserted >= 3, "inserted {inserted}");
        for (_, w) in region_wcets(&p, &cost).unwrap() {
            assert!(w <= budget, "region over budget after split: {w}");
        }
        let table = RegionTable::from_program(&p);
        assert_eq!(table.len(), inserted + 1);
    }

    #[test]
    fn splitting_noop_when_under_budget() {
        let mut p = straight_line(5);
        form_regions(&mut p);
        let cost = CostModel::default();
        let inserted = split_regions(&mut p, &cost, 1_000_000).unwrap();
        assert_eq!(inserted, 0);
    }

    #[test]
    fn unsplittable_single_instruction() {
        let mut b = ProgramBuilder::new("io");
        b.sense(Reg::R1);
        b.halt();
        let mut p = b.finish().unwrap();
        form_regions(&mut p);
        let cost = CostModel::default();
        // Budget below a single I/O instruction.
        let err = split_regions(&mut p, &cost, cost.io / 2).unwrap_err();
        assert!(matches!(
            err,
            CompileError::UnsplittableRegion { .. } | CompileError::SplittingDiverged
        ));
    }

    #[test]
    fn nested_loops_multiply_bounds() {
        let mut b = ProgramBuilder::new("nest");
        let (i, j) = (Reg::R1, Reg::R2);
        b.mov(i, 0);
        let oh = b.new_label("oh");
        let ob = b.new_label("ob");
        let ih = b.new_label("ih");
        let ib = b.new_label("ib");
        let onext = b.new_label("onext");
        let exit = b.new_label("exit");
        b.bind(oh);
        b.set_loop_bound(10);
        b.branch(Cond::Lt, i, 10, ob, exit);
        b.bind(ob);
        b.mov(j, 0);
        b.jump(ih);
        b.bind(ih);
        b.set_loop_bound(20);
        b.branch(Cond::Lt, j, 20, ib, onext);
        b.bind(ib);
        b.bin(BinOp::Add, j, j, 1);
        b.jump(ih);
        b.bind(onext);
        b.bin(BinOp::Add, i, i, 1);
        b.jump(oh);
        b.bind(exit);
        b.halt();
        let mut p = b.finish().unwrap();
        form_regions_policy(&mut p, false);
        let cost = CostModel::default();
        let w = region_wcets(&p, &cost).unwrap();
        let wcet = w[&RegionId::new(0)];
        // The inner body runs ≥ 200 times.
        assert!(wcet >= 200 * 2 * cost.alu, "wcet {wcet}");
    }
}
