//! # gecko-compiler
//!
//! The paper's primary contribution: the GECKO compiler that turns an
//! ordinary program into a sequence of **idempotent regions** with
//! **lightweight, pruned checkpoint stores**, enabling rollback recovery
//! that needs no voltage monitor — and therefore closes the EMI attack
//! surface (Sections V-B and VI).
//!
//! ## Pass pipeline
//!
//! 1. **Canonicalize** — split critical edges (needed by the 2-coloring
//!    conflict fix-up).
//! 2. **Idempotent region formation** ([`regions`]) — place region
//!    boundaries so every memory anti-dependence (load → may-aliasing
//!    store) is cut, with mandatory boundaries at the program entry and
//!    around I/O operations; WARAW-protected loads are exempt. (The
//!    Ratchet baseline additionally cuts every loop header; GECKO leaves
//!    loops whole and lets the WCET pass bound region length.)
//! 3. **Boundary hoisting** ([`regions::hoist_war_boundaries`]) — WAR cuts
//!    whose anti-dependences span enclosing-loop iterations move to loop
//!    preheaders, validated by a check-only verifier.
//! 4. **WCET analysis and splitting** ([`wcet`]) — per-region worst-case
//!    cycles from the applications' annotated loop bounds; any region
//!    exceeding the minimum power-on budget is split (at the outermost
//!    loop whose iteration fits, or intra-block).
//! 5. **Checkpoint insertion** ([`checkpoint`]) — every register live into
//!    a region is checkpointed in the cluster just before the region's
//!    boundary commit.
//! 6. **Checkpoint pruning** ([`pruning`]) — checkpoints whose value a
//!    *recovery block* (a bounded backward slice over values available at
//!    recovery time) can reconstruct are removed; the slices go into the
//!    recovery lookup table.
//! 7. **2-coloring** ([`coloring`]) — surviving checkpoints get
//!    double-buffer slots such that consecutive checkpoints of a register
//!    alternate along every path; join-point conflicts are repaired with
//!    fix-up checkpoints (Section VI-D).
//!
//! Baselines built from the same machinery: **Ratchet** (same regions,
//! centralized full-register-file checkpointing handled by the runtime) and
//! **GECKO w/o pruning** (the ablation of Figure 11).
//!
//! ```
//! use gecko_compiler::{compile, CompileOptions};
//! use gecko_isa::{ProgramBuilder, Reg, BinOp, Cond};
//!
//! let mut b = ProgramBuilder::new("acc");
//! let d = b.segment("d", 16, true);
//! let (i, acc, base) = (Reg::R1, Reg::R2, Reg::R3);
//! b.mov(i, 0);
//! b.mov(acc, 0);
//! b.mov(base, d as i32);
//! let head = b.new_label("head");
//! let body = b.new_label("body");
//! let exit = b.new_label("exit");
//! b.bind(head);
//! b.set_loop_bound(16);
//! b.branch(Cond::Lt, i, 16, body, exit);
//! b.bind(body);
//! b.load(Reg::R4, base, 0);
//! b.bin(BinOp::Add, acc, acc, Reg::R4);
//! b.store(acc, base, 0);          // anti-dependence with the load
//! b.bin(BinOp::Add, i, i, 1);
//! b.jump(head);
//! b.bind(exit);
//! b.halt();
//! let program = b.finish().unwrap();
//!
//! let out = compile(&program, &CompileOptions::default()).unwrap();
//! assert!(out.regions.len() >= 2, "boundaries were placed");
//! assert!(out.stats.checkpoints_pruned > 0 || out.stats.checkpoints_after > 0);
//! ```

pub mod analysis;
pub mod checkpoint;
pub mod coloring;
pub mod fingerprint;
pub mod pipeline;
pub mod pruning;
pub mod ratchet;
pub mod recovery;
pub mod regions;
pub mod wcet;

pub use fingerprint::{fingerprint_program, ProgramFingerprints};
pub use pipeline::{
    compile, compile_unpruned, CompileError, CompileOptions, CompileStats, InstrumentedProgram,
};
pub use ratchet::compile_ratchet;
pub use recovery::{RecoveryTable, RegionInfo, RegionTable, RestoreAction};
