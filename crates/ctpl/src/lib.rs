//! # gecko-ctpl
//!
//! A model of TI's *Compute Through Power Loss* library — the just-in-time
//! (JIT) checkpoint protocol that commodity intermittent systems (the
//! paper's "NVP") run. When the voltage monitor reports the supply falling
//! below `V_backup`, the protocol saves all volatile state (registers + PC)
//! into a designated NVM area and shuts down; when the supply recovers to
//! `V_on` it restores that state and resumes — roll-forward recovery.
//!
//! The checkpoint is written **word by word** through [`CheckpointWriter`]
//! so the surrounding simulation can meter energy per word and abort the
//! protocol mid-flight — exactly the *checkpoint failure* the EMI attack
//! induces when a spoofed wake-up leaves the capacitor inside the
//! `V_fail` window (Section IV-B2).
//!
//! The area also holds the **ACK word** GECKO's reactive detector relies on
//! (Section VI-A): the checkpoint procedure persists a toggled ACK as its
//! final write; the boot protocol records what it saw. If the ACK did not
//! toggle across a power failure, the last checkpoint did not complete —
//! evidence of an attack.
//!
//! ```
//! use gecko_ctpl::JitArea;
//! use gecko_mcu::{Nvm, Pc};
//! use gecko_isa::BlockId;
//!
//! let mut nvm = Nvm::new(1 << 12);
//! let area = JitArea::new(0xF00);
//! let regs = [7; 16];
//! let pc = Pc { block: BlockId::new(3), index: 2 };
//!
//! let mut w = area.begin_checkpoint(regs, pc, &mut nvm);
//! while !w.is_done() {
//!     w.write_next(&mut nvm); // one NVM word per call; abort = failure
//! }
//! let (r2, pc2) = area.try_restore(&nvm).expect("valid checkpoint");
//! assert_eq!(r2, regs);
//! assert_eq!(pc2, pc);
//! ```

use gecko_isa::{CostModel, EnergyModel, Reg, Word};
use gecko_mcu::{Nvm, Pc};

/// Word-offsets of the JIT checkpoint area layout.
mod layout {
    /// Completion flag: 1 iff the stored checkpoint is whole.
    pub const VALID: u32 = 0;
    /// The ACK word, toggled as the final payload write of every checkpoint.
    pub const ACK: u32 = 1;
    /// Start of the 16 register words.
    pub const REGS: u32 = 2;
    /// PC block id.
    pub const PC_BLOCK: u32 = 18;
    /// PC instruction index.
    pub const PC_INDEX: u32 = 19;
    /// The ACK value observed by the boot protocol at the last reboot.
    pub const BOOT_ACK: u32 = 20;
    /// Total words of the area.
    pub const SIZE: u32 = 21;
}

/// A JIT (CTPL-style) checkpoint area at a fixed NVM base address.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JitArea {
    base: u32,
}

impl JitArea {
    /// Creates an area rooted at `base`. The area occupies
    /// [`JitArea::SIZE_WORDS`] words.
    pub fn new(base: u32) -> JitArea {
        JitArea { base }
    }

    /// Words of NVM the area occupies.
    pub const SIZE_WORDS: u32 = layout::SIZE;

    /// The base address.
    pub fn base(&self) -> u32 {
        self.base
    }

    /// Starts a checkpoint of `regs`/`pc`. The first action (performed
    /// immediately, costing one NVM write) invalidates the stored
    /// checkpoint; the payload then flows through
    /// [`CheckpointWriter::write_next`] one word at a time.
    pub fn begin_checkpoint(
        &self,
        regs: [Word; Reg::COUNT],
        pc: Pc,
        nvm: &mut Nvm,
    ) -> CheckpointWriter {
        nvm.store(self.base + layout::VALID, 0);
        let (pc_block, pc_index) = pc.encode();
        let toggled_ack = 1 - self.boot_ack(nvm).clamp(0, 1);
        CheckpointWriter {
            area: *self,
            regs,
            pc_block,
            pc_index,
            toggled_ack,
            next: 0,
        }
    }

    /// Restores the stored checkpoint if it is whole.
    pub fn try_restore(&self, nvm: &Nvm) -> Option<([Word; Reg::COUNT], Pc)> {
        if nvm.read(self.base + layout::VALID) != 1 {
            return None;
        }
        let mut regs = [0; Reg::COUNT];
        for (i, r) in regs.iter_mut().enumerate() {
            *r = nvm.read(self.base + layout::REGS + i as u32);
        }
        let pc = Pc::decode(
            nvm.read(self.base + layout::PC_BLOCK),
            nvm.read(self.base + layout::PC_INDEX),
        );
        Some((regs, pc))
    }

    /// The ACK word as last persisted by a checkpoint.
    pub fn ack(&self, nvm: &Nvm) -> Word {
        nvm.read(self.base + layout::ACK)
    }

    /// The ACK value the boot protocol recorded at the previous reboot.
    pub fn boot_ack(&self, nvm: &Nvm) -> Word {
        nvm.read(self.base + layout::BOOT_ACK)
    }

    /// Boot-protocol step: returns `true` when the ACK **failed to toggle**
    /// across the power failure — GECKO's evidence of a corrupted / skipped
    /// checkpoint (Section VI-A) — and records the observed ACK for the
    /// next cycle.
    pub fn boot_check_and_record(&self, nvm: &mut Nvm) -> bool {
        let seen = self.ack(nvm);
        let recorded = self.boot_ack(nvm);
        nvm.store(self.base + layout::BOOT_ACK, seen);
        seen == recorded
    }

    /// Marks the stored checkpoint consumed/invalid (used when a scheme
    /// decides to cold-start instead of resuming).
    pub fn invalidate(&self, nvm: &mut Nvm) {
        nvm.store(self.base + layout::VALID, 0);
    }

    /// Cycle cost of a full restore (reads + dispatch overhead).
    pub fn restore_cycles(cost: &CostModel) -> u64 {
        (Reg::COUNT as u64 + 2) * cost.load + 50
    }

    /// Cycle cost of a complete checkpoint, for planning purposes (the
    /// actual cost is metered word-by-word by the writer).
    pub fn checkpoint_cycles(cost: &CostModel) -> u64 {
        (CheckpointWriter::TOTAL_WRITES as u64 + 1) * cost.store + 80
    }

    /// Energy for a complete checkpoint, for planning purposes.
    pub fn checkpoint_energy_nj(cost: &CostModel, energy: &EnergyModel) -> f64 {
        let cycles = Self::checkpoint_cycles(cost);
        energy.cycles_energy_nj(cycles)
            + (CheckpointWriter::TOTAL_WRITES as f64 + 1.0) * energy.nvm_write_extra_nj
    }
}

/// Word-by-word writer for a JIT checkpoint.
///
/// Write order: 16 registers, PC (2 words), ACK toggle, then the VALID
/// flag. Only after the final write does [`JitArea::try_restore`] see the
/// new checkpoint; aborting earlier leaves the area invalid — a
/// *checkpoint failure*.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointWriter {
    area: JitArea,
    regs: [Word; Reg::COUNT],
    pc_block: Word,
    pc_index: Word,
    toggled_ack: Word,
    next: u32,
}

impl CheckpointWriter {
    /// Payload writes performed by `write_next` (registers + PC + ACK +
    /// VALID).
    pub const TOTAL_WRITES: u32 = Reg::COUNT as u32 + 4;

    /// Whether every word (including the VALID flag) has been written.
    pub fn is_done(&self) -> bool {
        self.next >= Self::TOTAL_WRITES
    }

    /// Fraction of the payload already written, in `0..=1`.
    pub fn progress(&self) -> f64 {
        self.next as f64 / Self::TOTAL_WRITES as f64
    }

    /// Writes the next word; returns `true` when the checkpoint just
    /// completed. Each call is one NVM store — one unit of the energy the
    /// shutdown path must still have.
    ///
    /// # Panics
    ///
    /// Panics if called after completion.
    pub fn write_next(&mut self, nvm: &mut Nvm) -> bool {
        let base = self.area.base;
        match self.next {
            n if (n as usize) < Reg::COUNT => {
                nvm.store(base + layout::REGS + n, self.regs[n as usize]);
            }
            n if n == Reg::COUNT as u32 => nvm.store(base + layout::PC_BLOCK, self.pc_block),
            n if n == Reg::COUNT as u32 + 1 => nvm.store(base + layout::PC_INDEX, self.pc_index),
            n if n == Reg::COUNT as u32 + 2 => nvm.store(base + layout::ACK, self.toggled_ack),
            n if n == Reg::COUNT as u32 + 3 => nvm.store(base + layout::VALID, 1),
            _ => panic!("checkpoint writer already done"),
        }
        self.next += 1;
        self.is_done()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gecko_isa::BlockId;

    fn sample_state() -> ([Word; 16], Pc) {
        let mut regs = [0; 16];
        for (i, r) in regs.iter_mut().enumerate() {
            *r = (i as Word) * 11 - 5;
        }
        (
            regs,
            Pc {
                block: BlockId::new(4),
                index: 9,
            },
        )
    }

    fn complete(area: JitArea, nvm: &mut Nvm, regs: [Word; 16], pc: Pc) {
        let mut w = area.begin_checkpoint(regs, pc, nvm);
        while !w.is_done() {
            w.write_next(nvm);
        }
    }

    #[test]
    fn full_checkpoint_roundtrips() {
        let mut nvm = Nvm::new(1 << 12);
        let area = JitArea::new(0x800);
        let (regs, pc) = sample_state();
        complete(area, &mut nvm, regs, pc);
        let (r2, pc2) = area.try_restore(&nvm).unwrap();
        assert_eq!(r2, regs);
        assert_eq!(pc2, pc);
    }

    #[test]
    fn aborted_checkpoint_is_invalid() {
        let mut nvm = Nvm::new(1 << 12);
        let area = JitArea::new(0x800);
        let (regs, pc) = sample_state();
        complete(area, &mut nvm, regs, pc); // a previous good checkpoint
        assert!(area.try_restore(&nvm).is_some());

        let (regs2, _) = sample_state();
        let mut w = area.begin_checkpoint(regs2, pc, &mut nvm);
        for _ in 0..5 {
            w.write_next(&mut nvm); // interrupted: energy ran out
        }
        assert!(
            area.try_restore(&nvm).is_none(),
            "partial checkpoint must not restore — and the old one was \
             invalidated at begin (single-buffered CTPL)"
        );
    }

    #[test]
    fn abort_at_every_prefix_never_restores_garbage() {
        let (regs, pc) = sample_state();
        for cut in 0..CheckpointWriter::TOTAL_WRITES {
            let mut nvm = Nvm::new(1 << 12);
            let area = JitArea::new(0x800);
            let mut w = area.begin_checkpoint(regs, pc, &mut nvm);
            for _ in 0..cut {
                w.write_next(&mut nvm);
            }
            assert!(
                area.try_restore(&nvm).is_none(),
                "cut at {cut}: must be invalid"
            );
        }
    }

    #[test]
    fn ack_toggles_on_completion_only() {
        let mut nvm = Nvm::new(1 << 12);
        let area = JitArea::new(0x800);
        let (regs, pc) = sample_state();
        let ack0 = area.ack(&nvm);
        complete(area, &mut nvm, regs, pc);
        let ack1 = area.ack(&nvm);
        assert_ne!(ack0, ack1, "completed checkpoint toggles ACK");

        // Boot records the ack; a second boot without a new completed
        // checkpoint sees it unchanged → attack evidence.
        assert!(
            !area.boot_check_and_record(&mut nvm),
            "first boot after a good checkpoint: ACK toggled, no alarm"
        );
        assert!(
            area.boot_check_and_record(&mut nvm),
            "no checkpoint since last boot: ACK unchanged → alarm"
        );
    }

    #[test]
    fn interrupted_checkpoint_leaves_ack_untoggled() {
        let mut nvm = Nvm::new(1 << 12);
        let area = JitArea::new(0x800);
        let (regs, pc) = sample_state();
        complete(area, &mut nvm, regs, pc);
        let _ = area.boot_check_and_record(&mut nvm);
        let ack_before = area.ack(&nvm);

        let mut w = area.begin_checkpoint(regs, pc, &mut nvm);
        for _ in 0..(Reg::COUNT + 1) {
            w.write_next(&mut nvm); // dies before the ACK word
        }
        assert_eq!(area.ack(&nvm), ack_before);
        assert!(
            area.boot_check_and_record(&mut nvm),
            "ACK unchanged across the failure → alarm"
        );
    }

    #[test]
    fn invalidate_discards_checkpoint() {
        let mut nvm = Nvm::new(1 << 12);
        let area = JitArea::new(0x800);
        let (regs, pc) = sample_state();
        complete(area, &mut nvm, regs, pc);
        area.invalidate(&mut nvm);
        assert!(area.try_restore(&nvm).is_none());
    }

    #[test]
    fn progress_is_monotone() {
        let mut nvm = Nvm::new(1 << 12);
        let area = JitArea::new(0x800);
        let (regs, pc) = sample_state();
        let mut w = area.begin_checkpoint(regs, pc, &mut nvm);
        let mut last = -1.0;
        while !w.is_done() {
            let p = w.progress();
            assert!(p > last);
            last = p;
            w.write_next(&mut nvm);
        }
        assert!((w.progress() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn planning_costs_positive() {
        let cost = CostModel::default();
        let energy = EnergyModel::default();
        assert!(JitArea::checkpoint_cycles(&cost) > 0);
        assert!(JitArea::restore_cycles(&cost) > 0);
        assert!(JitArea::checkpoint_energy_nj(&cost, &energy) > 0.0);
    }
}
