//! # gecko-serve — the campaign-service daemon
//!
//! Serves GECKO sweeps and checks over the network: a long-running
//! daemon with a minimal hand-rolled HTTP/1.1 + JSON API on `std::net`
//! (the workspace is deliberately dependency-free). Clients submit
//! [`gecko_fleet::CampaignSpec`] / [`gecko_check::CheckSpec`] documents,
//! poll job status, stream telemetry events, and fetch merged results —
//! and a served run is *bit-identical* to the same spec run in-process,
//! because both paths execute literally the same campaign code.
//!
//! Layers:
//!
//! * [`config`] — bind address, worker counts, journal root, job limits;
//!   defaults < JSON config file < CLI flags.
//! * [`http`] — request parsing, response writing, and a tiny blocking
//!   client for tests and smoke drivers.
//! * [`wire`] — the checker-spec JSON codec, report documents, submit
//!   envelope, and telemetry event framing (campaign specs decode via
//!   [`gecko_fleet::spec_io`]).
//! * [`queue`] — the multi-tenant job queue on the supervision stack:
//!   per-job directories, journaled runs, panic quarantine, kill-switch
//!   cancellation, and restart recovery (interrupted jobs resume
//!   bit-exactly from their journal).
//! * [`server`] — routing and the accept loop, with graceful shutdown
//!   that drains running jobs to a clean checkpoint.
//!
//! See `DESIGN.md` §14 for the wire protocol, the job state machine, and
//! resume semantics.

#![deny(missing_docs)]

pub mod config;
pub mod http;
pub mod queue;
pub mod server;
pub mod wire;

pub use config::ServeConfig;
pub use http::{http_call, ClientResponse};
pub use queue::{Job, JobKind, JobSink, JobState, Queue, SubmitError};
pub use server::Server;
pub use wire::{
    check_report_deterministic_json, check_report_to_json, check_spec_from_json,
    check_spec_to_json, parse_submission, Submission,
};
