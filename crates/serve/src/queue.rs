//! The multi-tenant job queue: submissions become journaled jobs, a small
//! pool of queue workers drains them through the PR-4 supervision stack,
//! and every job's state survives a daemon restart.
//!
//! On-disk layout, one directory per job under the configured journal
//! root:
//!
//! ```text
//! job-<id>/
//!   job.json         submission envelope (kind, workers, halt_after, batch, spec)
//!   journal/         segmented fleet run journal — the resume checkpoint
//!     seg-000000.jsonl ...
//!   telemetry/       segmented event log, append-only across sessions
//!     seg-000000.jsonl ...
//!   result.json      full report document (written only when Done)
//!   result.det.json  deterministic report document (written only when Done)
//!   state.json       terminal non-Done marker (Cancelled / Failed)
//! ```
//!
//! Journal and telemetry are [`gecko_store::SegmentedLog`]s: sealed
//! segments are fsynced, a torn active tail is repaired (and counted) on
//! open, and a legacy flat `journal.jsonl` from an older daemon still
//! resumes. A background pruner GCs finished `job-<id>/` directories
//! under the configured retention policy (`retain_jobs` /
//! `retain_bytes` / `retain_age_secs`), a bounded number of deletions
//! per tick, with its [`gecko_store::PruneCheckpoint`]s persisted in
//! `prune.json` under the journal root.
//!
//! The restart scan derives state from those files alone: `result.json`
//! means Done, `state.json` means Cancelled/Failed, anything else means
//! the job was interrupted (daemon killed, graceful shutdown, or
//! `halt_after`) and goes back on the queue — [`Campaign::resume`] skips
//! the journaled runs and the merged report is bit-exact against an
//! uninterrupted run.

use std::collections::VecDeque;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use gecko_check::{classify_memo_lines, CheckCampaign, MemoStore};
use gecko_fleet::json::Json;
use gecko_fleet::spec_io;
use gecko_fleet::supervisor::lock_unpoisoned;
use gecko_fleet::telemetry::{Event, TelemetrySink};
use gecko_fleet::{Campaign, Journal};
use gecko_sim::report::Value;
use gecko_store::{
    LogCompactor, LogConfig, PruneInput, PruneOutput, Pruner, Segment, SegmentedLog, StoreError,
    TickReport,
};

use crate::config::ServeConfig;
use crate::wire;

// ---------------------------------------------------------------------------
// Job sink: bounded event ring + append-only file, long-poll wakeups
// ---------------------------------------------------------------------------

/// Per-job telemetry sink: keeps the last `cap` events in a seq-numbered
/// ring for the `/events` long-poll endpoint and appends every event to
/// the job's segmented `telemetry/` log.
///
/// `dropped_records()` is pinned to 0 on purpose: ring *eviction* is not
/// a drop (the log retains everything), and reporting a nonzero count
/// would append a `SinkDropped` failure to the report — which would break
/// the served-vs-in-process digest equality this daemon is built around.
/// Log-write failures are surfaced separately through
/// [`JobSink::file_drops`] and the job status document.
pub struct JobSink {
    cap: usize,
    state: Mutex<SinkState>,
    cond: Condvar,
    log: Option<Arc<SegmentedLog>>,
    // Events emitted while the log itself failed to open; write failures
    // on an open log are counted by the log.
    open_drops: AtomicU64,
}

struct SinkState {
    events: VecDeque<(u64, String)>,
    next_seq: u64,
    evicted: u64,
    done_items: u64,
    total_items: Option<u64>,
    resumed: u64,
    closed: bool,
    // `journal_line_undecodable` events, pinned for the job status
    // document (the ring may evict them long before anyone polls): the
    // first few encoded events plus a total count.
    diagnostics: Vec<String>,
    diagnostics_total: u64,
}

/// How many undecodable-journal-line events the status document pins.
const DIAGNOSTIC_PIN_CAP: usize = 32;

/// One `/events` long-poll answer.
#[derive(Debug, Clone)]
pub struct EventBatch {
    /// Encoded event objects, oldest first, each carrying its `seq`.
    pub events: Vec<String>,
    /// The `from` to pass next time.
    pub next: u64,
    /// Events evicted from the ring since the job started (a client that
    /// sees `from < next - events.len() - evicted_gap` lost history; the
    /// full stream is always in the `telemetry/` log).
    pub evicted: u64,
    /// No more events will ever arrive (job reached a stopped state).
    pub closed: bool,
}

impl JobSink {
    /// Creates a sink with a ring of `cap` events, appending to the
    /// segmented log in `dir`.
    pub fn new(cap: usize, dir: &Path) -> JobSink {
        let log = SegmentedLog::open(dir, LogConfig::default())
            .ok()
            .map(Arc::new);
        JobSink {
            cap: cap.max(16),
            state: Mutex::new(SinkState {
                events: VecDeque::new(),
                next_seq: 0,
                evicted: 0,
                done_items: 0,
                total_items: None,
                resumed: 0,
                closed: false,
                diagnostics: Vec::new(),
                diagnostics_total: 0,
            }),
            cond: Condvar::new(),
            log,
            open_drops: AtomicU64::new(0),
        }
    }

    /// The segmented telemetry log (absent when its directory failed to
    /// open).
    pub fn log(&self) -> Option<&Arc<SegmentedLog>> {
        self.log.as_ref()
    }

    /// Progress so far: `(done, total, resumed)`. `total` is known once
    /// the campaign emits its `*_started` event.
    pub fn progress(&self) -> (u64, Option<u64>, u64) {
        let s = lock_unpoisoned(&self.state);
        (s.done_items, s.total_items, s.resumed)
    }

    /// Events that failed to reach the on-disk telemetry log: append
    /// failures counted by the log, plus everything emitted while the
    /// log's directory could not be opened at all.
    pub fn file_drops(&self) -> u64 {
        let log_drops = self.log.as_ref().map_or(0, |l| l.dropped());
        self.open_drops.load(Ordering::Relaxed) + log_drops
    }

    /// Events evicted from the ring (still on disk, gone from the poll
    /// window).
    pub fn evicted(&self) -> u64 {
        lock_unpoisoned(&self.state).evicted
    }

    /// Marks the stream finished and wakes every long-poller. No extra
    /// fsync here: the campaign already synced the log at its pool-drain
    /// checkpoint (`flush`), and anything emitted after that is
    /// observability tail the torn-tail repair accounts for.
    pub fn close(&self) {
        let mut s = lock_unpoisoned(&self.state);
        s.closed = true;
        self.cond.notify_all();
    }

    /// Returns events with `seq >= from`, blocking up to `wait` when none
    /// are ready yet (long poll). Returns immediately once the stream is
    /// closed.
    pub fn wait_events(&self, from: u64, wait: Duration) -> EventBatch {
        let deadline = Instant::now() + wait;
        let mut s = lock_unpoisoned(&self.state);
        loop {
            let has_new = s.events.back().is_some_and(|(seq, _)| *seq >= from);
            if has_new || s.closed {
                let events: Vec<String> = s
                    .events
                    .iter()
                    .filter(|(seq, _)| *seq >= from)
                    .map(|(_, line)| line.clone())
                    .collect();
                return EventBatch {
                    events,
                    next: s.next_seq,
                    evicted: s.evicted,
                    closed: s.closed,
                };
            }
            let now = Instant::now();
            if now >= deadline {
                return EventBatch {
                    events: Vec::new(),
                    next: s.next_seq,
                    evicted: s.evicted,
                    closed: s.closed,
                };
            }
            let (guard, _) = self
                .cond
                .wait_timeout(s, deadline - now)
                .unwrap_or_else(|p| {
                    let (g, t) = p.into_inner();
                    (g, t)
                });
            s = guard;
        }
    }
}

impl TelemetrySink for JobSink {
    fn emit(&self, event: Event) {
        let mut s = lock_unpoisoned(&self.state);
        // Progress accounting straight off the event stream — the sink is
        // the one observer guaranteed to see every item exactly once.
        match event.kind {
            "campaign_started" | "check_started" => {
                for (name, value) in &event.fields {
                    if let Value::U64(n) = value {
                        match *name {
                            "items" => s.total_items = Some(*n),
                            "resumed" => {
                                s.resumed = *n;
                                s.done_items = *n;
                            }
                            _ => {}
                        }
                    }
                }
            }
            "item_finished" | "check_item_finished" => s.done_items += 1,
            _ => {}
        }
        let seq = s.next_seq;
        s.next_seq += 1;
        let line = wire::event_value(seq, &event).encode();
        if event.kind == "journal_line_undecodable" {
            s.diagnostics_total += 1;
            if s.diagnostics.len() < DIAGNOSTIC_PIN_CAP {
                s.diagnostics.push(line.clone());
            }
        }
        // Appended under the state lock so the persisted stream stays in
        // seq order across concurrent emitters (the log's own lock is a
        // leaf; no inversion).
        match &self.log {
            Some(log) => log.append(&line),
            None => {
                self.open_drops.fetch_add(1, Ordering::Relaxed);
            }
        }
        s.events.push_back((seq, line));
        if s.events.len() > self.cap {
            s.events.pop_front();
            s.evicted += 1;
        }
        self.cond.notify_all();
    }

    fn flush(&self) {
        // A failed sync is not a lost line; the log keeps its own count.
        if let Some(log) = &self.log {
            let _ = log.sync();
        }
    }

    // Deliberately the default 0 — see the type docs.
}

// ---------------------------------------------------------------------------
// Jobs
// ---------------------------------------------------------------------------

/// What a job runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobKind {
    /// A metric sweep ([`gecko_fleet::Campaign`]).
    Sweep,
    /// A crash-consistency check ([`gecko_check::CheckCampaign`]).
    Check,
}

impl JobKind {
    /// Wire name.
    pub fn name(self) -> &'static str {
        match self {
            JobKind::Sweep => "sweep",
            JobKind::Check => "check",
        }
    }

    /// Parses a wire name.
    pub fn from_name(name: &str) -> Option<JobKind> {
        match name {
            "sweep" => Some(JobKind::Sweep),
            "check" => Some(JobKind::Check),
            _ => None,
        }
    }
}

/// Job lifecycle. `Interrupted` is the only stopped state that is *not*
/// terminal on disk: an interrupted job re-queues on the next daemon boot
/// and resumes from its journal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Waiting for a queue worker.
    Queued,
    /// Executing.
    Running,
    /// Finished completely; `result.json` + `result.det.json` exist.
    Done,
    /// Spec/compile/journal error; `state.json` has the message.
    Failed,
    /// Cancelled by the client; `state.json` marks it.
    Cancelled,
    /// Stopped at a clean checkpoint (shutdown drain or `halt_after`);
    /// resumes after restart.
    Interrupted,
}

impl JobState {
    /// Wire name.
    pub fn name(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
            JobState::Cancelled => "cancelled",
            JobState::Interrupted => "interrupted",
        }
    }

    /// Whether no further execution will happen in this daemon session.
    pub fn is_stopped(self) -> bool {
        !matches!(self, JobState::Queued | JobState::Running)
    }
}

struct JobProgress {
    state: JobState,
    error: Option<String>,
    digest: Option<u64>,
}

/// One submitted job: identity, validated spec document, run options,
/// live state, and its telemetry sink.
pub struct Job {
    /// Job id (also names the on-disk directory, `job-<id>`).
    pub id: u64,
    /// Sweep or check.
    pub kind: JobKind,
    /// The spec's own name (for listings).
    pub name: String,
    /// The job directory.
    pub dir: PathBuf,
    /// The validated spec document, as submitted.
    pub spec: Json,
    /// Simulation workers for this job.
    pub workers: usize,
    /// Deterministic interruption point, if requested.
    pub halt_after: Option<u64>,
    /// Lock-step devices per worker claim (1 = per-item execution).
    /// Sweeps only; checks always run per item. Results and digests are
    /// batch-size-invariant (DESIGN.md §16), so a resumed job may finish
    /// at a different batch size than it started with.
    pub batch: usize,
    /// Grid size: expanded items for sweeps, (app × scheme) pairs for
    /// checks.
    pub grid: u64,
    /// Check jobs: run against the daemon's durable memo store for this
    /// spec (DESIGN.md §18). Durable — a resumed job keeps its mode.
    pub incremental: bool,
    /// The telemetry sink (ring + file).
    pub sink: Arc<JobSink>,
    stop: Arc<AtomicBool>,
    cancel_requested: AtomicBool,
    progress: Mutex<JobProgress>,
    progress_cond: Condvar,
}

impl std::fmt::Debug for Job {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Job #{} ({} {:?}, {})",
            self.id,
            self.kind.name(),
            self.name,
            self.state().name()
        )
    }
}

impl Job {
    fn set_state(&self, state: JobState, error: Option<String>, digest: Option<u64>) {
        let mut p = lock_unpoisoned(&self.progress);
        p.state = state;
        if error.is_some() {
            p.error = error;
        }
        if digest.is_some() {
            p.digest = digest;
        }
        self.progress_cond.notify_all();
    }

    /// Current state.
    pub fn state(&self) -> JobState {
        lock_unpoisoned(&self.progress).state
    }

    /// Blocks up to `wait` for the job to reach a stopped state; returns
    /// the state it ended up in either way.
    pub fn wait_stopped(&self, wait: Duration) -> JobState {
        let deadline = Instant::now() + wait;
        let mut p = lock_unpoisoned(&self.progress);
        loop {
            if p.state.is_stopped() {
                return p.state;
            }
            let now = Instant::now();
            if now >= deadline {
                return p.state;
            }
            let (guard, _) = self
                .progress_cond
                .wait_timeout(p, deadline - now)
                .unwrap_or_else(|e| {
                    let (g, t) = e.into_inner();
                    (g, t)
                });
            p = guard;
        }
    }

    /// The `/v1/jobs/<id>` status document.
    pub fn status_value(&self) -> Json {
        let p = lock_unpoisoned(&self.progress);
        let (done, total, resumed) = self.sink.progress();
        Json::Obj(vec![
            ("id".into(), Json::U64(self.id)),
            ("kind".into(), Json::Str(self.kind.name().to_string())),
            ("name".into(), Json::Str(self.name.clone())),
            ("state".into(), Json::Str(p.state.name().to_string())),
            (
                "error".into(),
                p.error.clone().map_or(Json::Null, Json::Str),
            ),
            ("digest".into(), p.digest.map_or(Json::Null, Json::U64)),
            ("workers".into(), Json::U64(self.workers as u64)),
            (
                "halt_after".into(),
                self.halt_after.map_or(Json::Null, Json::U64),
            ),
            ("batch".into(), Json::U64(self.batch as u64)),
            ("incremental".into(), Json::Bool(self.incremental)),
            ("grid".into(), Json::U64(self.grid)),
            ("items_done".into(), Json::U64(done)),
            ("items_total".into(), total.map_or(Json::Null, Json::U64)),
            ("items_resumed".into(), Json::U64(resumed)),
            ("events_total".into(), {
                let s = lock_unpoisoned(&self.sink.state);
                Json::U64(s.next_seq)
            }),
            ("events_evicted".into(), Json::U64(self.sink.evicted())),
            (
                "telemetry_file_drops".into(),
                Json::U64(self.sink.file_drops()),
            ),
            ("journal_diagnostics".into(), {
                let s = lock_unpoisoned(&self.sink.state);
                Json::Obj(vec![
                    ("total".into(), Json::U64(s.diagnostics_total)),
                    (
                        "events".into(),
                        Json::Arr(
                            s.diagnostics
                                .iter()
                                .map(|l| Json::parse(l).unwrap_or_else(|_| Json::Str(l.clone())))
                                .collect(),
                        ),
                    ),
                ])
            }),
            ("store".into(), self.store_value()),
        ])
    }

    /// Per-job store stats: segment counts and on-disk bytes for the
    /// job's journal and telemetry logs.
    fn store_value(&self) -> Json {
        let (tel_segments, tel_bytes) = self
            .sink
            .log()
            .map_or((0, 0), |l| (l.segments().len() as u64, l.total_bytes()));
        // The journal log is owned by the executing campaign, not the
        // job, so its stats come from the directory itself (the legacy
        // flat file counts as one segment).
        let (jnl_segments, jnl_bytes) = log_dir_stats(&self.dir.join("journal"));
        let (jnl_segments, jnl_bytes) = match std::fs::metadata(self.dir.join("journal.jsonl")) {
            Ok(m) => (jnl_segments + 1, jnl_bytes + m.len()),
            Err(_) => (jnl_segments, jnl_bytes),
        };
        Json::Obj(vec![
            ("journal_segments".into(), Json::U64(jnl_segments)),
            ("journal_bytes".into(), Json::U64(jnl_bytes)),
            ("telemetry_segments".into(), Json::U64(tel_segments)),
            ("telemetry_bytes".into(), Json::U64(tel_bytes)),
        ])
    }
}

/// Counts `seg-*.jsonl` segments and their bytes in a log directory.
fn log_dir_stats(dir: &Path) -> (u64, u64) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return (0, 0);
    };
    let mut segments = 0;
    let mut bytes = 0;
    for entry in entries.flatten() {
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if name.starts_with("seg-") && name.ends_with(".jsonl") {
            segments += 1;
            bytes += entry.metadata().map_or(0, |m| m.len());
        }
    }
    (segments, bytes)
}

// ---------------------------------------------------------------------------
// Queue
// ---------------------------------------------------------------------------

/// Errors a submission can fail with (mapped to HTTP 400/409/503 by the
/// server).
#[derive(Debug)]
pub enum SubmitError {
    /// The spec document did not decode.
    BadSpec(String),
    /// A daemon limit was exceeded.
    Limit(String),
    /// The queue is shutting down.
    ShuttingDown,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::BadSpec(m) => write!(f, "{m}"),
            SubmitError::Limit(m) => write!(f, "{m}"),
            SubmitError::ShuttingDown => write!(f, "daemon is shutting down"),
        }
    }
}

struct QueueInner {
    cfg: ServeConfig,
    jobs: Mutex<Vec<Arc<Job>>>,
    pending: Mutex<VecDeque<Arc<Job>>>,
    pending_cond: Condvar,
    shutting_down: AtomicBool,
    next_id: AtomicU64,
    // Retention pruner (None when prune.json could not be opened). The
    // background tick thread and `Queue::prune_now` share it.
    pruner: Mutex<Option<Pruner>>,
    prune_gate: Mutex<()>,
    prune_cond: Condvar,
}

/// The daemon's job queue: owns every job, the worker pool that executes
/// them, and the on-disk layout that makes them survive restarts.
pub struct Queue {
    inner: Arc<QueueInner>,
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl Queue {
    /// Boots a queue over `cfg.journal_root`: scans existing job
    /// directories (re-queueing interrupted jobs), then spawns
    /// `cfg.queue_workers` executor threads.
    ///
    /// # Errors
    ///
    /// Propagates journal-root creation failures.
    pub fn start(cfg: ServeConfig) -> std::io::Result<Queue> {
        std::fs::create_dir_all(&cfg.journal_root)?;
        let inner = Arc::new(QueueInner {
            cfg,
            jobs: Mutex::new(Vec::new()),
            pending: Mutex::new(VecDeque::new()),
            pending_cond: Condvar::new(),
            shutting_down: AtomicBool::new(false),
            next_id: AtomicU64::new(1),
            pruner: Mutex::new(None),
            prune_gate: Mutex::new(()),
            prune_cond: Condvar::new(),
        });
        // The segment holds a Weak so the pruner inside QueueInner does
        // not keep QueueInner alive through itself.
        if let Ok(mut pruner) = Pruner::open(
            &inner.cfg.journal_root.join("prune.json"),
            inner.cfg.prune_delete_limit,
        ) {
            pruner.add(JobDirsSegment {
                inner: Arc::downgrade(&inner),
            });
            *lock_unpoisoned(&inner.pruner) = Some(pruner);
        }
        let queue = Queue {
            inner: Arc::clone(&inner),
            workers: Mutex::new(Vec::new()),
        };
        queue.scan_existing();
        let mut workers = lock_unpoisoned(&queue.workers);
        for w in 0..inner.cfg.queue_workers.max(1) {
            let inner = Arc::clone(&inner);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("gecko-serve-q{w}"))
                    .spawn(move || worker_loop(&inner))
                    .expect("spawn queue worker"),
            );
        }
        if inner.cfg.prune_interval_secs > 0 {
            let inner = Arc::clone(&inner);
            workers.push(
                std::thread::Builder::new()
                    .name("gecko-serve-prune".to_string())
                    .spawn(move || prune_loop(&inner))
                    .expect("spawn pruner"),
            );
        }
        drop(workers);
        Ok(queue)
    }

    /// The config this queue was booted with.
    pub fn config(&self) -> &ServeConfig {
        &self.inner.cfg
    }

    /// The `/v1/config` document: the effective config plus live store
    /// stats (pruner checkpoints, tick count).
    pub fn config_value(&self) -> Json {
        let mut doc = self.inner.cfg.to_value();
        if let Json::Obj(fields) = &mut doc {
            fields.push(("store".into(), self.store_stats()));
        }
        doc
    }

    /// Live store stats: one [`gecko_store::PruneCheckpoint`] per
    /// registered segment kind plus the tick counter. `null` when the
    /// pruner failed to boot.
    pub fn store_stats(&self) -> Json {
        let guard = lock_unpoisoned(&self.inner.pruner);
        let Some(pruner) = guard.as_ref() else {
            return Json::Null;
        };
        let checkpoints: Vec<(String, Json)> = pruner
            .checkpoints()
            .all()
            .map(|(kind, cp)| {
                (
                    kind.to_string(),
                    Json::Obj(vec![
                        ("next_segment".into(), Json::U64(cp.next_segment)),
                        ("pruned_entries".into(), Json::U64(cp.pruned_entries)),
                        ("reclaimed_bytes".into(), Json::U64(cp.reclaimed_bytes)),
                    ]),
                )
            })
            .collect();
        Json::Obj(vec![
            ("ticks".into(), Json::U64(pruner.ticks())),
            (
                "delete_limit".into(),
                Json::U64(self.inner.cfg.prune_delete_limit as u64),
            ),
            ("checkpoints".into(), Json::Obj(checkpoints)),
        ])
    }

    /// Runs one pruner tick synchronously (what the background thread
    /// does every `prune_interval_secs`). Tests drive retention through
    /// this for determinism.
    pub fn prune_now(&self) -> Option<TickReport> {
        let mut guard = lock_unpoisoned(&self.inner.pruner);
        guard.as_mut().and_then(|p| p.tick().ok())
    }

    /// Submits a job. The spec document is fully decoded (and therefore
    /// validated) before anything is persisted, so a bad submission never
    /// leaves a job directory behind.
    ///
    /// # Errors
    ///
    /// [`SubmitError::BadSpec`] for undecodable specs,
    /// [`SubmitError::Limit`] for limit violations,
    /// [`SubmitError::ShuttingDown`] during drain.
    pub fn submit(&self, kind: JobKind, sub: wire::Submission) -> Result<Arc<Job>, SubmitError> {
        let inner = &self.inner;
        if inner.shutting_down.load(Ordering::SeqCst) {
            return Err(SubmitError::ShuttingDown);
        }
        let (name, grid) = validate_spec(kind, &sub.spec).map_err(SubmitError::BadSpec)?;
        if grid == 0 {
            return Err(SubmitError::BadSpec(
                "spec expands to an empty grid (no apps, schemes, or seeds)".to_string(),
            ));
        }
        if grid > inner.cfg.max_items_per_job as u64 {
            return Err(SubmitError::Limit(format!(
                "spec expands to {grid} items, above the per-job limit of {}",
                inner.cfg.max_items_per_job
            )));
        }
        {
            let jobs = lock_unpoisoned(&inner.jobs);
            if jobs.len() >= inner.cfg.max_jobs {
                return Err(SubmitError::Limit(format!(
                    "job table is full ({} jobs)",
                    inner.cfg.max_jobs
                )));
            }
        }
        let workers = sub
            .workers
            .unwrap_or(inner.cfg.job_workers)
            .clamp(1, inner.cfg.max_job_workers);
        let batch = sub.batch.unwrap_or(1).max(1);
        let id = inner.next_id.fetch_add(1, Ordering::SeqCst);
        let dir = inner.cfg.journal_root.join(format!("job-{id}"));
        std::fs::create_dir_all(&dir)
            .map_err(|e| SubmitError::Limit(format!("creating {}: {e}", dir.display())))?;
        let envelope = Json::Obj(vec![
            ("id".into(), Json::U64(id)),
            ("kind".into(), Json::Str(kind.name().to_string())),
            ("workers".into(), Json::U64(workers as u64)),
            (
                "halt_after".into(),
                sub.halt_after.map_or(Json::Null, Json::U64),
            ),
            ("batch".into(), Json::U64(batch as u64)),
            ("incremental".into(), Json::Bool(sub.incremental)),
            ("spec".into(), sub.spec.clone()),
        ]);
        std::fs::write(dir.join("job.json"), envelope.encode())
            .map_err(|e| SubmitError::Limit(format!("persisting job.json: {e}")))?;
        let job = Arc::new(Job {
            id,
            kind,
            name,
            sink: Arc::new(JobSink::new(inner.cfg.event_buffer, &dir.join("telemetry"))),
            dir,
            spec: sub.spec,
            workers,
            halt_after: sub.halt_after,
            batch,
            grid,
            incremental: sub.incremental,
            stop: Arc::new(AtomicBool::new(false)),
            cancel_requested: AtomicBool::new(false),
            progress: Mutex::new(JobProgress {
                state: JobState::Queued,
                error: None,
                digest: None,
            }),
            progress_cond: Condvar::new(),
        });
        lock_unpoisoned(&inner.jobs).push(Arc::clone(&job));
        lock_unpoisoned(&inner.pending).push_back(Arc::clone(&job));
        inner.pending_cond.notify_one();
        Ok(job)
    }

    /// Looks a job up by id.
    pub fn job(&self, id: u64) -> Option<Arc<Job>> {
        lock_unpoisoned(&self.inner.jobs)
            .iter()
            .find(|j| j.id == id)
            .cloned()
    }

    /// Every job, in submission order.
    pub fn jobs(&self) -> Vec<Arc<Job>> {
        lock_unpoisoned(&self.inner.jobs).clone()
    }

    /// Requests cancellation. A queued job is cancelled on the spot; a
    /// running one gets its kill switch flipped and drains to a journaled
    /// checkpoint before the state lands on `Cancelled`. Stopped jobs are
    /// left as they are (cancel is idempotent).
    pub fn cancel(&self, job: &Arc<Job>) {
        job.cancel_requested.store(true, Ordering::SeqCst);
        job.stop.store(true, Ordering::SeqCst);
        let mut p = lock_unpoisoned(&job.progress);
        if p.state == JobState::Queued {
            p.state = JobState::Cancelled;
            drop(p);
            write_state_file(&job.dir, "cancelled", None);
            job.sink.close();
            job.progress_cond.notify_all();
        }
    }

    /// Graceful shutdown: stop claiming queued jobs, flip every running
    /// job's kill switch, and join the workers once in-flight runs have
    /// been journaled. Queued and interrupted jobs resume on the next
    /// boot.
    pub fn shutdown(&self) {
        self.inner.shutting_down.store(true, Ordering::SeqCst);
        for job in self.jobs() {
            if !job.state().is_stopped() {
                job.stop.store(true, Ordering::SeqCst);
            }
        }
        self.inner.pending_cond.notify_all();
        self.inner.prune_cond.notify_all();
        let mut workers = lock_unpoisoned(&self.workers);
        for handle in workers.drain(..) {
            let _ = handle.join();
        }
    }

    /// Restores jobs from the journal root. Terminal jobs come back with
    /// their digest; anything interrupted re-queues for resume.
    fn scan_existing(&self) {
        let inner = &self.inner;
        let Ok(entries) = std::fs::read_dir(&inner.cfg.journal_root) else {
            return;
        };
        let mut found: Vec<(u64, PathBuf)> = entries
            .flatten()
            .filter_map(|e| {
                let name = e.file_name().into_string().ok()?;
                let id: u64 = name.strip_prefix("job-")?.parse().ok()?;
                Some((id, e.path()))
            })
            .collect();
        found.sort_by_key(|(id, _)| *id);
        for (id, dir) in found {
            match restore_job(inner, id, &dir) {
                Some(job) => {
                    let queued = job.state() == JobState::Queued;
                    lock_unpoisoned(&inner.jobs).push(Arc::clone(&job));
                    if queued {
                        lock_unpoisoned(&inner.pending).push_back(job);
                    }
                }
                None => {
                    // A directory we cannot make sense of is left alone on
                    // disk but not served; the id is still reserved so a
                    // fresh submission cannot collide with it.
                }
            }
            let floor = id + 1;
            inner.next_id.fetch_max(floor, Ordering::SeqCst);
        }
    }
}

/// Decodes `job.json` + terminal markers back into a [`Job`].
fn restore_job(inner: &QueueInner, id: u64, dir: &Path) -> Option<Arc<Job>> {
    let envelope = Json::parse(&std::fs::read_to_string(dir.join("job.json")).ok()?).ok()?;
    let kind = JobKind::from_name(envelope.get("kind")?.as_str()?)?;
    let spec = envelope.get("spec")?.clone();
    let workers = envelope.get("workers")?.as_u64()? as usize;
    // `halt_after` is a one-shot interruption hook: it already fired in
    // the session that journaled the halt, so a restored job resumes to
    // completion instead of halting again every session. job.json keeps
    // the submitted value for provenance only. `batch`, by contrast, is a
    // durable execution knob (and results-invariant), so it survives.
    let halt_after = None;
    let batch = envelope
        .get("batch")
        .and_then(Json::as_u64)
        .map_or(1, |n| n as usize)
        .max(1);
    // Envelopes from pre-incremental daemons default to off.
    let incremental = envelope
        .get("incremental")
        .and_then(Json::as_bool)
        .unwrap_or(false);
    let (name, grid) = validate_spec(kind, &spec).ok()?;

    // Terminal-state detection from the directory contents alone.
    let (state, error, digest) = if let Ok(text) = std::fs::read_to_string(dir.join("result.json"))
    {
        let digest = Json::parse(&text)
            .ok()
            .and_then(|doc| doc.get("digest")?.as_u64());
        (JobState::Done, None, digest)
    } else if let Ok(text) = std::fs::read_to_string(dir.join("state.json")) {
        let doc = Json::parse(&text).ok()?;
        let state = match doc.get("state")?.as_str()? {
            "cancelled" => JobState::Cancelled,
            "failed" => JobState::Failed,
            _ => return None,
        };
        let error = doc.get("error").and_then(Json::as_str).map(str::to_string);
        (state, error, None)
    } else {
        // No terminal marker: the previous session was interrupted (or
        // never started the job). Re-queue; resume skips journaled runs.
        (JobState::Queued, None, None)
    };

    let sink = Arc::new(JobSink::new(inner.cfg.event_buffer, &dir.join("telemetry")));
    if state.is_stopped() {
        sink.close();
    }
    Some(Arc::new(Job {
        id,
        kind,
        name,
        dir: dir.to_path_buf(),
        spec,
        workers,
        halt_after,
        batch,
        grid,
        incremental,
        sink,
        stop: Arc::new(AtomicBool::new(false)),
        cancel_requested: AtomicBool::new(false),
        progress: Mutex::new(JobProgress {
            state,
            error,
            digest,
        }),
        progress_cond: Condvar::new(),
    }))
}

/// Validates a spec document for `kind` and returns `(name, grid size)`.
fn validate_spec(kind: JobKind, spec: &Json) -> Result<(String, u64), String> {
    match kind {
        JobKind::Sweep => {
            let decoded = spec_io::spec_from_value(spec, "")
                .map_err(|e| format!("invalid campaign spec: {e}"))?;
            let grid = decoded.expand().len() as u64;
            Ok((decoded.name, grid))
        }
        JobKind::Check => {
            let decoded = wire::check_spec_from_value(spec, "")
                .map_err(|e| format!("invalid check spec: {e}"))?;
            let grid = (decoded.apps.len() * decoded.schemes.len()) as u64;
            Ok((decoded.name, grid))
        }
    }
}

fn write_state_file(dir: &Path, state: &str, error: Option<&str>) {
    let doc = Json::Obj(vec![
        ("state".into(), Json::Str(state.to_string())),
        (
            "error".into(),
            error.map_or(Json::Null, |e| Json::Str(e.to_string())),
        ),
    ]);
    let _ = std::fs::write(dir.join("state.json"), doc.encode());
}

/// GCs finished `job-<id>/` directories under the retention policy.
///
/// The "entries" of this segment are whole job directories: one pruned
/// entry = one terminal (done/failed/cancelled) job removed from disk and
/// from the jobs table, oldest id first. Interrupted jobs are never
/// candidates — they resume on the next boot. The checkpoint's
/// `next_segment` records the highest removed id + 1 for observability
/// only; candidates are always re-derived from the live jobs table, so a
/// job that *becomes* terminal later is still eligible below that
/// frontier.
struct JobDirsSegment {
    inner: std::sync::Weak<QueueInner>,
}

impl Segment for JobDirsSegment {
    fn kind(&self) -> &str {
        "job_dirs"
    }

    fn prune(&self, input: PruneInput) -> Result<PruneOutput, StoreError> {
        let mut cp = input.checkpoint.unwrap_or_default();
        let Some(inner) = self.inner.upgrade() else {
            return Ok(PruneOutput {
                pruned: 0,
                reclaimed_bytes: 0,
                done: true,
                checkpoint: cp,
            });
        };
        let cfg = &inner.cfg;
        let mut terminal: Vec<Arc<Job>> = lock_unpoisoned(&inner.jobs)
            .iter()
            .filter(|j| {
                matches!(
                    j.state(),
                    JobState::Done | JobState::Failed | JobState::Cancelled
                )
            })
            .cloned()
            .collect();
        terminal.sort_by_key(|j| j.id);
        let sizes: Vec<u64> = terminal.iter().map(|j| dir_size(&j.dir)).collect();
        let ages: Vec<u64> = terminal.iter().map(|j| dir_age_secs(&j.dir)).collect();
        let mut total: u64 = sizes.iter().sum();

        // Oldest-first victim count: delete while any retention limit is
        // violated. Count and bytes limits shrink as victims accrue; the
        // age limit applies per directory.
        let mut victims = 0;
        while victims < terminal.len() {
            let count_over = cfg.retain_jobs != 0 && terminal.len() - victims > cfg.retain_jobs;
            let bytes_over = cfg.retain_bytes != 0 && total > cfg.retain_bytes;
            let age_over = cfg.retain_age_secs != 0 && ages[victims] > cfg.retain_age_secs;
            if !(count_over || bytes_over || age_over) {
                break;
            }
            total -= sizes[victims];
            victims += 1;
        }

        let mut pruned = 0;
        let mut reclaimed_bytes = 0;
        let mut done = true;
        for (job, &bytes) in terminal.iter().zip(&sizes).take(victims) {
            if pruned >= input.delete_limit {
                done = false;
                break;
            }
            if let Err(e) = std::fs::remove_dir_all(&job.dir) {
                return Err(StoreError::Io(e));
            }
            lock_unpoisoned(&inner.jobs).retain(|j| j.id != job.id);
            pruned += 1;
            reclaimed_bytes += bytes;
            cp.next_segment = cp.next_segment.max(job.id + 1);
            cp.pruned_entries += 1;
            cp.reclaimed_bytes += bytes;
        }
        Ok(PruneOutput {
            pruned,
            reclaimed_bytes,
            done,
            checkpoint: cp,
        })
    }
}

/// Recursive directory size in bytes (0 for anything unreadable).
fn dir_size(dir: &Path) -> u64 {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return 0;
    };
    entries
        .flatten()
        .map(|e| match e.metadata() {
            Ok(m) if m.is_dir() => dir_size(&e.path()),
            Ok(m) => m.len(),
            Err(_) => 0,
        })
        .sum()
}

/// Seconds since the directory was last modified (0 if unknown — an
/// unreadable mtime never makes a job "old enough" to GC).
fn dir_age_secs(dir: &Path) -> u64 {
    std::fs::metadata(dir)
        .and_then(|m| m.modified())
        .ok()
        .and_then(|t| std::time::SystemTime::now().duration_since(t).ok())
        .map_or(0, |d| d.as_secs())
}

/// Background retention thread: one pruner tick per interval, waking
/// early (and exiting) on shutdown.
fn prune_loop(inner: &Arc<QueueInner>) {
    let interval = Duration::from_secs(inner.cfg.prune_interval_secs.max(1));
    loop {
        if inner.shutting_down.load(Ordering::SeqCst) {
            return;
        }
        if let Some(pruner) = lock_unpoisoned(&inner.pruner).as_mut() {
            let _ = pruner.tick();
        }
        let gate = lock_unpoisoned(&inner.prune_gate);
        let _unused = inner
            .prune_cond
            .wait_timeout(gate, interval)
            .unwrap_or_else(std::sync::PoisonError::into_inner);
    }
}

fn worker_loop(inner: &Arc<QueueInner>) {
    loop {
        let job = {
            let mut pending = lock_unpoisoned(&inner.pending);
            loop {
                if inner.shutting_down.load(Ordering::SeqCst) {
                    return;
                }
                if let Some(job) = pending.pop_front() {
                    break job;
                }
                pending = inner
                    .pending_cond
                    .wait(pending)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        };
        // Cancelled while queued: nothing to do.
        if job.state() != JobState::Queued {
            continue;
        }
        execute(&inner.cfg, &job);
    }
}

/// FNV-1a over the canonical spec document: names the memo directory an
/// incremental check job shares with every other submission of the same
/// spec.
fn memo_key(text: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in text.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Runs one job to a stopped state, writing its terminal files.
fn execute(cfg: &ServeConfig, job: &Arc<Job>) {
    job.set_state(JobState::Running, None, None);
    // Segmented journal; a flat `journal.jsonl` written by an older
    // daemon still resumes through the legacy single-file backend.
    let legacy = job.dir.join("journal.jsonl");
    let journal = if legacy.exists() {
        Journal::open(&legacy)
    } else {
        Journal::open_segmented(&job.dir.join("journal"), LogConfig::default())
    };
    let journal = match journal {
        Ok(j) => Arc::new(j),
        Err(e) => {
            let msg = format!("opening journal: {e}");
            write_state_file(&job.dir, "failed", Some(&msg));
            job.set_state(JobState::Failed, Some(msg), None);
            job.sink.close();
            return;
        }
    };
    let sink: Arc<dyn TelemetrySink> = job.sink.clone();

    // Outcome of the run, normalized across sweep/check:
    // Ok((complete, digest, full_doc, det_doc)) or Err(message).
    let outcome: Result<(bool, u64, String, String), String> = match job.kind {
        JobKind::Sweep => spec_io::spec_from_value(&job.spec, "")
            .map_err(|e| format!("invalid campaign spec: {e}"))
            .and_then(|spec| {
                let total = spec.expand().len() as u64;
                let mut campaign = Campaign::new(spec)
                    .workers(job.workers)
                    .batch_size(job.batch)
                    .sink(sink)
                    .resume(journal)
                    .kill_switch(Arc::clone(&job.stop));
                if let Some(n) = job.halt_after {
                    campaign = campaign.halt_after(n);
                }
                let report = campaign.run().map_err(|e| format!("{e:?}"))?;
                // A halted sweep can still be complete: every grid slot is
                // accounted as a result or an item-level failure.
                let accounted = report.results.len() as u64
                    + report
                        .failures
                        .iter()
                        .filter(|f| f.item().is_some())
                        .count() as u64;
                let complete = !report.halted || accounted == total;
                Ok((
                    complete,
                    report.deterministic_digest(),
                    spec_io::report_to_json(&report),
                    spec_io::report_deterministic_json(&report),
                ))
            }),
        JobKind::Check => wire::check_spec_from_value(&job.spec, "")
            .map_err(|e| format!("invalid check spec: {e}"))
            .and_then(|spec| {
                // Incremental mode: a durable memo store keyed by the
                // canonical spec document, shared across every job (and
                // daemon session) checking the same spec. Opened
                // best-effort — a store that fails to open just means a
                // cold run.
                let memo: Option<(PathBuf, Arc<MemoStore>)> = if job.incremental {
                    job.dir.parent().and_then(|root| {
                        let key = memo_key(&wire::check_spec_value(&spec).encode());
                        let dir = root.join("memo").join(format!("{key:016x}"));
                        let store = MemoStore::open(&dir).ok()?;
                        Some((dir, Arc::new(store)))
                    })
                } else {
                    None
                };
                let mut campaign = CheckCampaign::new(spec)
                    .workers(job.workers)
                    .sink(sink)
                    .resume(journal)
                    .kill_switch(Arc::clone(&job.stop));
                if let Some((_, store)) = &memo {
                    campaign = campaign.memo(Arc::clone(store));
                }
                if let Some(n) = job.halt_after {
                    campaign = campaign.halt_after(n);
                }
                let report = campaign.run().map_err(|e| format!("{e:?}"))?;
                // Budgeted compaction of the memo log, after the run so
                // the sealed segments it rewrites already hold this run's
                // flushed records. Its checkpoint lives beside the log.
                if let Some((dir, store)) = memo {
                    if let Ok(mut pruner) =
                        Pruner::open(&dir.join("prune.json"), cfg.prune_delete_limit)
                    {
                        pruner.add(LogCompactor::new(
                            "check-memo",
                            store.log(),
                            classify_memo_lines,
                        ));
                        let _ = pruner.tick();
                    }
                }
                Ok((
                    !report.halted,
                    report.deterministic_digest(),
                    wire::check_report_to_json(&report),
                    wire::check_report_deterministic_json(&report),
                ))
            }),
    };

    // Close the event stream before publishing the terminal state: a
    // client woken by the state change must observe `closed` on its next
    // events poll.
    job.sink.close();

    match outcome {
        Ok((true, digest, full, det)) => {
            let write = std::fs::write(job.dir.join("result.det.json"), det)
                .and_then(|()| std::fs::write(job.dir.join("result.json"), full));
            match write {
                Ok(()) => job.set_state(JobState::Done, None, Some(digest)),
                Err(e) => {
                    let msg = format!("persisting result: {e}");
                    write_state_file(&job.dir, "failed", Some(&msg));
                    job.set_state(JobState::Failed, Some(msg), None);
                }
            }
        }
        Ok((false, ..)) => {
            // Stopped at a clean checkpoint: kill switch (cancel or daemon
            // drain) or halt_after. Journal has everything completed so
            // far; no terminal file means the next boot resumes it —
            // except an explicit cancel, which is terminal.
            if job.cancel_requested.load(Ordering::SeqCst) {
                write_state_file(&job.dir, "cancelled", None);
                job.set_state(JobState::Cancelled, None, None);
            } else {
                job.set_state(JobState::Interrupted, None, None);
            }
        }
        Err(msg) => {
            write_state_file(&job.dir, "failed", Some(&msg));
            job.set_state(JobState::Failed, Some(msg), None);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_config(tag: &str) -> ServeConfig {
        let cfg = ServeConfig {
            journal_root: std::env::temp_dir()
                .join(format!("gecko-serve-queue-{}-{tag}", std::process::id())),
            queue_workers: 2,
            job_workers: 2,
            ..ServeConfig::default()
        };
        let _ = std::fs::remove_dir_all(&cfg.journal_root);
        cfg
    }

    fn tiny_sweep_spec() -> Json {
        Json::parse(
            r#"{"name":"queue-tiny","apps":["blink"],"schemes":["gecko"],
                "seeds":[1,2],"workload":{"kind":"run_for","seconds":0.002}}"#,
        )
        .unwrap()
    }

    fn submission(spec: Json, halt_after: Option<u64>) -> wire::Submission {
        wire::Submission {
            spec,
            workers: Some(1),
            halt_after,
            batch: None,
            incremental: false,
        }
    }

    #[test]
    fn sweep_job_runs_to_done_with_digest() {
        let cfg = test_config("done");
        let root = cfg.journal_root.clone();
        let queue = Queue::start(cfg).unwrap();
        let job = queue
            .submit(JobKind::Sweep, submission(tiny_sweep_spec(), None))
            .unwrap();
        let state = job.wait_stopped(Duration::from_secs(120));
        assert_eq!(state, JobState::Done);
        assert!(job.dir.join("result.json").exists());
        assert!(job.dir.join("result.det.json").exists());
        let status = job.status_value();
        assert_eq!(status.get("state").and_then(Json::as_str), Some("done"));
        assert!(status.get("digest").and_then(Json::as_u64).is_some());
        assert_eq!(status.get("items_done").and_then(Json::as_u64), Some(2));
        queue.shutdown();
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn bad_specs_and_limits_are_rejected_before_any_disk_state() {
        let mut cfg = test_config("reject");
        cfg.max_items_per_job = 1;
        let root = cfg.journal_root.clone();
        let queue = Queue::start(cfg).unwrap();
        let bad = Json::parse(r#"{"name":"x","schemes":["geko"]}"#).unwrap();
        match queue.submit(JobKind::Sweep, submission(bad, None)) {
            Err(SubmitError::BadSpec(m)) => assert!(m.contains("geko"), "{m}"),
            other => panic!("expected BadSpec, got {other:?}"),
        }
        match queue.submit(JobKind::Sweep, submission(tiny_sweep_spec(), None)) {
            Err(SubmitError::Limit(m)) => assert!(m.contains("limit"), "{m}"),
            other => panic!("expected Limit, got {other:?}"),
        }
        // No job directories were created for rejected submissions.
        let dirs = std::fs::read_dir(&root).unwrap().count();
        assert_eq!(dirs, 0);
        queue.shutdown();
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn halt_after_interrupts_and_restart_resumes_to_same_digest() {
        let cfg = test_config("resume");
        let root = cfg.journal_root.clone();

        // Reference digest from an uninterrupted in-process run.
        let reference = {
            let spec = spec_io::spec_from_value(&tiny_sweep_spec(), "").unwrap();
            Campaign::new(spec).run().unwrap().deterministic_digest()
        };

        let queue = Queue::start(cfg.clone()).unwrap();
        let job = queue
            .submit(JobKind::Sweep, submission(tiny_sweep_spec(), Some(1)))
            .unwrap();
        assert_eq!(
            job.wait_stopped(Duration::from_secs(120)),
            JobState::Interrupted
        );
        let id = job.id;
        queue.shutdown();
        drop(queue);

        // "Restart": a fresh queue over the same root resumes the job.
        let queue = Queue::start(cfg).unwrap();
        let job = queue.job(id).expect("job restored");
        assert_eq!(job.wait_stopped(Duration::from_secs(120)), JobState::Done);
        let status = job.status_value();
        assert_eq!(status.get("digest").and_then(Json::as_u64), Some(reference));
        assert_eq!(status.get("items_resumed").and_then(Json::as_u64), Some(1));
        queue.shutdown();
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn retention_gc_removes_oldest_finished_jobs_one_per_tick() {
        let mut cfg = test_config("retention");
        cfg.retain_jobs = 1;
        cfg.prune_interval_secs = 0; // ticks driven by hand
        cfg.prune_delete_limit = 1; // one directory per tick
        let root = cfg.journal_root.clone();
        let queue = Queue::start(cfg.clone()).unwrap();
        let mut ids = Vec::new();
        for _ in 0..3 {
            let job = queue
                .submit(JobKind::Sweep, submission(tiny_sweep_spec(), None))
                .unwrap();
            assert_eq!(job.wait_stopped(Duration::from_secs(120)), JobState::Done);
            ids.push(job.id);
        }
        let survivor_result =
            std::fs::read(root.join(format!("job-{}/result.json", ids[2]))).unwrap();

        // 3 terminal jobs, retain 1 → two victims; the budget admits one
        // deletion per tick, so the first tick reports unfinished work.
        let r1 = queue.prune_now().unwrap();
        assert_eq!((r1.pruned, r1.done), (1, false));
        let r2 = queue.prune_now().unwrap();
        assert_eq!((r2.pruned, r2.done), (1, true));
        let r3 = queue.prune_now().unwrap();
        assert_eq!((r3.pruned, r3.done), (0, true));

        // Oldest two gone from disk and the jobs table; the newest and
        // its served result are untouched.
        assert!(queue.job(ids[0]).is_none());
        assert!(queue.job(ids[1]).is_none());
        assert!(!root.join(format!("job-{}", ids[0])).exists());
        assert!(queue.job(ids[2]).is_some());
        let after = std::fs::read(root.join(format!("job-{}/result.json", ids[2]))).unwrap();
        assert_eq!(survivor_result, after, "GC must not touch kept results");

        // The /v1/config document carries the pruner's checkpoint.
        let stats = queue.store_stats();
        let pruned = stats
            .get("checkpoints")
            .and_then(|c| c.get("job_dirs"))
            .and_then(|c| c.get("pruned_entries"))
            .and_then(Json::as_u64);
        assert_eq!(pruned, Some(2));
        queue.shutdown();
        drop(queue);

        // Restart: GC'd jobs stay gone, the survivor restores as Done,
        // and the persisted checkpoint is still there.
        let queue = Queue::start(cfg).unwrap();
        assert!(queue.job(ids[0]).is_none());
        assert_eq!(queue.job(ids[2]).unwrap().state(), JobState::Done);
        let stats = queue.store_stats();
        let pruned = stats
            .get("checkpoints")
            .and_then(|c| c.get("job_dirs"))
            .and_then(|c| c.get("pruned_entries"))
            .and_then(Json::as_u64);
        assert_eq!(pruned, Some(2), "checkpoint survives restart");
        queue.shutdown();
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn long_campaign_stays_under_the_byte_cap() {
        const CAP: u64 = 100 * 1024;
        let mut cfg = test_config("bytecap");
        cfg.retain_bytes = CAP;
        cfg.prune_interval_secs = 0;
        let root = cfg.journal_root.clone();
        let queue = Queue::start(cfg).unwrap();
        let mut last = None;
        for _ in 0..6 {
            let job = queue
                .submit(JobKind::Sweep, submission(tiny_sweep_spec(), None))
                .unwrap();
            assert_eq!(job.wait_stopped(Duration::from_secs(120)), JobState::Done);
            // Simulate a heavy job: pad the dir so a handful of finished
            // jobs overflows the cap deterministically.
            std::fs::write(job.dir.join("pad.bin"), vec![0u8; 40 * 1024]).unwrap();
            last = Some(job);
            let report = queue.prune_now().unwrap();
            assert!(report.done, "default budget clears the backlog per tick");
        }
        // Finished-job bytes are under the cap (the newest job always
        // survives, so the floor is one job's footprint) — and the cap
        // actually bit: older dirs were GCed along the way.
        let terminal_bytes: u64 = queue
            .jobs()
            .iter()
            .filter(|j| j.state().is_stopped())
            .map(|j| dir_size(&j.dir))
            .sum();
        assert!(
            terminal_bytes <= CAP,
            "terminal job dirs hold {terminal_bytes} bytes, cap is {CAP}"
        );
        let pruned = queue
            .store_stats()
            .get("checkpoints")
            .and_then(|c| c.get("job_dirs"))
            .and_then(|c| c.get("pruned_entries"))
            .and_then(Json::as_u64)
            .unwrap_or(0);
        assert!(pruned >= 1, "the byte cap never triggered a GC");
        // The survivor still serves its full result and status document.
        let job = last.unwrap();
        let job = queue.job(job.id).expect("newest job kept");
        assert!(job.dir.join("result.json").exists());
        let store = job.status_value();
        let store = store.get("store").expect("status carries store stats");
        assert!(store.get("telemetry_segments").and_then(Json::as_u64) >= Some(1));
        assert!(store.get("journal_segments").and_then(Json::as_u64) >= Some(1));
        queue.shutdown();
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn incremental_check_reuses_the_memo_store_across_jobs() {
        let cfg = test_config("incremental");
        let root = cfg.journal_root.clone();
        let queue = Queue::start(cfg).unwrap();
        let spec = Json::parse(
            r#"{"name":"inc-check","apps":["blink"],"schemes":["gecko"],
                "explore":{"max_windows":64}}"#,
        )
        .unwrap();
        let sub = |spec: Json| wire::Submission {
            spec,
            workers: Some(1),
            halt_after: None,
            batch: None,
            incremental: true,
        };
        let cold = queue.submit(JobKind::Check, sub(spec.clone())).unwrap();
        assert_eq!(cold.wait_stopped(Duration::from_secs(120)), JobState::Done);
        let warm = queue.submit(JobKind::Check, sub(spec)).unwrap();
        assert_eq!(warm.wait_stopped(Duration::from_secs(120)), JobState::Done);

        // Byte-identical deterministic documents, cold and warm.
        let cold_det = std::fs::read(cold.dir.join("result.det.json")).unwrap();
        let warm_det = std::fs::read(warm.dir.join("result.det.json")).unwrap();
        assert_eq!(cold_det, warm_det);

        // The warm run answered (essentially all of) its windows from the
        // shared store and names the memo generation backing the verdict.
        let full =
            Json::parse(&std::fs::read_to_string(warm.dir.join("result.json")).unwrap()).unwrap();
        let memo_windows = full
            .get("counters")
            .and_then(|c| c.get("memo_windows"))
            .and_then(Json::as_u64)
            .unwrap();
        let windows = full
            .get("totals")
            .and_then(|t| t.get("windows"))
            .and_then(Json::as_u64)
            .unwrap();
        assert!(
            memo_windows * 10 >= windows * 9,
            "memo answered {memo_windows} of {windows} windows"
        );
        assert!(full.get("memo_generation").and_then(Json::as_u64).is_some());
        assert!(root.join("memo").exists(), "shared memo dir on disk");

        // The status document surfaces the diagnostics channel (empty on
        // a clean journal) and the durable incremental flag.
        let status = warm.status_value();
        assert_eq!(
            status
                .get("journal_diagnostics")
                .and_then(|d| d.get("total"))
                .and_then(Json::as_u64),
            Some(0)
        );
        assert_eq!(
            status.get("incremental").and_then(Json::as_bool),
            Some(true)
        );
        queue.shutdown();
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn cancelling_a_queued_job_is_terminal_across_restart() {
        let mut cfg = test_config("cancel");
        // No workers would race us to the job, but use a long-running
        // blocker instead: submit with 0 queue workers is impossible
        // (min 1), so cancel before the worker picks it up by flooding.
        cfg.queue_workers = 1;
        let root = cfg.journal_root.clone();
        let queue = Queue::start(cfg.clone()).unwrap();
        // Occupy the single worker with a job heavy enough that the
        // victim is still queued when we cancel it.
        let blocker_spec = Json::parse(
            r#"{"name":"queue-blocker","apps":["blink","crc16"],"schemes":["gecko","nvp"],
                "seeds":[1,2,3,4],"workload":{"kind":"run_for","seconds":0.01}}"#,
        )
        .unwrap();
        let blocker = queue
            .submit(JobKind::Sweep, submission(blocker_spec, None))
            .unwrap();
        // ...then cancel one that is still queued behind it.
        let victim = queue
            .submit(JobKind::Sweep, submission(tiny_sweep_spec(), None))
            .unwrap();
        queue.cancel(&victim);
        assert_eq!(victim.state(), JobState::Cancelled);
        assert!(victim.dir.join("state.json").exists());
        blocker.wait_stopped(Duration::from_secs(120));
        queue.shutdown();
        drop(queue);

        let queue = Queue::start(cfg).unwrap();
        let restored = queue.job(victim.id).expect("cancelled job restored");
        assert_eq!(restored.state(), JobState::Cancelled);
        queue.shutdown();
        let _ = std::fs::remove_dir_all(&root);
    }
}
