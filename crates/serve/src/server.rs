//! The HTTP front end: request routing over the job queue, one thread per
//! connection, cooperative shutdown that drains running jobs to a clean
//! journal checkpoint.
//!
//! ## Endpoints (all JSON, all `Connection: close`)
//!
//! | Method   | Path                      | Purpose                                   |
//! |----------|---------------------------|-------------------------------------------|
//! | `GET`    | `/v1/healthz`             | liveness probe                            |
//! | `GET`    | `/v1/config`              | effective daemon config                   |
//! | `POST`   | `/v1/campaigns`           | submit a metric sweep                     |
//! | `POST`   | `/v1/checks`              | submit a crash-consistency check          |
//! | `GET`    | `/v1/jobs`                | list all jobs                             |
//! | `GET`    | `/v1/jobs/<id>`           | job status (`?wait_ms=` long-polls until  |
//! |          |                           | the job stops)                            |
//! | `GET`    | `/v1/jobs/<id>/events`    | telemetry stream (`?from=&wait_ms=`)      |
//! | `GET`    | `/v1/jobs/<id>/result`    | merged report (`?view=deterministic`)     |
//! | `DELETE` | `/v1/jobs/<id>`           | cancel                                    |
//! | `POST`   | `/v1/shutdown`            | graceful daemon shutdown                  |
//!
//! Errors are `{"error": "..."}` with 400 (bad input), 404 (no such
//! route/job), 405 (wrong method), 409 (result not ready), 413 (body too
//! large), or 503 (shutting down).

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use gecko_fleet::json::Json;
use gecko_fleet::spec_io::SpecError;
use gecko_fleet::supervisor::lock_unpoisoned;

use crate::config::ServeConfig;
use crate::http::{read_request, write_response, HttpError, Request};
use crate::queue::{JobKind, JobState, Queue, SubmitError};
use crate::wire;

/// Long-poll waits are capped so a forgotten client cannot pin a handler
/// thread forever.
const MAX_WAIT_MS: u64 = 30_000;

/// A running daemon: the bound listener, the job queue, and the accept
/// thread. Dropping it does *not* stop it — call [`Server::shutdown`].
pub struct Server {
    queue: Arc<Queue>,
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    shutdown_requested: Arc<(Mutex<bool>, Condvar)>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Binds `cfg.bind`, boots the queue (restoring jobs from the journal
    /// root), and starts accepting connections.
    ///
    /// # Errors
    ///
    /// Bind and journal-root failures.
    pub fn start(cfg: ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&cfg.bind)?;
        let addr = listener.local_addr()?;
        let max_body = cfg.max_body_bytes;
        let queue = Arc::new(Queue::start(cfg)?);
        let stop = Arc::new(AtomicBool::new(false));
        let shutdown_requested = Arc::new((Mutex::new(false), Condvar::new()));

        let accept_queue = Arc::clone(&queue);
        let accept_stop = Arc::clone(&stop);
        let accept_requested = Arc::clone(&shutdown_requested);
        let accept_thread = std::thread::Builder::new()
            .name("gecko-serve-accept".to_string())
            .spawn(move || {
                for stream in listener.incoming() {
                    if accept_stop.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    let queue = Arc::clone(&accept_queue);
                    let requested = Arc::clone(&accept_requested);
                    let _ = std::thread::Builder::new()
                        .name("gecko-serve-conn".to_string())
                        .spawn(move || handle_connection(stream, &queue, &requested, max_body));
                }
            })?;

        Ok(Server {
            queue,
            addr,
            stop,
            shutdown_requested,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address (resolves port 0 to the real ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The queue, for in-process drivers (smoke mode, benches).
    pub fn queue(&self) -> &Arc<Queue> {
        &self.queue
    }

    /// Blocks until a client asks for shutdown via `POST /v1/shutdown`
    /// (or another thread calls [`Server::request_shutdown`]).
    pub fn wait_for_shutdown_request(&self) {
        let (flag, cond) = &*self.shutdown_requested;
        let mut requested = lock_unpoisoned(flag);
        while !*requested {
            requested = cond
                .wait(requested)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// Flags the server for shutdown and wakes
    /// [`Server::wait_for_shutdown_request`].
    pub fn request_shutdown(&self) {
        let (flag, cond) = &*self.shutdown_requested;
        *lock_unpoisoned(flag) = true;
        cond.notify_all();
    }

    /// Graceful shutdown: stop accepting, then drain the queue — running
    /// jobs finish their in-flight run, journal it, and park as
    /// `interrupted` so the next boot resumes them bit-exactly.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection.
        if let Ok(stream) = TcpStream::connect(self.addr) {
            drop(stream);
        }
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
        self.queue.shutdown();
    }
}

/// One connection: parse, route, reply. Every error path still writes a
/// JSON response when the socket allows it.
fn handle_connection(
    mut stream: TcpStream,
    queue: &Arc<Queue>,
    shutdown_requested: &Arc<(Mutex<bool>, Condvar)>,
    max_body: usize,
) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(30)));
    let request = match read_request(&mut stream, max_body) {
        Ok(r) => r,
        Err(HttpError::ConnectionClosed) => return,
        Err(HttpError::TooLarge(m)) => {
            let _ = write_response(&mut stream, 413, &error_body(&m));
            return;
        }
        Err(HttpError::Malformed(m)) => {
            let _ = write_response(&mut stream, 400, &error_body(&m));
            return;
        }
        Err(HttpError::Io(_)) => return,
    };
    let (status, body) = route(&request, queue, shutdown_requested);
    let _ = write_response(&mut stream, status, &body);
}

fn error_body(message: &str) -> String {
    Json::Obj(vec![("error".to_string(), Json::Str(message.to_string()))]).encode()
}

/// Dispatches one request to its handler. Returns `(status, body)`.
fn route(
    request: &Request,
    queue: &Arc<Queue>,
    shutdown_requested: &Arc<(Mutex<bool>, Condvar)>,
) -> (u16, String) {
    let segments: Vec<&str> = request.path.split('/').filter(|s| !s.is_empty()).collect();
    let method = request.method.as_str();
    match segments.as_slice() {
        ["v1", "healthz"] => match method {
            "GET" => (200, r#"{"ok":true}"#.to_string()),
            _ => method_not_allowed("GET"),
        },
        ["v1", "config"] => match method {
            "GET" => (200, queue.config_value().encode()),
            _ => method_not_allowed("GET"),
        },
        ["v1", "campaigns"] => match method {
            "POST" => submit(queue, JobKind::Sweep, request),
            _ => method_not_allowed("POST"),
        },
        ["v1", "checks"] => match method {
            "POST" => submit(queue, JobKind::Check, request),
            _ => method_not_allowed("POST"),
        },
        ["v1", "jobs"] => match method {
            "GET" => {
                let jobs: Vec<Json> = queue.jobs().iter().map(|j| j.status_value()).collect();
                (
                    200,
                    Json::Obj(vec![("jobs".to_string(), Json::Arr(jobs))]).encode(),
                )
            }
            _ => method_not_allowed("GET"),
        },
        ["v1", "jobs", id] => match method {
            "GET" => with_job(queue, id, |job| match request.query_u64("wait_ms", 0) {
                Err(m) => (400, error_body(&m)),
                Ok(wait_ms) => {
                    if wait_ms > 0 {
                        job.wait_stopped(Duration::from_millis(wait_ms.min(MAX_WAIT_MS)));
                    }
                    (200, job.status_value().encode())
                }
            }),
            "DELETE" => with_job(queue, id, |job| {
                queue.cancel(job);
                (200, job.status_value().encode())
            }),
            _ => method_not_allowed("GET, DELETE"),
        },
        ["v1", "jobs", id, "events"] => match method {
            "GET" => with_job(queue, id, |job| {
                let (from, wait_ms) = match (
                    request.query_u64("from", 0),
                    request.query_u64("wait_ms", 0),
                ) {
                    (Ok(f), Ok(w)) => (f, w),
                    (Err(m), _) | (_, Err(m)) => return (400, error_body(&m)),
                };
                let batch = job
                    .sink
                    .wait_events(from, Duration::from_millis(wait_ms.min(MAX_WAIT_MS)));
                // The events are pre-encoded JSON objects; splice them
                // into the envelope verbatim rather than reparsing.
                let mut body = String::from("{\"events\":[");
                for (i, line) in batch.events.iter().enumerate() {
                    if i > 0 {
                        body.push(',');
                    }
                    body.push_str(line);
                }
                use std::fmt::Write as _;
                let _ = write!(
                    body,
                    "],\"next\":{},\"evicted\":{},\"closed\":{}}}",
                    batch.next, batch.evicted, batch.closed
                );
                (200, body)
            }),
            _ => method_not_allowed("GET"),
        },
        ["v1", "jobs", id, "result"] => match method {
            "GET" => with_job(queue, id, |job| {
                let state = job.state();
                if state != JobState::Done {
                    return (
                        409,
                        error_body(&format!(
                            "job {} has no result yet (state: {})",
                            job.id,
                            state.name()
                        )),
                    );
                }
                let file = match request.query_param("view") {
                    Some("deterministic") => "result.det.json",
                    Some(other) => {
                        return (
                            400,
                            error_body(&format!(
                                "unknown view `{other}` (expected `deterministic`)"
                            )),
                        )
                    }
                    None => "result.json",
                };
                match std::fs::read_to_string(job.dir.join(file)) {
                    Ok(text) => (200, text),
                    Err(e) => (500, error_body(&format!("reading {file}: {e}"))),
                }
            }),
            _ => method_not_allowed("GET"),
        },
        ["v1", "shutdown"] => match method {
            "POST" => {
                let (flag, cond) = &**shutdown_requested;
                *lock_unpoisoned(flag) = true;
                cond.notify_all();
                (202, r#"{"ok":true,"draining":true}"#.to_string())
            }
            _ => method_not_allowed("POST"),
        },
        _ => (404, error_body(&format!("no such route: {}", request.path))),
    }
}

fn method_not_allowed(allowed: &str) -> (u16, String) {
    (
        405,
        error_body(&format!("method not allowed (allowed: {allowed})")),
    )
}

fn with_job(
    queue: &Arc<Queue>,
    id: &str,
    f: impl FnOnce(&Arc<crate::queue::Job>) -> (u16, String),
) -> (u16, String) {
    let Ok(id) = id.parse::<u64>() else {
        return (
            400,
            error_body(&format!("job id must be an integer, got `{id}`")),
        );
    };
    match queue.job(id) {
        Some(job) => f(&job),
        None => (404, error_body(&format!("no such job: {id}"))),
    }
}

fn submit(queue: &Arc<Queue>, kind: JobKind, request: &Request) -> (u16, String) {
    let text = match std::str::from_utf8(&request.body) {
        Ok(t) => t,
        Err(_) => return (400, error_body("request body is not UTF-8")),
    };
    let submission = match wire::parse_submission(text) {
        Ok(s) => s,
        Err(SpecError::Parse(e)) => {
            return (400, error_body(&format!("invalid JSON: {e}")));
        }
        Err(SpecError::Decode(e)) => {
            return (400, error_body(&format!("invalid submission: {e}")));
        }
    };
    match queue.submit(kind, submission) {
        Ok(job) => (201, job.status_value().encode()),
        Err(SubmitError::BadSpec(m)) => (400, error_body(&m)),
        Err(SubmitError::Limit(m)) => (409, error_body(&m)),
        Err(SubmitError::ShuttingDown) => (503, error_body("daemon is shutting down")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::http_call;

    fn test_server(tag: &str) -> (Server, String, std::path::PathBuf) {
        let cfg = ServeConfig {
            bind: "127.0.0.1:0".to_string(),
            journal_root: std::env::temp_dir()
                .join(format!("gecko-serve-server-{}-{tag}", std::process::id())),
            ..ServeConfig::default()
        };
        let _ = std::fs::remove_dir_all(&cfg.journal_root);
        let root = cfg.journal_root.clone();
        let server = Server::start(cfg).unwrap();
        let addr = server.addr().to_string();
        (server, addr, root)
    }

    #[test]
    fn health_config_and_errors_route_correctly() {
        let (server, addr, root) = test_server("routes");
        let r = http_call(&addr, "GET", "/v1/healthz", "").unwrap();
        assert_eq!((r.status, r.body.as_str()), (200, r#"{"ok":true}"#));

        let r = http_call(&addr, "GET", "/v1/config", "").unwrap();
        assert_eq!(r.status, 200);
        assert!(r.body.contains("\"queue_workers\""), "{}", r.body);

        let r = http_call(&addr, "POST", "/v1/healthz", "").unwrap();
        assert_eq!(r.status, 405);
        let r = http_call(&addr, "GET", "/v1/nope", "").unwrap();
        assert_eq!(r.status, 404);
        let r = http_call(&addr, "GET", "/v1/jobs/99", "").unwrap();
        assert_eq!(r.status, 404);
        let r = http_call(&addr, "GET", "/v1/jobs/zebra", "").unwrap();
        assert_eq!(r.status, 400);
        let r = http_call(&addr, "POST", "/v1/campaigns", "{not json").unwrap();
        assert_eq!(r.status, 400);
        assert!(r.body.contains("invalid JSON"), "{}", r.body);
        let r = http_call(
            &addr,
            "POST",
            "/v1/campaigns",
            r#"{"name":"x","schemes":["geko"]}"#,
        )
        .unwrap();
        assert_eq!(r.status, 400);
        assert!(r.body.contains("geko"), "{}", r.body);

        server.shutdown();
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn shutdown_endpoint_wakes_the_waiter() {
        let (server, addr, root) = test_server("shutdown");
        let r = http_call(&addr, "POST", "/v1/shutdown", "").unwrap();
        assert_eq!(r.status, 202);
        server.wait_for_shutdown_request();
        server.shutdown();
        let _ = std::fs::remove_dir_all(&root);
    }
}
