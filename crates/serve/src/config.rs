//! Daemon configuration: defaults, a JSON config file, and CLI flags —
//! later layers override earlier ones (defaults < file < flags).

use std::path::PathBuf;

use gecko_fleet::json::Json;

/// Everything the daemon needs to boot. See [`ServeConfig::default`] for
/// the defaults and [`ServeConfig::from_args`] for the layering.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeConfig {
    /// Listen address (`host:port`; port `0` picks an ephemeral port).
    pub bind: String,
    /// Queue worker threads — how many jobs execute concurrently.
    pub queue_workers: usize,
    /// Default simulation workers per job (a submission may override,
    /// capped at [`ServeConfig::max_job_workers`]).
    pub job_workers: usize,
    /// Cap on per-job simulation workers.
    pub max_job_workers: usize,
    /// Root directory for job state: one `job-<id>/` directory per job
    /// holding `job.json`, segmented `journal/` + `telemetry/` logs, and
    /// the terminal `result.json`/`state.json`. Scanned at boot to reload
    /// the queue.
    pub journal_root: PathBuf,
    /// Maximum jobs tracked at once (queued + running + finished).
    pub max_jobs: usize,
    /// Maximum expanded grid items a single submission may request.
    pub max_items_per_job: usize,
    /// Maximum request body size (bytes); larger submissions get 413.
    pub max_body_bytes: usize,
    /// Per-job telemetry event ring-buffer capacity. Older events are
    /// evicted (and counted) once a client falls this far behind.
    pub event_buffer: usize,
    /// Retention: maximum finished (done/failed/cancelled) job
    /// directories kept on disk; the oldest are GCed first. 0 = keep
    /// everything.
    pub retain_jobs: usize,
    /// Retention: maximum total bytes of finished job directories. 0 =
    /// unlimited.
    pub retain_bytes: u64,
    /// Retention: maximum age in seconds of a finished job directory. 0 =
    /// unlimited.
    pub retain_age_secs: u64,
    /// Background pruner tick period in seconds. 0 disables the
    /// background thread (retention then only runs when a tick is driven
    /// explicitly, as tests do).
    pub prune_interval_secs: u64,
    /// Work budget per pruner tick — at most this many entries (job
    /// directories, log lines) are deleted per tick, so a tick never
    /// stalls the daemon. 0 = unlimited.
    pub prune_delete_limit: usize,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            bind: "127.0.0.1:4810".to_string(),
            queue_workers: 2,
            job_workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            max_job_workers: 64,
            journal_root: PathBuf::from("gecko-serve-data"),
            max_jobs: 256,
            max_items_per_job: 65_536,
            max_body_bytes: 1 << 20,
            event_buffer: 4096,
            retain_jobs: 0,
            retain_bytes: 0,
            retain_age_secs: 0,
            prune_interval_secs: 30,
            prune_delete_limit: 64,
        }
    }
}

impl ServeConfig {
    /// Renders the effective config as JSON (the `/v1/config` document).
    pub fn to_value(&self) -> Json {
        Json::Obj(vec![
            ("bind".into(), Json::Str(self.bind.clone())),
            ("queue_workers".into(), Json::U64(self.queue_workers as u64)),
            ("job_workers".into(), Json::U64(self.job_workers as u64)),
            (
                "max_job_workers".into(),
                Json::U64(self.max_job_workers as u64),
            ),
            (
                "journal_root".into(),
                Json::Str(self.journal_root.display().to_string()),
            ),
            ("max_jobs".into(), Json::U64(self.max_jobs as u64)),
            (
                "max_items_per_job".into(),
                Json::U64(self.max_items_per_job as u64),
            ),
            (
                "max_body_bytes".into(),
                Json::U64(self.max_body_bytes as u64),
            ),
            ("event_buffer".into(), Json::U64(self.event_buffer as u64)),
            ("retain_jobs".into(), Json::U64(self.retain_jobs as u64)),
            ("retain_bytes".into(), Json::U64(self.retain_bytes)),
            ("retain_age_secs".into(), Json::U64(self.retain_age_secs)),
            (
                "prune_interval_secs".into(),
                Json::U64(self.prune_interval_secs),
            ),
            (
                "prune_delete_limit".into(),
                Json::U64(self.prune_delete_limit as u64),
            ),
        ])
    }

    /// Applies a parsed JSON config document. Unknown keys are rejected
    /// (a typo'd limit silently ignored is a limit not applied).
    pub fn apply_json(&mut self, doc: &Json) -> Result<(), String> {
        let fields = doc
            .as_obj()
            .ok_or_else(|| format!("config must be a JSON object, got {}", doc.kind_name()))?;
        for (key, value) in fields {
            match key.as_str() {
                "bind" => {
                    self.bind = value
                        .as_str()
                        .ok_or_else(|| "bind: expected a string".to_string())?
                        .to_string();
                }
                "journal_root" => {
                    self.journal_root = PathBuf::from(
                        value
                            .as_str()
                            .ok_or_else(|| "journal_root: expected a string".to_string())?,
                    );
                }
                "queue_workers" => self.queue_workers = usize_field(key, value)?.max(1),
                "job_workers" => self.job_workers = usize_field(key, value)?.max(1),
                "max_job_workers" => self.max_job_workers = usize_field(key, value)?.max(1),
                "max_jobs" => self.max_jobs = usize_field(key, value)?.max(1),
                "max_items_per_job" => self.max_items_per_job = usize_field(key, value)?.max(1),
                "max_body_bytes" => self.max_body_bytes = usize_field(key, value)?.max(1024),
                "event_buffer" => self.event_buffer = usize_field(key, value)?.max(16),
                "retain_jobs" => self.retain_jobs = usize_field(key, value)?,
                "retain_bytes" => self.retain_bytes = usize_field(key, value)? as u64,
                "retain_age_secs" => self.retain_age_secs = usize_field(key, value)? as u64,
                "prune_interval_secs" => {
                    self.prune_interval_secs = usize_field(key, value)? as u64;
                }
                "prune_delete_limit" => self.prune_delete_limit = usize_field(key, value)?,
                other => return Err(format!("unknown config key `{other}`")),
            }
        }
        Ok(())
    }

    /// Loads a JSON config file into this config.
    ///
    /// # Errors
    ///
    /// I/O, parse (with byte offset), and unknown-key errors, as strings
    /// ready for the CLI.
    pub fn apply_file(&mut self, path: &std::path::Path) -> Result<(), String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("reading {}: {e}", path.display()))?;
        let doc = Json::parse(&text).map_err(|e| format!("parsing {}: {e}", path.display()))?;
        self.apply_json(&doc)
            .map_err(|e| format!("{}: {e}", path.display()))
    }

    /// Builds the effective config from CLI args: `--config FILE` loads a
    /// JSON file first, then individual flags override it.
    ///
    /// Flags: `--bind ADDR`, `--data DIR`, `--queue-workers N`,
    /// `--job-workers N`, `--max-jobs N`, `--max-items N`,
    /// `--max-body-bytes N`, `--event-buffer N`, `--retain-jobs N`,
    /// `--retain-bytes N`, `--retain-age-secs N`,
    /// `--prune-interval-secs N`, `--prune-delete-limit N`.
    ///
    /// # Errors
    ///
    /// A usage string for unknown/valueless flags and file errors.
    pub fn from_args(args: &[String]) -> Result<ServeConfig, String> {
        let mut cfg = ServeConfig::default();
        // File layer first, regardless of flag order.
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            if arg == "--config" {
                let path = it.next().ok_or("--config requires a file path")?;
                cfg.apply_file(std::path::Path::new(path))?;
            }
        }
        // Flag layer.
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            let mut value = |flag: &str| {
                it.next()
                    .map(String::as_str)
                    .ok_or_else(|| format!("{flag} requires a value"))
            };
            match arg.as_str() {
                "--config" => {
                    value("--config")?;
                }
                "--bind" => cfg.bind = value("--bind")?.to_string(),
                "--data" => cfg.journal_root = PathBuf::from(value("--data")?),
                "--queue-workers" => cfg.queue_workers = usize_flag("--queue-workers", &mut value)?,
                "--job-workers" => cfg.job_workers = usize_flag("--job-workers", &mut value)?,
                "--max-jobs" => cfg.max_jobs = usize_flag("--max-jobs", &mut value)?,
                "--max-items" => cfg.max_items_per_job = usize_flag("--max-items", &mut value)?,
                "--max-body-bytes" => {
                    cfg.max_body_bytes = usize_flag("--max-body-bytes", &mut value)?
                }
                "--event-buffer" => cfg.event_buffer = usize_flag("--event-buffer", &mut value)?,
                "--retain-jobs" => cfg.retain_jobs = usize_flag("--retain-jobs", &mut value)?,
                "--retain-bytes" => {
                    cfg.retain_bytes = usize_flag("--retain-bytes", &mut value)? as u64
                }
                "--retain-age-secs" => {
                    cfg.retain_age_secs = usize_flag("--retain-age-secs", &mut value)? as u64
                }
                "--prune-interval-secs" => {
                    cfg.prune_interval_secs =
                        usize_flag("--prune-interval-secs", &mut value)? as u64
                }
                "--prune-delete-limit" => {
                    cfg.prune_delete_limit = usize_flag("--prune-delete-limit", &mut value)?
                }
                other => return Err(format!("unknown flag `{other}` (see --help)")),
            }
        }
        cfg.queue_workers = cfg.queue_workers.max(1);
        cfg.job_workers = cfg.job_workers.clamp(1, cfg.max_job_workers);
        Ok(cfg)
    }
}

fn usize_field(key: &str, value: &Json) -> Result<usize, String> {
    value
        .as_u64()
        .map(|v| v as usize)
        .ok_or_else(|| format!("{key}: expected a non-negative integer"))
}

fn usize_flag<'a>(
    flag: &str,
    value: &mut impl FnMut(&str) -> Result<&'a str, String>,
) -> Result<usize, String> {
    value(flag)?
        .parse()
        .map_err(|_| format!("{flag}: expected a non-negative integer"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_override_file_overrides_defaults() {
        let dir = std::env::temp_dir().join(format!("gecko-serve-cfg-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let file = dir.join("serve.json");
        std::fs::write(
            &file,
            r#"{"bind":"127.0.0.1:9000","queue_workers":3,"event_buffer":128}"#,
        )
        .unwrap();
        let args: Vec<String> = [
            "--config",
            file.to_str().unwrap(),
            "--bind",
            "127.0.0.1:0",
            "--job-workers",
            "2",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let cfg = ServeConfig::from_args(&args).unwrap();
        assert_eq!(cfg.bind, "127.0.0.1:0", "flag beats file");
        assert_eq!(cfg.queue_workers, 3, "file beats default");
        assert_eq!(cfg.event_buffer, 128);
        assert_eq!(cfg.job_workers, 2);
        assert_eq!(cfg.max_jobs, ServeConfig::default().max_jobs);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bad_config_is_actionable() {
        let mut cfg = ServeConfig::default();
        let doc = Json::parse(r#"{"queue_wrkers":2}"#).unwrap();
        let e = cfg.apply_json(&doc).unwrap_err();
        assert!(e.contains("queue_wrkers"), "{e}");
        let e = ServeConfig::from_args(&["--frobnicate".to_string()]).unwrap_err();
        assert!(e.contains("--frobnicate"), "{e}");
        let e = ServeConfig::from_args(&["--bind".to_string()]).unwrap_err();
        assert!(e.contains("requires a value"), "{e}");
    }

    #[test]
    fn config_document_round_trips() {
        let cfg = ServeConfig::default();
        let doc = cfg.to_value();
        let mut back = ServeConfig::default();
        back.apply_json(&doc).unwrap();
        assert_eq!(back, cfg);
    }
}
