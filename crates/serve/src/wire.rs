//! Wire formats owned by the daemon: the checker-spec JSON codec, check
//! report documents, the submit envelope, and telemetry event framing.
//!
//! Campaign sweeps already have their codec in [`gecko_fleet::spec_io`];
//! this module adds the pieces the fleet crate cannot host (anything
//! touching `gecko_check` types) plus the HTTP-only envelopes. The same
//! rules apply: strict unknown-field rejection, path-carrying errors, and
//! encoding that reuses [`gecko_sim::report::Value`] formatting so
//! encode → decode → encode is byte-identical.

use gecko_check::{CheckReport, CheckSpec, ExploreConfig};
use gecko_fleet::json::Json;
use gecko_fleet::spec_io::{DecodeError, SpecError};
use gecko_fleet::supervisor::RunFailure;
use gecko_fleet::telemetry::Event;
use gecko_fleet::SchemeKind;
use gecko_sim::report::Record;

// ---------------------------------------------------------------------------
// Path-carrying accessors (same shape as spec_io's private helpers)
// ---------------------------------------------------------------------------

fn err(path: &str, message: impl Into<String>) -> DecodeError {
    DecodeError {
        path: path.to_string(),
        message: message.into(),
    }
}

fn type_err(v: &Json, path: &str, wanted: &str) -> DecodeError {
    err(path, format!("expected {wanted}, got {}", v.kind_name()))
}

fn as_str<'a>(v: &'a Json, path: &str) -> Result<&'a str, DecodeError> {
    v.as_str().ok_or_else(|| type_err(v, path, "a string"))
}

fn as_u64(v: &Json, path: &str) -> Result<u64, DecodeError> {
    v.as_u64()
        .ok_or_else(|| type_err(v, path, "a non-negative integer"))
}

fn as_u32(v: &Json, path: &str) -> Result<u32, DecodeError> {
    u32::try_from(as_u64(v, path)?)
        .map_err(|_| type_err(v, path, "an integer that fits in 32 bits"))
}

fn as_bool(v: &Json, path: &str) -> Result<bool, DecodeError> {
    v.as_bool().ok_or_else(|| type_err(v, path, "a boolean"))
}

fn as_arr<'a>(v: &'a Json, path: &str) -> Result<&'a [Json], DecodeError> {
    v.as_arr().ok_or_else(|| type_err(v, path, "an array"))
}

fn as_obj<'a>(v: &'a Json, path: &str) -> Result<&'a [(String, Json)], DecodeError> {
    v.as_obj().ok_or_else(|| type_err(v, path, "an object"))
}

fn get<'a>(v: &'a Json, path: &str, key: &str) -> Result<&'a Json, DecodeError> {
    as_obj(v, path)?;
    v.get(key)
        .ok_or_else(|| err(path, format!("missing required field `{key}`")))
}

/// Optional-field lookup; an explicit `null` reads as absent.
fn opt<'a>(v: &'a Json, key: &str) -> Option<&'a Json> {
    match v.get(key) {
        Some(Json::Null) | None => None,
        Some(found) => Some(found),
    }
}

fn check_keys(v: &Json, path: &str, allowed: &[&str]) -> Result<(), DecodeError> {
    for (key, _) in as_obj(v, path)? {
        if !allowed.contains(&key.as_str()) {
            return Err(err(
                path,
                format!(
                    "unknown field `{key}` (expected one of: {})",
                    allowed.join(", ")
                ),
            ));
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// CheckSpec codec
// ---------------------------------------------------------------------------

/// Encodes a checker spec as a JSON tree. Every field is written,
/// including defaulted ones, so the document is self-describing. Apps
/// encode by *name*: the wire format only reaches the bundled benchmark
/// registry, not arbitrary in-memory programs.
pub fn check_spec_value(spec: &CheckSpec) -> Json {
    let e = &spec.explore;
    Json::Obj(vec![
        ("name".into(), Json::Str(spec.name.clone())),
        (
            "apps".into(),
            Json::Arr(
                spec.apps
                    .iter()
                    .map(|a| Json::Str(a.name.to_string()))
                    .collect(),
            ),
        ),
        (
            "schemes".into(),
            Json::Arr(
                spec.schemes
                    .iter()
                    .map(|s| Json::Str(s.slug().to_string()))
                    .collect(),
            ),
        ),
        (
            "explore".into(),
            Json::Obj(vec![
                ("depth".into(), Json::U64(e.depth as u64)),
                (
                    "power_failure_windows".into(),
                    Json::Bool(e.power_failure_windows),
                ),
                ("emi_windows".into(), Json::Bool(e.emi_windows)),
                ("fault_windows".into(), Json::Bool(e.fault_windows)),
                ("refail_horizon".into(), Json::U64(e.refail_horizon)),
                ("memoize".into(), Json::Bool(e.memoize)),
                (
                    "max_windows".into(),
                    e.max_windows.map_or(Json::Null, Json::U64),
                ),
                ("seed".into(), Json::U64(e.seed)),
                ("fast_forward".into(), Json::Bool(e.fast_forward)),
            ]),
        ),
        (
            "compile".into(),
            Json::Obj(vec![
                (
                    "wcet_budget_cycles".into(),
                    spec.compile
                        .wcet_budget_cycles
                        .map_or(Json::Null, Json::U64),
                ),
                ("prune".into(), Json::Bool(spec.compile.prune)),
                (
                    "max_slice_insts".into(),
                    Json::U64(spec.compile.max_slice_insts as u64),
                ),
            ]),
        ),
        ("chunk_windows".into(), Json::U64(spec.chunk_windows)),
        ("shrink".into(), Json::Bool(spec.shrink)),
        ("shrink_budget".into(), Json::U64(spec.shrink_budget)),
    ])
}

/// [`check_spec_value`] rendered as a JSON string.
pub fn check_spec_to_json(spec: &CheckSpec) -> String {
    check_spec_value(spec).encode()
}

/// Decodes a checker spec from a JSON tree. Only `name` is required;
/// everything else defaults as in [`CheckSpec::new`]. App names resolve
/// through the bundled benchmark registry; schemes through
/// [`SchemeKind::from_name`].
pub fn check_spec_from_value(v: &Json, path: &str) -> Result<CheckSpec, DecodeError> {
    let sub = |key: &str| {
        if path.is_empty() {
            key.to_string()
        } else {
            format!("{path}.{key}")
        }
    };
    check_keys(
        v,
        path,
        &[
            "name",
            "apps",
            "schemes",
            "explore",
            "compile",
            "chunk_windows",
            "shrink",
            "shrink_budget",
        ],
    )?;
    let name = as_str(get(v, path, "name")?, &sub("name"))?;
    let mut spec = CheckSpec::new(name);

    if let Some(apps) = opt(v, "apps") {
        let apath = sub("apps");
        for (i, entry) in as_arr(apps, &apath)?.iter().enumerate() {
            let epath = format!("{apath}[{i}]");
            let app_name = as_str(entry, &epath)?;
            let app = gecko_apps::app_by_name(app_name).ok_or_else(|| {
                let known: Vec<&str> = gecko_apps::all_apps().iter().map(|a| a.name).collect();
                err(
                    &epath,
                    format!(
                        "unknown app `{app_name}` (known apps: {})",
                        known.join(", ")
                    ),
                )
            })?;
            spec.apps.push(app);
        }
    }
    if let Some(schemes) = opt(v, "schemes") {
        let spath = sub("schemes");
        for (i, entry) in as_arr(schemes, &spath)?.iter().enumerate() {
            let epath = format!("{spath}[{i}]");
            let slug = as_str(entry, &epath)?;
            let scheme = SchemeKind::from_name(slug).ok_or_else(|| {
                err(
                    &epath,
                    format!(
                        "unknown scheme `{slug}` (expected nvp, ratchet, gecko, gecko-no-prune)"
                    ),
                )
            })?;
            spec.schemes.push(scheme);
        }
    }
    if let Some(explore) = opt(v, "explore") {
        let epath = sub("explore");
        check_keys(
            explore,
            &epath,
            &[
                "depth",
                "power_failure_windows",
                "emi_windows",
                "fault_windows",
                "refail_horizon",
                "memoize",
                "max_windows",
                "seed",
                "fast_forward",
            ],
        )?;
        let mut e = ExploreConfig::default();
        if let Some(d) = opt(explore, "depth") {
            e.depth = as_u32(d, &format!("{epath}.depth"))?;
        }
        if let Some(p) = opt(explore, "power_failure_windows") {
            e.power_failure_windows = as_bool(p, &format!("{epath}.power_failure_windows"))?;
        }
        if let Some(w) = opt(explore, "emi_windows") {
            e.emi_windows = as_bool(w, &format!("{epath}.emi_windows"))?;
        }
        if let Some(w) = opt(explore, "fault_windows") {
            e.fault_windows = as_bool(w, &format!("{epath}.fault_windows"))?;
        }
        if let Some(h) = opt(explore, "refail_horizon") {
            e.refail_horizon = as_u64(h, &format!("{epath}.refail_horizon"))?;
        }
        if let Some(m) = opt(explore, "memoize") {
            e.memoize = as_bool(m, &format!("{epath}.memoize"))?;
        }
        // `max_windows: null` and an absent key both mean "every window";
        // opt() folds them together, matching the encoder's Null.
        if let Some(m) = opt(explore, "max_windows") {
            e.max_windows = Some(as_u64(m, &format!("{epath}.max_windows"))?);
        }
        if let Some(s) = opt(explore, "seed") {
            e.seed = as_u64(s, &format!("{epath}.seed"))?;
        }
        if let Some(f) = opt(explore, "fast_forward") {
            e.fast_forward = as_bool(f, &format!("{epath}.fast_forward"))?;
        }
        spec.explore = e;
    }
    if let Some(compile) = opt(v, "compile") {
        let cpath = sub("compile");
        check_keys(
            compile,
            &cpath,
            &["wcet_budget_cycles", "prune", "max_slice_insts"],
        )?;
        // An explicit `"wcet_budget_cycles": null` disables slicing, which
        // is different from omitting the key (keep the default budget) —
        // so this one field cannot go through opt().
        if let Some((_, budget)) = as_obj(compile, &cpath)?
            .iter()
            .find(|(k, _)| k == "wcet_budget_cycles")
        {
            spec.compile.wcet_budget_cycles = match budget {
                Json::Null => None,
                other => Some(as_u64(other, &format!("{cpath}.wcet_budget_cycles"))?),
            };
        }
        if let Some(p) = opt(compile, "prune") {
            spec.compile.prune = as_bool(p, &format!("{cpath}.prune"))?;
        }
        if let Some(m) = opt(compile, "max_slice_insts") {
            spec.compile.max_slice_insts = as_u64(m, &format!("{cpath}.max_slice_insts"))? as usize;
        }
    }
    if let Some(c) = opt(v, "chunk_windows") {
        let n = as_u64(c, &sub("chunk_windows"))?;
        if n == 0 {
            return Err(err(&sub("chunk_windows"), "must be at least 1"));
        }
        spec.chunk_windows = n;
    }
    if let Some(s) = opt(v, "shrink") {
        spec.shrink = as_bool(s, &sub("shrink"))?;
    }
    if let Some(b) = opt(v, "shrink_budget") {
        spec.shrink_budget = as_u64(b, &sub("shrink_budget"))?;
    }
    Ok(spec)
}

/// Parses and decodes a checker spec from JSON text.
pub fn check_spec_from_json(text: &str) -> Result<CheckSpec, SpecError> {
    let doc = Json::parse(text)?;
    Ok(check_spec_from_value(&doc, "")?)
}

// ---------------------------------------------------------------------------
// CheckReport documents
// ---------------------------------------------------------------------------

fn failure_value(f: &RunFailure) -> Json {
    Json::Obj(vec![
        ("kind".into(), Json::Str(f.kind().name().to_string())),
        (
            "item".into(),
            f.item().map_or(Json::Null, |i| Json::U64(i as u64)),
        ),
        ("run_key".into(), f.run_key().map_or(Json::Null, Json::U64)),
        ("detail".into(), Json::Str(f.describe())),
    ])
}

fn check_report_value(report: &CheckReport, deterministic: bool) -> Json {
    let t = &report.totals;
    let mut fields = vec![
        ("check".into(), Json::Str(report.name.clone())),
        ("digest".into(), Json::U64(report.deterministic_digest())),
        ("clean".into(), Json::Bool(report.is_clean())),
    ];
    if !deterministic {
        let c = &report.counters;
        fields.push(("workers".into(), Json::U64(report.workers as u64)));
        fields.push(("halted".into(), Json::Bool(report.halted)));
        // Which persisted memo generation backs this verdict — a
        // proof-of-clean can cite it. Full doc only: the deterministic
        // document must be byte-identical cold and warm.
        fields.push((
            "memo_generation".into(),
            report.memo_generation.map_or(Json::Null, Json::U64),
        ));
        fields.push(("wall_s".into(), Json::F64(report.wall_s)));
        fields.push((
            "counters".into(),
            Json::Obj(vec![
                ("items".into(), Json::U64(c.items)),
                ("compile_misses".into(), Json::U64(c.compile_misses)),
                ("compile_hits".into(), Json::U64(c.compile_hits)),
                ("failures".into(), Json::U64(c.failures)),
                ("retries".into(), Json::U64(c.retries)),
                ("resumed".into(), Json::U64(c.resumed)),
                ("dropped_records".into(), Json::U64(c.dropped_records)),
                (
                    "journal_diagnostics".into(),
                    Json::U64(c.journal_diagnostics),
                ),
                ("memo_windows".into(), Json::U64(c.memo_windows)),
                ("frontier_steals".into(), Json::U64(c.frontier_steals)),
                ("batched_runs".into(), Json::U64(c.batched_runs)),
                ("batch_spans".into(), Json::U64(c.batch_spans)),
                ("batch_fallbacks".into(), Json::U64(c.batch_fallbacks)),
                (
                    "batch_occupancy_permille".into(),
                    Json::U64(c.batch_occupancy_permille),
                ),
            ]),
        ));
    }
    fields.push((
        "totals".into(),
        Json::Obj(vec![
            ("windows".into(), Json::U64(t.windows)),
            ("forks".into(), Json::U64(t.forks)),
            ("explored".into(), Json::U64(t.explored)),
            ("memo_hits".into(), Json::U64(t.memo_hits)),
            ("steps".into(), Json::U64(t.steps)),
            ("violations".into(), Json::U64(t.violations)),
        ]),
    ));
    fields.push((
        "results".into(),
        Json::Arr(
            report
                .results
                .iter()
                .map(|pair| {
                    Json::Obj(
                        pair.to_row()
                            .fields()
                            .into_iter()
                            .map(|(name, value)| (name.to_string(), Json::from_value(&value)))
                            .collect(),
                    )
                })
                .collect(),
        ),
    ));
    fields.push((
        "failures".into(),
        Json::Arr(report.failures.iter().map(failure_value).collect()),
    ));
    Json::Obj(fields)
}

/// Encodes a merged check report as JSON, wall-clock fields included.
pub fn check_report_to_json(report: &CheckReport) -> String {
    check_report_value(report, false).encode()
}

/// Encodes only the *deterministic* payload of a check report: name,
/// digest, verdict rows, totals, failures — no worker count, wall clock,
/// or cache/resume counters. Byte-identical across worker counts and
/// kill/resume sessions.
pub fn check_report_deterministic_json(report: &CheckReport) -> String {
    check_report_value(report, true).encode()
}

// ---------------------------------------------------------------------------
// Submit envelope
// ---------------------------------------------------------------------------

/// A parsed job submission: the raw spec document plus queue-level
/// options that are not part of the spec itself.
#[derive(Debug, Clone)]
pub struct Submission {
    /// The spec document (campaign or check, decoded later by kind).
    pub spec: Json,
    /// Simulation workers for this job (`None` = daemon default).
    pub workers: Option<usize>,
    /// Stop the pool after journaling this many runs — the deterministic
    /// interruption hook the kill/restart/resume tests drive over HTTP.
    pub halt_after: Option<u64>,
    /// Lock-step devices per worker claim (`None` = per-item execution).
    /// Purely a throughput knob: results and digests are
    /// batch-size-invariant (DESIGN.md §16).
    pub batch: Option<usize>,
    /// Check jobs only: attach the daemon's durable memo store for this
    /// spec, so a re-submission answers already-explored windows from
    /// disk (DESIGN.md §18). Results and digests are identical either
    /// way; this is purely a wall-clock knob.
    pub incremental: bool,
}

/// Parses a submission body. Two shapes are accepted:
///
/// * an envelope `{"spec": {...}, "workers": N, "halt_after": N, "batch": N,
///   "incremental": B}`, or
/// * a bare spec document (everything else) — the common curl case.
pub fn parse_submission(text: &str) -> Result<Submission, SpecError> {
    let doc = Json::parse(text)?;
    if opt(&doc, "spec").is_none() {
        return Ok(Submission {
            spec: doc,
            workers: None,
            halt_after: None,
            batch: None,
            incremental: false,
        });
    }
    check_keys(
        &doc,
        "",
        &["spec", "workers", "halt_after", "batch", "incremental"],
    )?;
    let spec = get(&doc, "", "spec")?.clone();
    let workers = opt(&doc, "workers")
        .map(|w| as_u64(w, "workers").map(|n| n as usize))
        .transpose()?;
    if workers == Some(0) {
        return Err(err("workers", "must be at least 1").into());
    }
    let halt_after = opt(&doc, "halt_after")
        .map(|h| as_u64(h, "halt_after"))
        .transpose()?;
    let batch = opt(&doc, "batch")
        .map(|b| as_u64(b, "batch").map(|n| n as usize))
        .transpose()?;
    if batch == Some(0) {
        return Err(err("batch", "must be at least 1").into());
    }
    let incremental = opt(&doc, "incremental")
        .map(|b| as_bool(b, "incremental"))
        .transpose()?
        .unwrap_or(false);
    Ok(Submission {
        spec,
        workers,
        halt_after,
        batch,
        incremental,
    })
}

// ---------------------------------------------------------------------------
// Telemetry event framing
// ---------------------------------------------------------------------------

/// Renders one telemetry event as the streaming wire object: a `seq`
/// number first (so clients can resume `?from=` after a dropped poll),
/// then the event's own fields via its [`Record`] projection.
pub fn event_value(seq: u64, event: &Event) -> Json {
    let mut fields = vec![("seq".to_string(), Json::U64(seq))];
    fields.extend(
        event
            .fields()
            .into_iter()
            .map(|(name, value)| (name.to_string(), Json::from_value(&value))),
    );
    Json::Obj(fields)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gecko_sim::report::Value;

    fn fancy_check_spec() -> CheckSpec {
        CheckSpec::new("serve-check")
            .app_names(&["blink", "crc16"])
            .unwrap()
            .schemes([SchemeKind::Gecko, SchemeKind::Nvp])
            .explore(
                ExploreConfig::default()
                    .with_depth(2)
                    .with_max_windows(64)
                    .with_fault_windows(true),
            )
            .chunk_windows(32)
    }

    #[test]
    fn check_spec_round_trips_typed_and_textually() {
        let spec = fancy_check_spec();
        let text = check_spec_to_json(&spec);
        let back = check_spec_from_json(&text).unwrap();
        assert_eq!(back.name, spec.name);
        assert_eq!(
            back.apps.iter().map(|a| a.name).collect::<Vec<_>>(),
            spec.apps.iter().map(|a| a.name).collect::<Vec<_>>()
        );
        assert_eq!(back.schemes, spec.schemes);
        assert_eq!(back.explore, spec.explore);
        assert_eq!(back.chunk_windows, spec.chunk_windows);
        assert_eq!(back.shrink, spec.shrink);
        assert_eq!(back.shrink_budget, spec.shrink_budget);
        // Textual fixpoint: re-encoding the decoded spec is byte-identical.
        assert_eq!(check_spec_to_json(&back), text);
    }

    #[test]
    fn minimal_check_spec_uses_defaults() {
        let spec = check_spec_from_json(r#"{"name":"tiny"}"#).unwrap();
        let fresh = CheckSpec::new("tiny");
        assert_eq!(spec.explore, fresh.explore);
        assert_eq!(spec.chunk_windows, fresh.chunk_windows);
        assert_eq!(spec.shrink, fresh.shrink);
        assert!(spec.apps.is_empty());
    }

    #[test]
    fn check_decode_errors_carry_paths() {
        let e = check_spec_from_json(r#"{"name":"x","apps":["blnk"]}"#).unwrap_err();
        let msg = e.to_string();
        assert!(msg.contains("apps[0]"), "{msg}");
        assert!(msg.contains("blnk"), "{msg}");
        assert!(msg.contains("blink"), "known-app listing missing: {msg}");

        let e = check_spec_from_json(r#"{"name":"x","schemes":["geko"]}"#).unwrap_err();
        assert!(e.to_string().contains("schemes[0]"), "{e}");

        let e = check_spec_from_json(r#"{"name":"x","explore":{"depht":2}}"#).unwrap_err();
        let msg = e.to_string();
        assert!(msg.contains("depht"), "{msg}");
        assert!(
            msg.contains("refail_horizon"),
            "accepted-keys listing: {msg}"
        );

        let e = check_spec_from_json(r#"{"name":"x","chunk_windows":0}"#).unwrap_err();
        assert!(e.to_string().contains("at least 1"), "{e}");
    }

    #[test]
    fn submission_envelope_and_bare_spec_both_parse() {
        let bare = parse_submission(r#"{"name":"sweep"}"#).unwrap();
        assert_eq!(bare.spec.get("name").and_then(Json::as_str), Some("sweep"));
        assert_eq!(bare.workers, None);
        assert_eq!(bare.halt_after, None);
        assert_eq!(bare.batch, None);

        assert!(!bare.incremental);

        let env = parse_submission(
            r#"{"spec":{"name":"sweep"},"workers":4,"halt_after":2,"batch":64,"incremental":true}"#,
        )
        .unwrap();
        assert_eq!(env.spec.get("name").and_then(Json::as_str), Some("sweep"));
        assert_eq!(env.workers, Some(4));
        assert_eq!(env.halt_after, Some(2));
        assert_eq!(env.batch, Some(64));
        assert!(env.incremental);

        let e = parse_submission(r#"{"spec":{"name":"s"},"wrokers":4}"#).unwrap_err();
        assert!(e.to_string().contains("wrokers"), "{e}");
        let e = parse_submission(r#"{"spec":{"name":"s"},"workers":0}"#).unwrap_err();
        assert!(e.to_string().contains("at least 1"), "{e}");
        let e = parse_submission(r#"{"spec":{"name":"s"},"batch":0}"#).unwrap_err();
        assert!(e.to_string().contains("at least 1"), "{e}");
    }

    #[test]
    fn event_framing_prepends_seq() {
        let event = Event {
            kind: "item_finished",
            fields: vec![("item", Value::U64(3)), ("wall_ns", Value::U64(125))],
        };
        let doc = event_value(7, &event);
        assert_eq!(
            doc.encode(),
            r#"{"seq":7,"event":"item_finished","item":3,"wall_ns":125}"#
        );
    }
}
