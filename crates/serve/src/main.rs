//! `gecko-serve` — boot the campaign-service daemon.
//!
//! ```text
//! gecko-serve [--config FILE] [--bind ADDR] [--data DIR]
//!             [--queue-workers N] [--job-workers N] [--max-jobs N]
//!             [--max-items N] [--max-body-bytes N] [--event-buffer N]
//! ```
//!
//! The daemon prints its bound address (port 0 resolves to an ephemeral
//! port), serves until `POST /v1/shutdown`, then drains running jobs to a
//! clean journal checkpoint and exits. Interrupted jobs resume on the
//! next boot from the same `--data` directory.

use gecko_serve::{ServeConfig, Server};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!(
            "gecko-serve: campaign-service daemon\n\n\
             usage: gecko-serve [--config FILE] [--bind ADDR] [--data DIR]\n\
                    [--queue-workers N] [--job-workers N] [--max-jobs N]\n\
                    [--max-items N] [--max-body-bytes N] [--event-buffer N]\n\n\
             endpoints: GET /v1/healthz /v1/config /v1/jobs[/<id>[/events|/result]]\n\
                        POST /v1/campaigns /v1/checks /v1/shutdown, DELETE /v1/jobs/<id>"
        );
        return;
    }
    let cfg = match ServeConfig::from_args(&args) {
        Ok(cfg) => cfg,
        Err(e) => {
            eprintln!("gecko-serve: {e}");
            std::process::exit(2);
        }
    };
    let server = match Server::start(cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("gecko-serve: failed to start: {e}");
            std::process::exit(1);
        }
    };
    println!("gecko-serve listening on {}", server.addr());
    server.wait_for_shutdown_request();
    println!("gecko-serve draining (running jobs checkpoint to their journals)...");
    server.shutdown();
    println!("gecko-serve stopped");
}
