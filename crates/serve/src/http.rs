//! Minimal HTTP/1.1 over `std::net`: just enough of the protocol for a
//! localhost JSON API — request parsing with size limits, response
//! writing, and a tiny blocking client for tests and smoke drivers.
//!
//! Deliberately out of scope: keep-alive (every response is
//! `Connection: close`), chunked transfer encoding, TLS, compression.
//! The daemon serves trusted lab networks, not the open internet.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Maximum bytes of request head (request line + headers) we accept.
const MAX_HEAD_BYTES: usize = 16 * 1024;

/// A parsed HTTP request: method, percent-decoded-free path, query
/// string, and body.
#[derive(Debug, Clone)]
pub struct Request {
    /// Upper-cased method token (`GET`, `POST`, `DELETE`, ...).
    pub method: String,
    /// Path component before `?`, e.g. `/v1/jobs/3`.
    pub path: String,
    /// Raw query string after `?` (empty when absent).
    pub query: String,
    /// Request body bytes (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
}

impl Request {
    /// Looks up a query parameter by key (`?from=3&wait_ms=500`).
    /// No percent-decoding: the API's values are all integers/tokens.
    pub fn query_param(&self, key: &str) -> Option<&str> {
        self.query.split('&').find_map(|pair| {
            let (k, v) = pair.split_once('=')?;
            (k == key).then_some(v)
        })
    }

    /// Parses a query parameter as `u64`, falling back to `default` when
    /// absent; `Err` carries the offending key for a 400 reply.
    pub fn query_u64(&self, key: &str, default: u64) -> Result<u64, String> {
        match self.query_param(key) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|_| format!("query parameter `{key}` must be an integer, got `{raw}`")),
        }
    }
}

/// How request parsing failed — mapped to a status code by the server.
#[derive(Debug)]
pub enum HttpError {
    /// Socket closed before a full request arrived.
    ConnectionClosed,
    /// Malformed request line or headers (→ 400).
    Malformed(String),
    /// Body or head exceeded the configured limit (→ 413).
    TooLarge(String),
    /// Underlying I/O failure (timeout, reset).
    Io(std::io::Error),
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::ConnectionClosed => write!(f, "connection closed mid-request"),
            HttpError::Malformed(m) => write!(f, "malformed request: {m}"),
            HttpError::TooLarge(m) => write!(f, "request too large: {m}"),
            HttpError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

/// Reads and parses one HTTP/1.1 request from `stream`.
///
/// `max_body` bounds `Content-Length`; bigger bodies are rejected before
/// any body byte is read so a hostile client can't make us buffer
/// gigabytes.
pub fn read_request(stream: &mut TcpStream, max_body: usize) -> Result<Request, HttpError> {
    let mut reader = BufReader::new(stream);
    let mut head = String::new();
    let mut head_bytes = 0usize;

    let mut request_line = String::new();
    let n = reader.read_line(&mut request_line).map_err(HttpError::Io)?;
    if n == 0 {
        return Err(HttpError::ConnectionClosed);
    }
    head_bytes += n;

    let mut content_length = 0usize;
    loop {
        head.clear();
        let n = reader.read_line(&mut head).map_err(HttpError::Io)?;
        if n == 0 {
            return Err(HttpError::ConnectionClosed);
        }
        head_bytes += n;
        if head_bytes > MAX_HEAD_BYTES {
            return Err(HttpError::TooLarge(format!(
                "request head exceeds {MAX_HEAD_BYTES} bytes"
            )));
        }
        let line = head.trim_end_matches(['\r', '\n']);
        if line.is_empty() {
            break;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::Malformed(format!(
                "header without colon: `{line}`"
            )));
        };
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value
                .trim()
                .parse()
                .map_err(|_| HttpError::Malformed(format!("bad Content-Length `{value}`")))?;
        }
    }

    let line = request_line.trim_end_matches(['\r', '\n']);
    let mut parts = line.split_ascii_whitespace();
    let (Some(method), Some(target), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return Err(HttpError::Malformed(format!("bad request line `{line}`")));
    };
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::Malformed(format!(
            "unsupported version `{version}`"
        )));
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q.to_string()),
        None => (target.to_string(), String::new()),
    };

    if content_length > max_body {
        return Err(HttpError::TooLarge(format!(
            "body of {content_length} bytes exceeds limit of {max_body}"
        )));
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).map_err(HttpError::Io)?;

    Ok(Request {
        method: method.to_ascii_uppercase(),
        path,
        query,
        body,
    })
}

/// Standard reason phrase for the handful of codes the API uses.
fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        409 => "Conflict",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Writes a complete `Connection: close` JSON response.
pub fn write_response(stream: &mut TcpStream, status: u16, body: &str) -> std::io::Result<()> {
    let head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        status,
        reason(status),
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// Status + body as returned by [`http_call`].
#[derive(Debug, Clone)]
pub struct ClientResponse {
    /// HTTP status code.
    pub status: u16,
    /// Response body (the API always sends JSON).
    pub body: String,
}

/// Blocking one-shot HTTP client: opens a fresh connection per call
/// (matching the server's `Connection: close` policy), sends `body` if
/// non-empty, and reads the reply to EOF.
///
/// Used by the integration tests, the smoke driver, and the bench row —
/// anything in-tree that needs to speak to the daemon without pulling in
/// an HTTP dependency.
pub fn http_call(
    addr: &str,
    method: &str,
    path: &str,
    body: &str,
) -> std::io::Result<ClientResponse> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(120)))?;
    stream.set_write_timeout(Some(Duration::from_secs(30)))?;
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    if !body.is_empty() {
        stream.write_all(body.as_bytes())?;
    }
    stream.flush()?;

    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line)?;
    let status: u16 = status_line
        .split_ascii_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("bad status line `{}`", status_line.trim_end()),
            )
        })?;
    let mut content_length: Option<usize> = None;
    let mut line = String::new();
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "connection closed inside response headers",
            ));
        }
        let trimmed = line.trim_end_matches(['\r', '\n']);
        if trimmed.is_empty() {
            break;
        }
        if let Some((name, value)) = trimmed.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().ok();
            }
        }
    }
    let body = match content_length {
        Some(n) => {
            let mut buf = vec![0u8; n];
            reader.read_exact(&mut buf)?;
            buf
        }
        None => {
            let mut buf = Vec::new();
            reader.read_to_end(&mut buf)?;
            buf
        }
    };
    let body = String::from_utf8(body).map_err(|_| {
        std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "response body is not UTF-8",
        )
    })?;
    Ok(ClientResponse { status, body })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    /// One request/response exchange through real sockets exercises both
    /// the parser and the client against each other.
    #[test]
    fn request_round_trips_over_a_socket() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let req = read_request(&mut stream, 1024).unwrap();
            assert_eq!(req.method, "POST");
            assert_eq!(req.path, "/v1/jobs/7/events");
            assert_eq!(req.query_param("from"), Some("3"));
            assert_eq!(req.query_u64("wait_ms", 0).unwrap(), 500);
            assert_eq!(req.body, br#"{"x":1}"#);
            write_response(&mut stream, 201, r#"{"ok":true}"#).unwrap();
        });
        let resp = http_call(
            &addr,
            "POST",
            "/v1/jobs/7/events?from=3&wait_ms=500",
            r#"{"x":1}"#,
        )
        .unwrap();
        server.join().unwrap();
        assert_eq!(resp.status, 201);
        assert_eq!(resp.body, r#"{"ok":true}"#);
    }

    #[test]
    fn oversized_body_is_rejected_before_reading_it() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            match read_request(&mut stream, 8) {
                Err(HttpError::TooLarge(_)) => {}
                other => panic!("expected TooLarge, got {other:?}"),
            }
        });
        // Body is 16 bytes against an 8-byte limit.
        let _ = http_call(&addr, "POST", "/v1/campaigns", "0123456789abcdef");
        server.join().unwrap();
    }

    #[test]
    fn bad_query_integer_names_the_key() {
        let req = Request {
            method: "GET".into(),
            path: "/v1/jobs/1".into(),
            query: "wait_ms=soon".into(),
            body: Vec::new(),
        };
        let err = req.query_u64("wait_ms", 0).unwrap_err();
        assert!(err.contains("wait_ms"), "{err}");
        assert!(err.contains("soon"), "{err}");
    }
}
