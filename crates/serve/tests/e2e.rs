//! End-to-end daemon tests over real sockets: submit → poll → fetch, and
//! the kill/restart/resume acceptance gates.
//!
//! The central claim under test: a campaign served over HTTP produces a
//! deterministic result document *byte-identical* to the same spec run
//! in-process — including when the daemon is killed mid-campaign and a
//! fresh daemon resumes the job from its journal, at any worker count.

use std::time::{Duration, Instant};

use gecko_fleet::json::Json;
use gecko_fleet::spec_io::{report_deterministic_json, spec_to_json};
use gecko_fleet::{AttackCase, Campaign, CampaignSpec, DeviceCase, SchemeKind, Workload};
use gecko_serve::http::http_call;
use gecko_serve::{ServeConfig, Server};

fn fresh_root(tag: &str) -> std::path::PathBuf {
    let root = std::env::temp_dir().join(format!("gecko-serve-e2e-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    root
}

fn start_server(root: &std::path::Path) -> (Server, String) {
    let cfg = ServeConfig {
        bind: "127.0.0.1:0".to_string(),
        journal_root: root.to_path_buf(),
        queue_workers: 2,
        ..ServeConfig::default()
    };
    let server = Server::start(cfg).expect("server starts");
    let addr = server.addr().to_string();
    (server, addr)
}

/// A tiny Figure-4-shaped sweep: the paper's DPI attack study scaled to
/// test size — victim app on NVP, two boards, a clean baseline plus
/// P1/P2 injections at two frequencies, continuous windows.
fn tiny_fig4_spec() -> CampaignSpec {
    use gecko_emi::attack::DpiPoint;
    use gecko_emi::{AttackSchedule, EmiSignal, Injection, MonitorKind};
    let mut attacks = vec![AttackCase::none()];
    for (label, point) in [("P1", DpiPoint::P1), ("P2", DpiPoint::P2)] {
        for freq in [27e6, 240e6] {
            attacks.push(AttackCase::new(
                format!("{label}@{freq:.0}Hz"),
                AttackSchedule::continuous(EmiSignal::new(freq, 20.0), Injection::Dpi(point)),
            ));
        }
    }
    let devices: Vec<DeviceCase> = gecko_emi::devices::all_devices()
        .into_iter()
        .take(2)
        .map(|d| DeviceCase::new(d, MonitorKind::Adc))
        .collect();
    CampaignSpec::new("fig4-tiny")
        .apps([gecko_sim::experiments::VICTIM_APP])
        .schemes([SchemeKind::Nvp])
        .devices(devices)
        .attacks(attacks)
        .workload(Workload::RunFor { seconds: 0.004 })
}

fn submit(addr: &str, path: &str, body: &str) -> Json {
    let resp = http_call(addr, "POST", path, body).expect("submit call");
    assert_eq!(resp.status, 201, "submit failed: {}", resp.body);
    Json::parse(&resp.body).expect("status document parses")
}

fn job_id(status: &Json) -> u64 {
    status.get("id").and_then(Json::as_u64).expect("job id")
}

/// Polls `/v1/jobs/<id>?wait_ms=...` until the job reaches `want` (or any
/// stopped state), failing loudly on a different terminal state.
fn poll_until(addr: &str, id: u64, want: &str, timeout: Duration) -> Json {
    let deadline = Instant::now() + timeout;
    loop {
        let resp = http_call(addr, "GET", &format!("/v1/jobs/{id}?wait_ms=2000"), "")
            .expect("status call");
        assert_eq!(resp.status, 200, "{}", resp.body);
        let status = Json::parse(&resp.body).expect("status parses");
        let state = status
            .get("state")
            .and_then(Json::as_str)
            .expect("state field")
            .to_string();
        if state == want {
            return status;
        }
        assert!(
            matches!(state.as_str(), "queued" | "running"),
            "job {id} landed in `{state}` while waiting for `{want}`: {}",
            resp.body
        );
        assert!(
            Instant::now() < deadline,
            "timed out waiting for job {id} to reach {want}"
        );
    }
}

#[test]
fn served_fig4_sweep_is_bit_identical_to_in_process() {
    let spec = tiny_fig4_spec();

    // Reference: the library path, no daemon involved.
    let reference = Campaign::new(spec.clone()).workers(2).run().unwrap();
    let reference_doc = report_deterministic_json(&reference);
    let reference_digest = reference.deterministic_digest();

    let root = fresh_root("fig4");
    let (server, addr) = start_server(&root);

    let status = submit(&addr, "/v1/campaigns", &spec_to_json(&spec));
    let id = job_id(&status);
    let state = status.get("state").and_then(Json::as_str).unwrap();
    assert!(
        state == "queued" || state == "running",
        "fresh job in unexpected state {state}"
    );
    assert_eq!(status.get("grid").and_then(Json::as_u64), Some(10));

    // The event stream long-polls: the started event arrives promptly.
    let resp = http_call(
        &addr,
        "GET",
        &format!("/v1/jobs/{id}/events?from=0&wait_ms=5000"),
        "",
    )
    .unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body);
    assert!(
        resp.body.contains("campaign_started"),
        "first poll should see the started event: {}",
        resp.body
    );

    let done = poll_until(&addr, id, "done", Duration::from_secs(180));
    assert_eq!(
        done.get("digest").and_then(Json::as_u64),
        Some(reference_digest),
        "served digest diverges from the in-process run"
    );
    assert_eq!(done.get("items_done").and_then(Json::as_u64), Some(10));

    // The deterministic result document is byte-identical to the
    // in-process encoding.
    let resp = http_call(
        &addr,
        "GET",
        &format!("/v1/jobs/{id}/result?view=deterministic"),
        "",
    )
    .unwrap();
    assert_eq!(resp.status, 200);
    assert_eq!(
        resp.body, reference_doc,
        "served deterministic document differs from the library path"
    );

    // The full document carries the non-deterministic extras.
    let resp = http_call(&addr, "GET", &format!("/v1/jobs/{id}/result"), "").unwrap();
    assert_eq!(resp.status, 200);
    assert!(resp.body.contains("\"wall_s\""), "{}", resp.body);

    // After completion the event stream is closed and replays from 0.
    let resp = http_call(
        &addr,
        "GET",
        &format!("/v1/jobs/{id}/events?from=0&wait_ms=100"),
        "",
    )
    .unwrap();
    let events = Json::parse(&resp.body).unwrap();
    assert_eq!(events.get("closed").and_then(Json::as_bool), Some(true));
    assert!(
        events
            .get("events")
            .and_then(Json::as_arr)
            .is_some_and(|e| !e.is_empty()),
        "{}",
        resp.body
    );

    server.shutdown();
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn kill_mid_campaign_then_restart_resumes_bit_exactly() {
    let spec = tiny_fig4_spec();
    let reference = Campaign::new(spec.clone()).run().unwrap();
    let reference_doc = report_deterministic_json(&reference);

    // The acceptance gate: interrupt at a journaled checkpoint, kill the
    // daemon, boot a fresh one on the same data dir, and the resumed job
    // merges to a byte-identical deterministic document — at 1, 2, and 8
    // workers.
    for workers in [1usize, 2, 8] {
        let root = fresh_root(&format!("kill-w{workers}"));
        let (server, addr) = start_server(&root);
        let envelope = format!(
            r#"{{"spec":{},"workers":{workers},"halt_after":3}}"#,
            spec_to_json(&spec)
        );
        let status = submit(&addr, "/v1/campaigns", &envelope);
        let id = job_id(&status);

        let interrupted = poll_until(&addr, id, "interrupted", Duration::from_secs(180));
        let resumed_floor = interrupted
            .get("items_done")
            .and_then(Json::as_u64)
            .unwrap();
        assert!(
            (3..10).contains(&resumed_floor),
            "halt_after=3 should stop partway, got {resumed_floor} items"
        );

        // Kill the daemon (graceful drain, but the job stays interrupted).
        server.shutdown();

        // Restart over the same journal root: the job re-queues, resumes
        // past the journaled runs, and completes.
        let (server, addr) = start_server(&root);
        let done = poll_until(&addr, id, "done", Duration::from_secs(180));
        assert_eq!(
            done.get("items_resumed").and_then(Json::as_u64),
            Some(resumed_floor),
            "resume should skip exactly the journaled runs"
        );
        assert_eq!(
            done.get("digest").and_then(Json::as_u64),
            Some(reference.deterministic_digest())
        );
        let resp = http_call(
            &addr,
            "GET",
            &format!("/v1/jobs/{id}/result?view=deterministic"),
            "",
        )
        .unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(
            resp.body, reference_doc,
            "workers={workers}: resumed document differs from uninterrupted run"
        );
        server.shutdown();
        let _ = std::fs::remove_dir_all(&root);
    }
}

#[test]
fn served_check_matches_in_process_and_streams_verdicts() {
    use gecko_check::{CheckCampaign, CheckSpec, ExploreConfig};
    use gecko_serve::wire::{check_report_deterministic_json, check_spec_to_json};

    let spec = CheckSpec::new("serve-check")
        .app_names(&["blink"])
        .unwrap()
        .schemes([SchemeKind::Gecko])
        .explore(ExploreConfig::default().with_max_windows(48))
        .chunk_windows(16);

    let reference = CheckCampaign::new(spec.clone()).workers(2).run().unwrap();
    let reference_doc = check_report_deterministic_json(&reference);

    let root = fresh_root("check");
    let (server, addr) = start_server(&root);
    let status = submit(&addr, "/v1/checks", &check_spec_to_json(&spec));
    let id = job_id(&status);
    assert_eq!(status.get("kind").and_then(Json::as_str), Some("check"));

    let done = poll_until(&addr, id, "done", Duration::from_secs(180));
    assert_eq!(
        done.get("digest").and_then(Json::as_u64),
        Some(reference.deterministic_digest())
    );
    let resp = http_call(
        &addr,
        "GET",
        &format!("/v1/jobs/{id}/result?view=deterministic"),
        "",
    )
    .unwrap();
    assert_eq!(resp.status, 200);
    assert_eq!(resp.body, reference_doc);

    // The check's verdict events flowed through the same stream.
    let resp = http_call(
        &addr,
        "GET",
        &format!("/v1/jobs/{id}/events?from=0&wait_ms=100"),
        "",
    )
    .unwrap();
    assert!(resp.body.contains("check_started"), "{}", resp.body);

    server.shutdown();
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn cancel_over_http_drains_to_a_cancelled_checkpoint() {
    // A sweep big enough to still be running when the cancel lands.
    let spec = CampaignSpec::new("cancel-me")
        .apps(["blink", "crc16"])
        .schemes([SchemeKind::Gecko, SchemeKind::Nvp])
        .seeds([1, 2, 3, 4, 5, 6])
        .workload(Workload::RunFor { seconds: 0.01 });

    let root = fresh_root("cancel");
    let (server, addr) = start_server(&root);
    let status = submit(&addr, "/v1/campaigns", &spec_to_json(&spec));
    let id = job_id(&status);

    let resp = http_call(&addr, "DELETE", &format!("/v1/jobs/{id}"), "").unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body);

    let done = poll_until(&addr, id, "cancelled", Duration::from_secs(180));
    assert_eq!(done.get("state").and_then(Json::as_str), Some("cancelled"));

    // No result for a cancelled job — 409 names the state.
    let resp = http_call(&addr, "GET", &format!("/v1/jobs/{id}/result"), "").unwrap();
    assert_eq!(resp.status, 409);
    assert!(resp.body.contains("cancelled"), "{}", resp.body);

    // And the job list still carries it.
    let resp = http_call(&addr, "GET", "/v1/jobs", "").unwrap();
    assert!(resp.body.contains("\"cancel-me\""), "{}", resp.body);

    server.shutdown();
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn daemon_shutdown_mid_job_is_a_clean_checkpoint() {
    // Graceful shutdown while a job is running: workers journal the run
    // they are on, the job parks as interrupted, and a restart resumes it
    // to the same digest as an uninterrupted run — the "no abandoned
    // workers" guarantee, driven through the public API.
    let spec = tiny_fig4_spec();
    let reference_digest = Campaign::new(spec.clone())
        .run()
        .unwrap()
        .deterministic_digest();

    let root = fresh_root("drain");
    let (server, addr) = start_server(&root);
    let status = submit(&addr, "/v1/campaigns", &spec_to_json(&spec));
    let id = job_id(&status);

    // Let it get going, then shut the daemon down under it.
    let _ = http_call(
        &addr,
        "GET",
        &format!("/v1/jobs/{id}/events?from=0&wait_ms=5000"),
        "",
    );
    server.shutdown();

    let (server, addr) = start_server(&root);
    let done = poll_until(&addr, id, "done", Duration::from_secs(180));
    assert_eq!(
        done.get("digest").and_then(Json::as_u64),
        Some(reference_digest),
        "post-drain resume must merge bit-exactly"
    );
    server.shutdown();
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn capacity_limits_surface_as_conflict() {
    let root = fresh_root("limits");
    let cfg = ServeConfig {
        bind: "127.0.0.1:0".to_string(),
        journal_root: root.clone(),
        max_items_per_job: 4,
        ..ServeConfig::default()
    };
    let server = Server::start(cfg).unwrap();
    let addr = server.addr().to_string();

    // 10-item fig4 grid against a 4-item cap.
    let resp = http_call(
        &addr,
        "POST",
        "/v1/campaigns",
        &spec_to_json(&tiny_fig4_spec()),
    )
    .unwrap();
    assert_eq!(resp.status, 409, "{}", resp.body);
    assert!(resp.body.contains("limit"), "{}", resp.body);

    server.shutdown();
    let _ = std::fs::remove_dir_all(&root);
}
