//! Wire-format round-trip properties under splitmix64-driven random
//! values: encode → decode → encode must reproduce the exact bytes, and
//! decoded specs must fingerprint identically — the invariant the
//! journal/resume machinery and the served-vs-in-process digest
//! comparisons stand on.

use gecko_check::{CheckSpec, ExploreConfig};
use gecko_compiler::CompileOptions;
use gecko_emi::{AttackSchedule, EmiSignal, Injection, MonitorKind, TimedAttack};
use gecko_fleet::json::Json;
use gecko_fleet::spec_io::{
    report_deterministic_json, report_to_json, spec_from_json, spec_to_json,
};
use gecko_fleet::telemetry::{Event, FleetCounters, Histogram};
use gecko_fleet::{
    AttackCase, CampaignReport, CampaignSpec, CapacitorSpec, DeviceCase, RunResult, Supply,
    WorkItem, Workload,
};
use gecko_isa::rng::SplitMix64;
use gecko_serve::wire::{check_spec_from_json, check_spec_to_json, event_value};
use gecko_sim::report::Value;
use gecko_sim::SchemeKind;

const ROUNDS: usize = 64;

fn pick<'a, T>(rng: &mut SplitMix64, items: &'a [T]) -> &'a T {
    &items[rng.range_u64(0, items.len() as u64) as usize]
}

/// A non-empty random subset, preserving order (axis order is part of the
/// fingerprint, so the generator must not shuffle).
fn subset<T: Clone>(rng: &mut SplitMix64, items: &[T]) -> Vec<T> {
    loop {
        let picked: Vec<T> = items
            .iter()
            .filter(|_| rng.next_u64() & 1 == 0)
            .cloned()
            .collect();
        if !picked.is_empty() {
            return picked;
        }
    }
}

/// Small decimal floats survive text round-trips exactly (Rust's float
/// Display is shortest-round-trip, so *any* f64 would — but keeping the
/// magnitudes spec-shaped keeps the documents readable on failure).
fn small_f64(rng: &mut SplitMix64) -> f64 {
    (rng.range_u64(1, 5_000_000) as f64) / 1000.0
}

fn random_injection(rng: &mut SplitMix64) -> Injection {
    use gecko_emi::attack::DpiPoint;
    match rng.range_u64(0, 3) {
        0 => Injection::Dpi(DpiPoint::P1),
        1 => Injection::Dpi(DpiPoint::P2),
        _ => Injection::Remote {
            distance_m: small_f64(rng),
        },
    }
}

fn random_attacks(rng: &mut SplitMix64) -> Vec<AttackCase> {
    let mut cases = vec![AttackCase::none()];
    for i in 0..rng.range_u64(0, 3) {
        let windows: Vec<TimedAttack> = (0..rng.range_u64(1, 4))
            .map(|_| {
                let start_s = small_f64(rng);
                TimedAttack {
                    start_s,
                    // Half the windows are open-ended: `end_s` rides the
                    // wire as `null` and must come back as infinity.
                    end_s: if rng.next_u64() & 1 == 0 {
                        f64::INFINITY
                    } else {
                        start_s + small_f64(rng)
                    },
                    signal: EmiSignal::new(small_f64(rng) * 1e6, small_f64(rng)),
                    injection: random_injection(rng),
                }
            })
            .collect();
        // Labels exercise the string escaper.
        let label = format!("atk-{i} \"burst\"\\{}\n", rng.next_u64() % 100);
        cases.push(AttackCase::new(
            label,
            AttackSchedule::from_windows(windows),
        ));
    }
    cases
}

fn random_spec(rng: &mut SplitMix64) -> CampaignSpec {
    let app_names: Vec<String> = gecko_apps::all_apps()
        .iter()
        .map(|a| a.name.to_string())
        .collect();
    let devices: Vec<DeviceCase> = subset(rng, &gecko_emi::devices::all_devices())
        .into_iter()
        .map(|d| {
            let monitor = if rng.next_u64() & 1 == 0 {
                MonitorKind::Adc
            } else {
                MonitorKind::Comparator
            };
            DeviceCase::new(d, monitor)
        })
        .collect();
    let workload = match rng.range_u64(0, 3) {
        0 => Workload::RunFor {
            seconds: small_f64(rng),
        },
        1 => Workload::UntilCompletions {
            n: rng.range_u64(1, 100),
            max_seconds: small_f64(rng),
        },
        _ => Workload::Buckets {
            horizon_s: small_f64(rng),
            bucket_s: small_f64(rng),
        },
    };
    let mut spec = CampaignSpec::new(format!("prop \"{}\"\\\t", rng.next_u64() % 1000))
        .apps(subset(rng, &app_names))
        .schemes(subset(rng, &SchemeKind::all()))
        .devices(devices)
        .attacks(random_attacks(rng))
        .seeds((0..rng.range_u64(1, 5)).map(|_| rng.next_u64()))
        .workload(workload);
    if rng.next_u64() & 1 == 0 {
        spec = spec.supply(Supply::Harvesting {
            power_w: small_f64(rng) / 1000.0,
        });
    }
    if rng.next_u64() & 1 == 0 {
        spec = spec.capacitor(CapacitorSpec {
            capacitance_f: small_f64(rng) / 1000.0,
            initial_voltage_v: small_f64(rng),
            rescale_thresholds: rng.next_u64() & 1 == 0,
        });
    }
    if rng.next_u64() & 1 == 0 {
        spec.adc_filter_taps = Some(1 + (rng.next_u64() % 4) as usize * 2);
    }
    spec.compile = CompileOptions {
        wcet_budget_cycles: if rng.next_u64() & 1 == 0 {
            None
        } else {
            Some(rng.range_u64(100, 1_000_000))
        },
        prune: rng.next_u64() & 1 == 0,
        max_slice_insts: rng.range_u64(1, 64) as usize,
    };
    spec
}

#[test]
fn campaign_spec_round_trips_byte_exactly() {
    let mut rng = SplitMix64::new(0xC0FFEE);
    for round in 0..ROUNDS {
        let spec = random_spec(&mut rng);
        let wire = spec_to_json(&spec);
        let back = spec_from_json(&wire)
            .unwrap_or_else(|e| panic!("round {round}: decode failed: {e}\n{wire}"));
        assert_eq!(back, spec, "round {round}: decoded spec diverged");
        assert_eq!(
            back.fingerprint(),
            spec.fingerprint(),
            "round {round}: fingerprint not stable across the wire"
        );
        assert_eq!(
            spec_to_json(&back),
            wire,
            "round {round}: re-encode is not byte-identical"
        );
    }
}

#[test]
fn check_spec_round_trips_byte_exactly() {
    let mut rng = SplitMix64::new(0xBEEF);
    let app_names: Vec<String> = gecko_apps::all_apps()
        .iter()
        .map(|a| a.name.to_string())
        .collect();
    for round in 0..ROUNDS {
        let apps = subset(&mut rng, &app_names);
        let mut explore = ExploreConfig::default().with_depth(rng.range_u64(1, 4) as u32);
        if rng.next_u64() & 1 == 0 {
            explore = explore.with_max_windows(rng.range_u64(1, 10_000));
        }
        explore.power_failure_windows = rng.next_u64() & 1 == 0;
        explore.emi_windows = rng.next_u64() & 1 == 0;
        explore.refail_horizon = rng.range_u64(1, 64);
        explore.memoize = rng.next_u64() & 1 == 0;
        explore.seed = rng.next_u64();
        explore.fast_forward = rng.next_u64() & 1 == 0;
        let mut spec = CheckSpec::new(format!("check \"{round}\"\\"))
            .app_names(&apps.iter().map(String::as_str).collect::<Vec<_>>())
            .unwrap()
            .schemes(subset(&mut rng, &SchemeKind::all()))
            .explore(explore)
            .chunk_windows(rng.range_u64(1, 2048));
        spec.shrink = rng.next_u64() & 1 == 0;
        spec.shrink_budget = rng.range_u64(0, 1000);
        spec.compile.wcet_budget_cycles = if rng.next_u64() & 1 == 0 {
            None
        } else {
            Some(rng.range_u64(100, 100_000))
        };

        let wire = check_spec_to_json(&spec);
        let back = check_spec_from_json(&wire)
            .unwrap_or_else(|e| panic!("round {round}: decode failed: {e}\n{wire}"));
        assert_eq!(
            check_spec_to_json(&back),
            wire,
            "round {round}: re-encode is not byte-identical"
        );
    }
}

/// A synthetic merged report: random metrics through the real encoder,
/// then through the strict JSON parser, and back out byte-identically.
#[test]
fn merged_report_documents_reparse_byte_exactly() {
    let mut rng = SplitMix64::new(0xD1CE);
    for round in 0..16 {
        let spec = random_spec(&mut rng);
        let items = spec.expand();
        let results: Vec<RunResult> = items
            .iter()
            .take(8)
            .map(|item: &WorkItem| RunResult {
                item: *item,
                metrics: random_metrics(&mut rng),
                buckets: Vec::new(),
                compile_stats: Default::default(),
                cache_hit: rng.next_u64() & 1 == 0,
                wall_ns: rng.next_u64() >> 20,
            })
            .collect();
        let report = CampaignReport {
            spec,
            workers: rng.range_u64(1, 16) as usize,
            results,
            failures: Vec::new(),
            totals: random_metrics(&mut rng),
            counters: FleetCounters::default(),
            item_wall: Histogram::default(),
            wall_s: small_f64(&mut rng),
            halted: rng.next_u64() & 1 == 0,
        };
        for doc in [report_to_json(&report), report_deterministic_json(&report)] {
            let parsed = Json::parse(&doc)
                .unwrap_or_else(|e| panic!("round {round}: report doc does not parse: {e}"));
            assert_eq!(
                parsed.encode(),
                doc,
                "round {round}: parse→encode is not byte-identical"
            );
        }
    }
}

fn random_metrics(rng: &mut SplitMix64) -> gecko_sim::Metrics {
    gecko_sim::Metrics {
        sim_time_s: small_f64(rng),
        forward_cycles: rng.next_u64() >> 16,
        overhead_cycles: rng.next_u64() >> 16,
        completions: rng.next_u64() % 1_000,
        checksum_errors: rng.next_u64() % 10,
        jit_checkpoints: rng.next_u64() % 10_000,
        jit_checkpoint_failures: rng.next_u64() % 100,
        reboots: rng.next_u64() % 1_000,
        dirty_deaths: rng.next_u64() % 100,
        rollbacks: rng.next_u64() % 1_000,
        recovery_slices: rng.next_u64() % 10_000,
        attack_detections: rng.next_u64() % 100,
        jit_reenables: rng.next_u64() % 100,
        ..Default::default()
    }
}

/// Telemetry events: every frame the daemon streams must survive the
/// strict parser and re-encode to the same bytes.
#[test]
fn telemetry_event_frames_reparse_byte_exactly() {
    const KEYS: [&str; 6] = ["item", "wall_ns", "ratio", "note", "flag", "gap"];
    let mut rng = SplitMix64::new(0xFEED);
    for round in 0..ROUNDS {
        let kind = *pick(&mut rng, &["item_started", "item_finished", "custom_probe"]);
        let n_fields = rng.range_u64(0, KEYS.len() as u64 + 1) as usize;
        let fields: Vec<(&'static str, Value)> = KEYS
            .iter()
            .take(n_fields)
            .map(|&key| {
                let value = match rng.range_u64(0, 6) {
                    0 => Value::U64(rng.next_u64()),
                    1 => Value::I64(rng.next_u64() as i64),
                    2 => Value::F64(small_f64(&mut rng)),
                    // Non-finite floats frame as null and must reparse.
                    3 => Value::F64(f64::NAN),
                    4 => Value::Str(format!("s\"{}\"\\\n\t", rng.next_u64() % 97)),
                    _ => Value::Bool(rng.next_u64() & 1 == 0),
                };
                (key, value)
            })
            .collect();
        let event = Event { kind, fields };
        let frame = event_value(rng.next_u64(), &event).encode();
        let parsed = Json::parse(&frame)
            .unwrap_or_else(|e| panic!("round {round}: frame does not parse: {e}\n{frame}"));
        assert_eq!(
            parsed.encode(),
            frame,
            "round {round}: event frame is not byte-stable"
        );
        assert_eq!(parsed.get("event").and_then(Json::as_str), Some(kind));
    }
}
