//! The energy-buffer capacitor.

use std::fmt;

/// A capacitor used as the energy buffer of an intermittent system.
///
/// State is the pair (capacitance, stored energy); the voltage is derived
/// on demand as `V = sqrt(2·E/C)`. Energy is the *primary* state variable
/// because every simulation step charges and discharges in joules: keeping
/// the bookkeeping in the energy domain makes a charge/discharge tick a
/// handful of adds and multiplies with no square root, which is what lets
/// the simulator's hibernation fast-forward replay millions of sleep ticks
/// cheaply while staying bit-identical to stepping them one at a time.
///
/// Charging integrates harvested power (with a charging efficiency factor),
/// discharging removes instruction energy. The stored energy never exceeds
/// the rated ceiling set at charge time and never goes below zero.
#[derive(Debug, Clone, PartialEq)]
pub struct Capacitor {
    capacitance_f: f64,
    energy_j: f64,
    /// Fraction of harvested energy that actually reaches the capacitor
    /// (rectifier + regulator losses). 1.0 = lossless.
    efficiency: f64,
    /// Self-discharge (leakage) conductance in siemens; drains `G·V²` watts.
    leak_s: f64,
}

impl Capacitor {
    /// Creates a capacitor of `capacitance_f` farads pre-charged to
    /// `voltage_v` volts, lossless and leak-free.
    ///
    /// # Panics
    ///
    /// Panics if `capacitance_f <= 0` or `voltage_v < 0`.
    pub fn new(capacitance_f: f64, voltage_v: f64) -> Capacitor {
        assert!(capacitance_f > 0.0, "capacitance must be positive");
        assert!(voltage_v >= 0.0, "voltage must be non-negative");
        Capacitor {
            capacitance_f,
            energy_j: 0.5 * capacitance_f * voltage_v * voltage_v,
            efficiency: 1.0,
            leak_s: 0.0,
        }
    }

    /// Sets the charging efficiency in `(0, 1]`, returning `self` for
    /// builder-style chaining.
    ///
    /// # Panics
    ///
    /// Panics if `efficiency` is not in `(0, 1]`.
    pub fn with_efficiency(mut self, efficiency: f64) -> Capacitor {
        assert!(
            efficiency > 0.0 && efficiency <= 1.0,
            "efficiency must be in (0, 1]"
        );
        self.efficiency = efficiency;
        self
    }

    /// Sets a leakage conductance in siemens.
    ///
    /// # Panics
    ///
    /// Panics if `leak_s` is negative.
    pub fn with_leakage(mut self, leak_s: f64) -> Capacitor {
        assert!(leak_s >= 0.0, "leakage must be non-negative");
        self.leak_s = leak_s;
        self
    }

    /// Capacitance in farads.
    #[inline]
    pub fn capacitance_f(&self) -> f64 {
        self.capacitance_f
    }

    /// Present voltage in volts (`sqrt(2·E/C)`, derived from the stored
    /// energy).
    #[inline]
    pub fn voltage_v(&self) -> f64 {
        (2.0 * self.energy_j / self.capacitance_f).sqrt()
    }

    /// Stored energy in joules.
    #[inline]
    pub fn energy_j(&self) -> f64 {
        self.energy_j
    }

    /// Self-discharge (leakage) conductance in siemens; 0 = leak-free.
    /// The drain at voltage `V` is `G·V²` watts, so a worst-case
    /// per-step leakage bound is `leak_siemens() · V_rail² · dt`.
    #[inline]
    pub fn leak_siemens(&self) -> f64 {
        self.leak_s
    }

    /// Energy stored above a floor voltage, i.e. the budget available before
    /// the voltage drops to `floor_v`. Zero when already below the floor.
    pub fn energy_above_j(&self, floor_v: f64) -> f64 {
        let floor_e = 0.5 * self.capacitance_f * floor_v * floor_v;
        (self.energy_j() - floor_e).max(0.0)
    }

    /// Forces the voltage to `voltage_v` (used when modeling a DC bench
    /// supply or when configuring experiments).
    ///
    /// # Panics
    ///
    /// Panics if `voltage_v < 0`.
    pub fn set_voltage(&mut self, voltage_v: f64) {
        assert!(voltage_v >= 0.0, "voltage must be non-negative");
        self.energy_j = 0.5 * self.capacitance_f * voltage_v * voltage_v;
    }

    /// Integrates `power_w` of harvested power for `dt_s` seconds, clamping
    /// the stored energy at `½·C·ceiling_v²`. Also applies leakage. Returns
    /// the energy actually banked (joules).
    #[inline]
    pub fn charge(&mut self, power_w: f64, dt_s: f64, ceiling_v: f64) -> f64 {
        debug_assert!(dt_s >= 0.0);
        let before = self.energy_j;
        // Leakage G·V² expressed in the energy domain: G·(2E/C). The
        // leak-free branch is bit-exact (`0.0 * x == +0.0` for the finite
        // non-negative `x` here) and keeps the division off the serial
        // energy dependency chain, which is what bounds the simulator's
        // hibernation fast-forward throughput.
        let leak_w = if self.leak_s == 0.0 {
            0.0
        } else {
            self.leak_s * (2.0 * before / self.capacitance_f)
        };
        let delta = (power_w.max(0.0) * self.efficiency - leak_w) * dt_s;
        let ceiling_e = 0.5 * self.capacitance_f * ceiling_v * ceiling_v;
        self.energy_j = (before + delta).clamp(0.0, ceiling_e.max(before));
        self.energy_j - before
    }

    /// Removes `energy_j` joules (instruction execution, checkpointing…).
    /// Returns `true` if the full amount was available; on `false` the
    /// capacitor is left fully drained (brown-out).
    #[inline]
    pub fn discharge_j(&mut self, energy_j: f64) -> bool {
        debug_assert!(energy_j >= 0.0);
        if energy_j <= self.energy_j {
            self.energy_j -= energy_j;
            true
        } else {
            self.energy_j = 0.0;
            false
        }
    }

    /// Seconds needed to charge from the present voltage to `target_v` given
    /// constant harvested `power_w`, accounting for efficiency (ignoring
    /// leakage). Returns `f64::INFINITY` when `power_w <= 0`.
    pub fn time_to_charge_s(&self, target_v: f64, power_w: f64) -> f64 {
        if target_v <= self.voltage_v() {
            return 0.0;
        }
        let eff_w = power_w * self.efficiency;
        if eff_w <= 0.0 {
            return f64::INFINITY;
        }
        let target_e = 0.5 * self.capacitance_f * target_v * target_v;
        (target_e - self.energy_j()) / eff_w
    }
}

impl fmt::Display for Capacitor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.1} mF @ {:.3} V ({:.3} mJ)",
            self.capacitance_f * 1e3,
            self.voltage_v(),
            self.energy_j * 1e3
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energy_formula() {
        let c = Capacitor::new(1e-3, 3.3);
        assert!((c.energy_j() - 0.5 * 1e-3 * 3.3 * 3.3).abs() < 1e-12);
    }

    #[test]
    fn charge_respects_ceiling() {
        let mut c = Capacitor::new(1e-3, 3.0);
        let banked = c.charge(1.0, 100.0, 3.3); // absurd power: must clamp
        assert!((c.voltage_v() - 3.3).abs() < 1e-9);
        let expect = 0.5e-3 * (3.3 * 3.3 - 3.0 * 3.0);
        assert!((banked - expect).abs() < 1e-9);
    }

    #[test]
    fn discharge_success_and_brownout() {
        let mut c = Capacitor::new(1e-3, 3.3);
        let half = c.energy_j() / 2.0;
        assert!(c.discharge_j(half));
        assert!(c.voltage_v() < 3.3 && c.voltage_v() > 0.0);
        assert!(!c.discharge_j(1.0), "overdraw must fail");
        assert_eq!(c.voltage_v(), 0.0);
        assert_eq!(c.energy_j(), 0.0);
    }

    #[test]
    fn energy_above_floor() {
        let c = Capacitor::new(2e-3, 3.0);
        let e = c.energy_above_j(2.0);
        assert!((e - 0.5 * 2e-3 * (9.0 - 4.0)).abs() < 1e-12);
        assert_eq!(c.energy_above_j(3.5), 0.0);
    }

    #[test]
    fn charge_conserves_energy() {
        let mut c = Capacitor::new(1e-3, 1.0);
        let before = c.energy_j();
        let banked = c.charge(2e-3, 0.5, 3.3); // 1 mJ input, no clamp
        assert!((banked - 1e-3).abs() < 1e-12);
        assert!((c.energy_j() - before - 1e-3).abs() < 1e-12);
    }

    #[test]
    fn efficiency_scales_intake() {
        let mut lossless = Capacitor::new(1e-3, 1.0);
        let mut lossy = Capacitor::new(1e-3, 1.0).with_efficiency(0.5);
        let a = lossless.charge(1e-3, 1.0, 3.3);
        let b = lossy.charge(1e-3, 1.0, 3.3);
        assert!((a - 2.0 * b).abs() < 1e-12);
    }

    #[test]
    fn leakage_drains() {
        let mut c = Capacitor::new(1e-3, 3.0).with_leakage(1e-5);
        c.charge(0.0, 10.0, 3.3);
        assert!(c.voltage_v() < 3.0);
    }

    #[test]
    fn time_to_charge() {
        let c = Capacitor::new(1e-3, 0.0);
        // To 3.0 V: E = 4.5 mJ; at 1 mW → 4.5 s.
        let t = c.time_to_charge_s(3.0, 1e-3);
        assert!((t - 4.5).abs() < 1e-9);
        assert_eq!(c.time_to_charge_s(0.0, 1e-3), 0.0);
        assert_eq!(c.time_to_charge_s(3.0, 0.0), f64::INFINITY);
    }

    #[test]
    fn larger_capacitor_charges_slower() {
        let small = Capacitor::new(1e-3, 0.0);
        let large = Capacitor::new(10e-3, 0.0);
        assert!(large.time_to_charge_s(3.0, 1e-3) > small.time_to_charge_s(3.0, 1e-3));
    }

    #[test]
    #[should_panic(expected = "capacitance")]
    fn zero_capacitance_panics() {
        let _ = Capacitor::new(0.0, 1.0);
    }
}
