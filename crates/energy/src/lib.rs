//! # gecko-energy
//!
//! Energy-storage and energy-harvesting models for intermittent systems:
//! the capacitor that buffers harvested energy, the voltage-threshold ladder
//! that drives the just-in-time checkpoint protocol, and a family of
//! harvester power sources (constant supply, RF traces with periodic
//! outages, and a Powercast-like path-loss RF source).
//!
//! Physics is intentionally simple but dimensionally honest:
//! `E = ½·C·V²`, harvested power integrates into stored energy over time,
//! and the capacitor never exceeds its rated ceiling. Everything is `f64`
//! SI units (volts, farads, joules, watts, seconds), which the field names
//! spell out.
//!
//! ```
//! use gecko_energy::{Capacitor, VoltageThresholds};
//!
//! let th = VoltageThresholds::default();
//! let mut cap = Capacitor::new(1e-3, th.v_max); // 1 mF charged to the rail
//! let budget = cap.energy_above_j(th.v_off);
//! assert!(budget > 0.0);
//! // Drain half the budget: still above V_off.
//! cap.discharge_j(budget / 2.0);
//! assert!(cap.voltage_v() > th.v_off);
//! ```

pub mod capacitor;
pub mod harvester;
pub mod segment;
pub mod starve;
pub mod thresholds;

pub use capacitor::Capacitor;
pub use harvester::{ConstantPower, PowerSource, PowercastRf, PulsedRf, TracePower};
pub use segment::{next_crossing, safe_steps, Crossing, StepProfile};
pub use starve::StarvedHarvester;
pub use thresholds::VoltageThresholds;
