//! Adversarial energy starvation: a wrapper that periodically attenuates
//! another harvester's output.
//!
//! Singhal et al. observe that an attacker who controls (or stands
//! between) the RF power source can starve an intermittently-powered
//! device on a schedule — no EMI coupling into the board required, just
//! modulation of the incoming energy. [`StarvedHarvester`] models the
//! simplest such adversary: for the first `starve_s` of every `period_s`
//! the inner source's power is multiplied by `attenuation`; for the rest
//! of the period it passes through untouched.

use crate::harvester::PowerSource;

/// A power source whose output an adversary periodically attenuates.
///
/// Phase 0 of each period is the starvation window — chosen so that a
/// device that boots at t = 0 sees the attack immediately, the worst
/// case for schemes that frontload progress after recovery.
#[derive(Debug)]
pub struct StarvedHarvester {
    /// The legitimate source being modulated.
    pub inner: Box<dyn PowerSource>,
    /// Attack period (s).
    pub period_s: f64,
    /// Length of the starvation window at the start of each period (s).
    pub starve_s: f64,
    /// Multiplier applied inside the window, in `[0, 1]` (0 = full
    /// blackout, 1 = no attack).
    pub attenuation: f64,
}

impl StarvedHarvester {
    /// Wraps `inner` with a periodic starvation attack.
    ///
    /// # Panics
    ///
    /// Panics if `period_s <= 0`, `starve_s` is outside `[0, period_s]`,
    /// or `attenuation` is outside `[0, 1]`.
    pub fn new(
        inner: Box<dyn PowerSource>,
        period_s: f64,
        starve_s: f64,
        attenuation: f64,
    ) -> StarvedHarvester {
        assert!(period_s > 0.0, "period must be positive");
        assert!(
            (0.0..=period_s).contains(&starve_s),
            "starvation window must fit in the period"
        );
        assert!(
            (0.0..=1.0).contains(&attenuation),
            "attenuation is a fraction"
        );
        StarvedHarvester {
            inner,
            period_s,
            starve_s,
            attenuation,
        }
    }

    /// Whether `t_s` falls inside a starvation window.
    pub fn starved_at(&self, t_s: f64) -> bool {
        self.starve_s > 0.0 && (t_s / self.period_s).fract() * self.period_s < self.starve_s
    }

    /// End of the starved/unstarved segment `t_s` falls in.
    fn segment_end(&self, t_s: f64) -> f64 {
        let k = (t_s / self.period_s).floor();
        if self.starved_at(t_s) {
            k * self.period_s + self.starve_s
        } else {
            (k + 1.0) * self.period_s
        }
    }
}

impl PowerSource for StarvedHarvester {
    fn power_w(&self, t_s: f64) -> f64 {
        let base = self.inner.power_w(t_s);
        if self.starved_at(t_s) {
            base * self.attenuation
        } else {
            base
        }
    }

    fn constant_until(&self, t_s: f64) -> Option<(f64, f64)> {
        if t_s < 0.0 {
            return None;
        }
        // Degenerate windows never change the output; pass the inner
        // claim through so coalescing is unimpaired.
        if self.starve_s <= 0.0 || self.attenuation >= 1.0 {
            return self.inner.constant_until(t_s);
        }
        // The wrapper is constant only while both the inner source and
        // the attack phase are: intersect the inner horizon with the end
        // of the current (starved or unstarved) segment.
        let (_, inner_until) = self.inner.constant_until(t_s)?;
        Some((self.power_w(t_s), inner_until.min(self.segment_end(t_s))))
    }

    fn describe(&self) -> String {
        format!(
            "starved({}; {}s of every {}s at x{})",
            self.inner.describe(),
            self.starve_s,
            self.period_s,
            self.attenuation
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harvester::{ConstantPower, PulsedRf};

    #[test]
    fn attenuates_only_inside_the_window() {
        let s = StarvedHarvester::new(Box::new(ConstantPower::new(2e-3)), 1.0, 0.25, 0.1);
        assert!((s.power_w(0.1) - 2e-4).abs() < 1e-18, "starved");
        assert_eq!(s.power_w(0.5), 2e-3, "untouched");
        assert!((s.power_w(1.2) - 2e-4).abs() < 1e-18, "periodic");
    }

    #[test]
    fn constant_until_intersects_inner_and_attack_segments() {
        // Constant inner: the horizon is the attack segment boundary.
        let s = StarvedHarvester::new(Box::new(ConstantPower::new(1e-3)), 1.0, 0.25, 0.0);
        let (pw, until) = s.constant_until(0.1).unwrap();
        assert_eq!(pw, 0.0);
        assert!((until - 0.25).abs() < 1e-12);
        let (pw, until) = s.constant_until(0.5).unwrap();
        assert_eq!(pw, 1e-3);
        assert!((until - 1.0).abs() < 1e-12);

        // Pulsed inner with a shorter segment: the inner horizon wins.
        let s = StarvedHarvester::new(Box::new(PulsedRf::new(0.1, 0.5, 1e-3)), 1.0, 0.25, 0.5);
        let (pw, until) = s.constant_until(0.0).unwrap();
        assert_eq!(pw, 5e-4);
        assert!(
            (until - 0.05).abs() < 1e-12,
            "inner pulse edge, got {until}"
        );
    }

    #[test]
    fn constant_until_agrees_with_power_w_across_the_horizon() {
        let s = StarvedHarvester::new(Box::new(ConstantPower::new(1e-3)), 0.5, 0.2, 0.3);
        let mut t = 0.013;
        while t < 2.0 {
            let (pw, until) = s.constant_until(t).unwrap();
            assert_eq!(pw, s.power_w(t), "claimed power at t={t}");
            // Sample strictly inside the claimed horizon.
            let mid = t + (until - t) * 0.5;
            assert_eq!(s.power_w(mid), pw, "t={t} mid={mid} until={until}");
            t += 0.037;
        }
    }

    #[test]
    fn degenerate_attacks_pass_through() {
        let s = StarvedHarvester::new(Box::new(ConstantPower::new(1e-3)), 1.0, 0.0, 0.0);
        assert_eq!(s.constant_until(0.3), Some((1e-3, f64::INFINITY)));
        let s = StarvedHarvester::new(Box::new(ConstantPower::new(1e-3)), 1.0, 0.5, 1.0);
        assert_eq!(s.constant_until(0.3), Some((1e-3, f64::INFINITY)));
    }
}
