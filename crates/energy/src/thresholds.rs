//! The voltage-threshold ladder of a just-in-time checkpointing system.

use std::fmt;

/// The four voltage thresholds that govern an intermittent system's life
/// cycle (Section II-B of the paper):
///
/// * `v_max` — the rail / capacitor ceiling.
/// * `v_on` — wake-up: when the capacitor recovers to this level the system
///   reboots and restores the last checkpoint.
/// * `v_backup` — JIT checkpoint trigger: when the monitor sees the supply
///   fall below this level it checkpoints all volatile state.
/// * `v_off` — brown-out: below this level the CPU cannot execute; volatile
///   state is lost.
///
/// The ordering `v_max ≥ v_on > v_backup > v_off ≥ 0` is enforced. The
/// `V_fail` window the paper exploits (`v_off < V < v_backup`) is the gap in
/// which a *spoofed* wake-up leaves too little energy to complete the next
/// checkpoint.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VoltageThresholds {
    /// Capacitor ceiling / supply rail (V).
    pub v_max: f64,
    /// Reboot-and-restore level (V).
    pub v_on: f64,
    /// JIT checkpoint trigger level (V).
    pub v_backup: f64,
    /// Brown-out level below which execution stops (V).
    pub v_off: f64,
}

impl VoltageThresholds {
    /// Creates a validated threshold ladder.
    ///
    /// # Panics
    ///
    /// Panics unless `v_max >= v_on > v_backup > v_off >= 0`.
    pub fn new(v_max: f64, v_on: f64, v_backup: f64, v_off: f64) -> VoltageThresholds {
        assert!(
            v_max >= v_on && v_on > v_backup && v_backup > v_off && v_off >= 0.0,
            "thresholds must satisfy v_max >= v_on > v_backup > v_off >= 0 \
             (got {v_max}, {v_on}, {v_backup}, {v_off})"
        );
        VoltageThresholds {
            v_max,
            v_on,
            v_backup,
            v_off,
        }
    }

    /// The MSP430FR5994/CTPL-like defaults used across the suite:
    /// 3.3 V rail, reboot at 3.0 V, checkpoint at 2.2 V, brown-out at 1.9 V.
    pub const fn msp430_defaults() -> VoltageThresholds {
        VoltageThresholds {
            v_max: 3.3,
            v_on: 3.0,
            v_backup: 2.2,
            v_off: 1.9,
        }
    }

    /// Whether `v` lies in the `V_fail` danger window (`v_off < v < v_backup`)
    /// where a spoofed wake-up precedes an under-energized checkpoint.
    pub fn in_fail_window(&self, v: f64) -> bool {
        v > self.v_off && v < self.v_backup
    }

    /// Rescales the ladder so that a capacitor of `capacitance_f` buffers
    /// the same *energy* between `v_on` and `v_off` as the reference
    /// `(ref_capacitance_f, self)` configuration does.
    ///
    /// This mirrors the paper's capacitor-size sensitivity methodology
    /// (Section VII-D): "all capacitors were set to buffer the same amount
    /// of energy regardless of capacitance", which they achieved by
    /// configuring the checkpoint voltage thresholds accordingly. Keeping
    /// `v_max` and `v_on` fixed, this solves for new `v_backup`/`v_off`.
    pub fn rescale_for_capacitor(
        &self,
        ref_capacitance_f: f64,
        capacitance_f: f64,
    ) -> VoltageThresholds {
        assert!(ref_capacitance_f > 0.0 && capacitance_f > 0.0);
        let ratio = ref_capacitance_f / capacitance_f;
        // Energy budget between v_on and v_off, and margin between
        // v_backup and v_off, both scale with C·ΔV²; solve V' so that
        // C'·(v_on² − v'²) = C·(v_on² − v²).
        let solve = |v: f64| -> f64 {
            let dv2 = (self.v_on * self.v_on - v * v) * ratio;
            (self.v_on * self.v_on - dv2).max(0.0).sqrt()
        };
        let v_off = solve(self.v_off);
        let v_backup = solve(self.v_backup);
        VoltageThresholds::new(self.v_max, self.v_on, v_backup, v_off)
    }
}

impl Default for VoltageThresholds {
    fn default() -> VoltageThresholds {
        VoltageThresholds::msp430_defaults()
    }
}

impl fmt::Display for VoltageThresholds {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Vmax={:.2} Von={:.2} Vbackup={:.2} Voff={:.2}",
            self.v_max, self.v_on, self.v_backup, self.v_off
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_ordering_holds() {
        let t = VoltageThresholds::default();
        assert!(t.v_max >= t.v_on && t.v_on > t.v_backup && t.v_backup > t.v_off);
    }

    #[test]
    #[should_panic(expected = "thresholds")]
    fn rejects_bad_ordering() {
        let _ = VoltageThresholds::new(3.3, 2.0, 2.5, 1.0);
    }

    #[test]
    fn fail_window() {
        let t = VoltageThresholds::default();
        assert!(t.in_fail_window((t.v_off + t.v_backup) / 2.0));
        assert!(!t.in_fail_window(t.v_backup));
        assert!(!t.in_fail_window(t.v_off));
        assert!(!t.in_fail_window(t.v_on));
    }

    #[test]
    fn rescale_preserves_buffered_energy() {
        let t = VoltageThresholds::default();
        let c_ref = 1e-3;
        for &c in &[2e-3, 5e-3, 10e-3] {
            let t2 = t.rescale_for_capacitor(c_ref, c);
            let budget_ref = 0.5 * c_ref * (t.v_on * t.v_on - t.v_off * t.v_off);
            let budget_new = 0.5 * c * (t2.v_on * t2.v_on - t2.v_off * t2.v_off);
            assert!(
                (budget_ref - budget_new).abs() < 1e-9,
                "capacitor {c}: {budget_ref} vs {budget_new}"
            );
            // Larger capacitor ⇒ narrower voltage window.
            assert!(t2.v_off > t.v_off);
        }
    }

    #[test]
    fn rescale_identity() {
        let t = VoltageThresholds::default();
        let t2 = t.rescale_for_capacitor(1e-3, 1e-3);
        assert!((t2.v_backup - t.v_backup).abs() < 1e-12);
        assert!((t2.v_off - t.v_off).abs() < 1e-12);
    }
}
