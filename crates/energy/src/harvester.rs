//! Harvested power sources.

use std::fmt;

/// A source of harvested power. Implementations report the instantaneous
/// power available at a given simulation time; the device integrates it
/// into its capacitor.
///
/// The trait is object-safe so devices can hold `Box<dyn PowerSource>`.
pub trait PowerSource: fmt::Debug {
    /// Instantaneous harvested power in watts at simulation time `t_s`.
    fn power_w(&self, t_s: f64) -> f64;

    /// If the source can guarantee that `power_w(t)` returns the *exact
    /// same* value for every `t` in `[t_s, until)`, returns
    /// `Some((power, until))`; otherwise `None`. `until` may be
    /// `f64::INFINITY` for truly constant sources.
    ///
    /// This is the contract the simulator's hibernation fast-forward relies
    /// on to hoist the (virtual) power query out of its per-tick loop while
    /// staying bit-identical to per-tick sampling. Implementations must be
    /// conservative: when in doubt (e.g. near a segment boundary that float
    /// rounding could blur), report a shorter horizon or `None`. The
    /// default is `None`, which simply disables coalescing for the source.
    fn constant_until(&self, t_s: f64) -> Option<(f64, f64)> {
        let _ = t_s;
        None
    }

    /// A short human-readable description for experiment logs.
    fn describe(&self) -> String {
        format!("{self:?}")
    }
}

/// A constant power source — a lab DC bench supply (as in the paper's DPI
/// and remote-attack experiments, which power the board from +3.3 V DC) or
/// an idealized harvester.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConstantPower {
    /// Delivered power (W).
    pub power_w: f64,
}

impl ConstantPower {
    /// Creates a constant source.
    ///
    /// # Panics
    ///
    /// Panics if `power_w` is negative.
    pub fn new(power_w: f64) -> ConstantPower {
        assert!(power_w >= 0.0, "power must be non-negative");
        ConstantPower { power_w }
    }

    /// A generous bench supply that keeps the capacitor topped up: 100 mW.
    pub const fn bench_supply() -> ConstantPower {
        ConstantPower { power_w: 0.1 }
    }
}

impl PowerSource for ConstantPower {
    fn power_w(&self, _t_s: f64) -> f64 {
        self.power_w
    }

    fn constant_until(&self, _t_s: f64) -> Option<(f64, f64)> {
        Some((self.power_w, f64::INFINITY))
    }
}

/// A pulsed RF source: `on_power_w` for the first `duty` fraction of every
/// `period_s`, zero for the rest. The paper's "realistic energy harvesting
/// environmental setting" induces a power outage at 1 Hz — that is
/// `PulsedRf { period_s: 1.0, duty: 0.5, .. }`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PulsedRf {
    /// Cycle period (s).
    pub period_s: f64,
    /// Fraction of the period during which power flows, in `(0, 1]`.
    pub duty: f64,
    /// Power while on (W).
    pub on_power_w: f64,
}

impl PulsedRf {
    /// Creates a pulsed source.
    ///
    /// # Panics
    ///
    /// Panics if `period_s <= 0`, `duty` is outside `(0, 1]`, or power is
    /// negative.
    pub fn new(period_s: f64, duty: f64, on_power_w: f64) -> PulsedRf {
        assert!(period_s > 0.0, "period must be positive");
        assert!(duty > 0.0 && duty <= 1.0, "duty must be in (0, 1]");
        assert!(on_power_w >= 0.0, "power must be non-negative");
        PulsedRf {
            period_s,
            duty,
            on_power_w,
        }
    }

    /// The paper's evaluation trace: 1 Hz outages, 2 mW while on.
    pub const fn one_hz_outages() -> PulsedRf {
        PulsedRf {
            period_s: 1.0,
            duty: 0.5,
            on_power_w: 2e-3,
        }
    }
}

impl PowerSource for PulsedRf {
    fn power_w(&self, t_s: f64) -> f64 {
        let phase = (t_s / self.period_s).fract();
        if phase < self.duty {
            self.on_power_w
        } else {
            0.0
        }
    }

    fn constant_until(&self, t_s: f64) -> Option<(f64, f64)> {
        if self.duty >= 1.0 {
            return Some((self.on_power_w, f64::INFINITY));
        }
        if t_s < 0.0 {
            return None;
        }
        let cycles = t_s / self.period_s;
        let k = cycles.floor();
        // End of the segment `t_s` falls in, in the same units power_w
        // evaluates. Callers keep a safety slack below the horizon, which
        // absorbs the float rounding at the exact boundary.
        let until = if cycles - k < self.duty {
            (k + self.duty) * self.period_s
        } else {
            (k + 1.0) * self.period_s
        };
        Some((self.power_w(t_s), until))
    }
}

/// A Powercast-like dedicated RF power source (TX91501-3W at 915 MHz, as in
/// Section VII-B4): transmit power attenuated by free-space path loss and
/// converted by a rectenna of fixed aperture and efficiency.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowercastRf {
    /// Transmitter EIRP (W). The TX91501-3W emits 3 W.
    pub tx_power_w: f64,
    /// Distance from transmitter to harvester (m).
    pub distance_m: f64,
    /// Carrier frequency (Hz); 915 MHz for the Powercast pair.
    pub freq_hz: f64,
    /// Receive antenna gain (linear) × rectifier efficiency.
    pub harvest_gain: f64,
}

impl PowercastRf {
    /// Creates a Powercast-like link.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is non-positive.
    pub fn new(tx_power_w: f64, distance_m: f64, freq_hz: f64, harvest_gain: f64) -> PowercastRf {
        assert!(tx_power_w > 0.0 && distance_m > 0.0 && freq_hz > 0.0 && harvest_gain > 0.0);
        PowercastRf {
            tx_power_w,
            distance_m,
            freq_hz,
            harvest_gain,
        }
    }

    /// The paper's evaluation configuration: TX91501-3W at 915 MHz, ~1 m.
    pub fn tx91501_at(distance_m: f64) -> PowercastRf {
        PowercastRf::new(3.0, distance_m, 915e6, 2.0)
    }

    /// Friis free-space received power for this link.
    pub fn received_power_w(&self) -> f64 {
        let c = 299_792_458.0;
        let lambda = c / self.freq_hz;
        let factor = lambda / (4.0 * std::f64::consts::PI * self.distance_m);
        self.tx_power_w * self.harvest_gain * factor * factor
    }
}

impl PowerSource for PowercastRf {
    fn power_w(&self, _t_s: f64) -> f64 {
        self.received_power_w()
    }

    fn constant_until(&self, _t_s: f64) -> Option<(f64, f64)> {
        Some((self.received_power_w(), f64::INFINITY))
    }
}

/// A piecewise-constant recorded power trace, stepped at a fixed interval
/// and repeated cyclically — how real harvester logs are replayed.
#[derive(Debug, Clone, PartialEq)]
pub struct TracePower {
    samples_w: Vec<f64>,
    step_s: f64,
}

impl TracePower {
    /// Creates a trace from samples taken every `step_s` seconds.
    ///
    /// # Panics
    ///
    /// Panics if `samples_w` is empty or `step_s <= 0`.
    pub fn new(samples_w: Vec<f64>, step_s: f64) -> TracePower {
        assert!(!samples_w.is_empty(), "trace must have samples");
        assert!(step_s > 0.0, "step must be positive");
        TracePower { samples_w, step_s }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples_w.len()
    }

    /// Whether the trace is empty (never true for a constructed trace).
    pub fn is_empty(&self) -> bool {
        self.samples_w.is_empty()
    }

    /// Duration of one pass through the trace.
    pub fn duration_s(&self) -> f64 {
        self.samples_w.len() as f64 * self.step_s
    }
}

impl PowerSource for TracePower {
    fn power_w(&self, t_s: f64) -> f64 {
        let idx = (t_s / self.step_s) as usize % self.samples_w.len();
        self.samples_w[idx]
    }

    fn constant_until(&self, t_s: f64) -> Option<(f64, f64)> {
        if t_s < 0.0 {
            return None;
        }
        let step = (t_s / self.step_s).floor();
        Some((self.power_w(t_s), (step + 1.0) * self.step_s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_is_constant() {
        let s = ConstantPower::new(5e-3);
        assert_eq!(s.power_w(0.0), 5e-3);
        assert_eq!(s.power_w(1e6), 5e-3);
    }

    #[test]
    fn pulsed_duty_cycle() {
        let s = PulsedRf::new(1.0, 0.25, 1e-3);
        assert_eq!(s.power_w(0.0), 1e-3);
        assert_eq!(s.power_w(0.2), 1e-3);
        assert_eq!(s.power_w(0.3), 0.0);
        assert_eq!(s.power_w(0.99), 0.0);
        assert_eq!(s.power_w(1.1), 1e-3, "periodic");
    }

    #[test]
    fn powercast_follows_inverse_square() {
        let near = PowercastRf::tx91501_at(1.0).received_power_w();
        let far = PowercastRf::tx91501_at(2.0).received_power_w();
        assert!(
            (near / far - 4.0).abs() < 1e-9,
            "doubling distance quarters power"
        );
        // Order of magnitude: a Powercast link at 1 m harvests µW..mW.
        assert!(near > 1e-6 && near < 1e-2, "got {near} W");
    }

    #[test]
    fn trace_wraps() {
        let t = TracePower::new(vec![1.0, 2.0, 3.0], 0.5);
        assert_eq!(t.power_w(0.0), 1.0);
        assert_eq!(t.power_w(0.6), 2.0);
        assert_eq!(t.power_w(1.2), 3.0);
        assert_eq!(t.power_w(1.6), 1.0, "wraps around");
        assert!((t.duration_s() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn constant_until_agrees_with_power_w() {
        let c = ConstantPower::new(5e-3);
        assert_eq!(c.constant_until(3.0), Some((5e-3, f64::INFINITY)));

        let p = PulsedRf::new(1.0, 0.25, 1e-3);
        let (pw, until) = p.constant_until(0.1).unwrap();
        assert_eq!(pw, p.power_w(0.1));
        assert!(until > 0.1 && until <= 0.25 + 1e-12, "{until}");
        let (pw, until) = p.constant_until(0.6).unwrap();
        assert_eq!(pw, 0.0);
        assert!((until - 1.0).abs() < 1e-12);

        let rf = PowercastRf::tx91501_at(1.0);
        assert_eq!(
            rf.constant_until(9.0),
            Some((rf.received_power_w(), f64::INFINITY))
        );

        let t = TracePower::new(vec![1.0, 2.0], 0.5);
        let (pw, until) = t.constant_until(0.6).unwrap();
        assert_eq!(pw, 2.0);
        assert!((until - 1.0).abs() < 1e-12);
        assert_eq!(t.constant_until(-1.0), None, "negative time: no claim");
    }

    #[test]
    fn sources_are_object_safe() {
        let sources: Vec<Box<dyn PowerSource>> = vec![
            Box::new(ConstantPower::bench_supply()),
            Box::new(PulsedRf::one_hz_outages()),
            Box::new(PowercastRf::tx91501_at(1.0)),
        ];
        for s in &sources {
            assert!(s.power_w(0.0) >= 0.0);
            assert!(!s.describe().is_empty());
        }
    }
}
