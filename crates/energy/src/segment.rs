//! Closed-form trajectory segmentation for event-horizon stepping.
//!
//! Between observable events the capacitor trajectory under a constant
//! harvester segment and a repeating per-step draw profile is affine:
//! every simulation step banks `gain_j` and then draws `draw_j`, so after
//! `k` steps the stored energy is `E_k = E_0 - k·(draw_j - gain_j)`.
//! The solvers here answer the two questions the simulator's active-path
//! coalescer needs:
//!
//! * [`next_crossing`] — the exact first step at which the affine
//!   trajectory falls strictly below a floor (the threshold-crossing
//!   "event horizon"), or proof that it never does.
//! * [`safe_steps`] — a *conservative* step count guaranteed to keep the
//!   trajectory at or above a guard floor even when each step loses the
//!   worst-case amount, used to size a batched segment before executing
//!   it.
//!
//! Floating point makes "exact" subtle: the per-cycle reference loop
//! accumulates `E ← (E + gain) - draw` with two roundings per step, which
//! only agrees with the affine form when every intermediate value is
//! exactly representable. The simulator therefore never trusts the closed
//! form alone — it uses these solvers to *decide whether and how far* to
//! batch, and re-checks an exact per-step guard while replaying the very
//! same float operations the reference would execute (see DESIGN.md §13).
//! The property tests in `tests/segment_props.rs` pin both contracts:
//! exactness on dyadic-rational inputs whose partial sums stay below
//! 2^52 quanta, and conservativeness of [`safe_steps`] on arbitrary
//! inputs.

/// Per-step energy profile of an affine trajectory segment: each step
/// banks `gain_j` joules of harvest and then draws `draw_j` joules.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepProfile {
    /// Energy banked per step (harvested power × step duration ×
    /// charging efficiency), in joules. Never negative.
    pub gain_j: f64,
    /// Energy drawn per step (instruction or sleep draw plus leakage),
    /// in joules. Never negative.
    pub draw_j: f64,
}

impl StepProfile {
    /// A profile banking `gain_j` and drawing `draw_j` per step.
    pub fn new(gain_j: f64, draw_j: f64) -> StepProfile {
        StepProfile { gain_j, draw_j }
    }

    /// Net energy lost per step, `draw_j - gain_j`; negative or zero
    /// means the trajectory is non-draining.
    pub fn net_loss_j(&self) -> f64 {
        self.draw_j - self.gain_j
    }
}

/// Where an affine trajectory first falls strictly below a floor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Crossing {
    /// The starting energy is already strictly below the floor.
    Already,
    /// The trajectory first goes strictly below the floor at the end of
    /// step `k` (1-based: after `k` steps, `E_k < floor` and
    /// `E_{k-1} >= floor`).
    At(u64),
    /// The trajectory never falls below the floor: the profile is
    /// non-draining, or the crossing lies beyond 2^53 steps (past f64
    /// integer resolution — callers treat the horizon as unbounded).
    Never,
}

/// The first step at which the affine trajectory `E_k = e0_j - k·net`
/// (with `net = profile.net_loss_j()`) falls strictly below `floor_j`.
///
/// The candidate index comes from the closed form
/// `k = ⌊(e0 - floor) / net⌋ + 1` and is then corrected against the
/// affine formula itself, so a one-ulp error in the float division cannot
/// move the answer across a step boundary: the returned `k` always
/// satisfies `e0 - (k-1)·net >= floor` and `e0 - k·net < floor` as
/// evaluated in f64. On inputs where every `k·net` and subtraction is
/// exactly representable (the dyadic-rational regime of the property
/// tests) this equals the per-step reference iteration exactly.
pub fn next_crossing(e0_j: f64, floor_j: f64, profile: &StepProfile) -> Crossing {
    if e0_j < floor_j {
        return Crossing::Already;
    }
    let net = profile.net_loss_j();
    if net <= 0.0 {
        return Crossing::Never;
    }
    let span = e0_j - floor_j;
    let q = span / net;
    if !q.is_finite() || q >= 9.007_199_254_740_992e15 {
        // Beyond 2^53 steps `k·net` can no longer index individual steps.
        return Crossing::Never;
    }
    // `last` is the candidate for the last step still at or above the
    // floor; nudge it down then correct in both directions.
    let mut last = q.floor().max(1.0) - 1.0;
    while last > 0.0 && e0_j - last * net < floor_j {
        last -= 1.0;
    }
    while e0_j - (last + 1.0) * net >= floor_j {
        last += 1.0;
    }
    Crossing::At(last as u64 + 1)
}

/// A conservative number of steps guaranteed to keep the trajectory at or
/// above `floor_j` when every step loses at most `worst_loss_j` joules.
///
/// Returns 0 when no step is provably safe and `u64::MAX` when
/// `worst_loss_j <= 0` (a non-draining worst case never crosses). The
/// count is deliberately a haircut below the exact crossing — one full
/// step plus a 1e-9 relative shave — and is clamped to 2^32 steps so that
/// accumulated f64 rounding across a batch (≤ `k·2⁻⁵²·e0` after `k`
/// steps) stays orders of magnitude below any guard margin the simulator
/// uses; callers must still keep `floor_j` a real margin above the
/// threshold they protect (the sim uses the ADC-LSB margin, ~10⁻⁶ J,
/// vs ≤ 10⁻⁸ J of drift at the clamp) and re-check per-step while
/// replaying (DESIGN.md §13).
pub fn safe_steps(e0_j: f64, floor_j: f64, worst_loss_j: f64) -> u64 {
    // NaN-safe: anything but a strict `e0 > floor` (including NaN inputs)
    // means no step is provably safe.
    if e0_j.partial_cmp(&floor_j) != Some(std::cmp::Ordering::Greater) {
        return 0;
    }
    if worst_loss_j <= 0.0 {
        return u64::MAX;
    }
    let q = (e0_j - floor_j) / worst_loss_j;
    let n = (q * (1.0 - 1e-9)).floor() - 1.0;
    if n <= 0.0 {
        0
    } else {
        (n as u64).min(1 << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iterate_crossing(e0: f64, floor: f64, p: &StepProfile, cap: u64) -> Crossing {
        if e0 < floor {
            return Crossing::Already;
        }
        let mut e = e0;
        for k in 1..=cap {
            e = (e + p.gain_j) - p.draw_j;
            if e < floor {
                return Crossing::At(k);
            }
        }
        Crossing::Never
    }

    #[test]
    fn already_below_floor() {
        let p = StepProfile::new(0.0, 1.0);
        assert_eq!(next_crossing(1.0, 2.0, &p), Crossing::Already);
    }

    #[test]
    fn non_draining_never_crosses() {
        let p = StepProfile::new(2.0, 1.0);
        assert_eq!(next_crossing(10.0, 1.0, &p), Crossing::Never);
        let balanced = StepProfile::new(1.0, 1.0);
        assert_eq!(next_crossing(10.0, 1.0, &balanced), Crossing::Never);
    }

    #[test]
    fn exact_small_cases_match_iteration() {
        // 10 → floor 3 at 1 J/step: steps end at 9,8,…; first < 3 is step 8.
        let p = StepProfile::new(0.0, 1.0);
        assert_eq!(next_crossing(10.0, 3.0, &p), Crossing::At(8));
        assert_eq!(iterate_crossing(10.0, 3.0, &p, 100), Crossing::At(8));
        // Landing exactly on the floor does not cross (strict inequality).
        assert_eq!(next_crossing(3.0, 3.0, &p), Crossing::At(1));
        assert_eq!(iterate_crossing(3.0, 3.0, &p, 100), Crossing::At(1));
    }

    #[test]
    fn gain_offsets_draw() {
        let p = StepProfile::new(0.25, 1.25);
        assert_eq!(
            next_crossing(10.0, 3.0, &p),
            iterate_crossing(10.0, 3.0, &p, 100)
        );
    }

    #[test]
    fn far_crossing_is_never() {
        let p = StepProfile::new(0.0, 1e-300);
        assert_eq!(next_crossing(1.0, 0.0, &p), Crossing::Never);
    }

    #[test]
    fn safe_steps_is_below_crossing() {
        let n = safe_steps(10.0, 3.0, 1.0);
        assert!((1..8).contains(&n), "n = {n}");
        assert_eq!(safe_steps(1.0, 2.0, 1.0), 0);
        assert_eq!(safe_steps(10.0, 3.0, 0.0), u64::MAX);
        assert_eq!(safe_steps(10.0, 3.0, -1.0), u64::MAX);
        // Tiny losses clamp at 2^32 so drift stays bounded.
        assert_eq!(safe_steps(1.0, 0.0, 1e-30), 1 << 32);
    }
}
