//! Property tests of the energy substrate: capacitor physics invariants
//! that every simulation run implicitly relies on.
//!
//! Inputs are generated deterministically with the in-tree
//! [`SplitMix64`] generator (seeded per property), so failures reproduce
//! exactly and the suite needs no external property-testing dependency.

use gecko_energy::{Capacitor, PowerSource, PulsedRf, VoltageThresholds};
use gecko_isa::SplitMix64;

const CASES: u64 = 24;

/// Runs `body` on `CASES` deterministic RNG states derived from `seed`.
fn for_cases(seed: u64, mut body: impl FnMut(&mut SplitMix64)) {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(seed ^ case.wrapping_mul(0x9E37_79B9));
        body(&mut rng);
    }
}

/// Charging never exceeds the ceiling and never loses banked energy.
#[test]
fn charge_is_bounded_and_conservative() {
    for_cases(0xCAFE_0001, |rng| {
        let c_mf = rng.range_f64(0.01, 20.0);
        let v0 = rng.range_f64(0.0, 3.3);
        let power_mw = rng.range_f64(0.0, 50.0);
        let dt_ms = rng.range_f64(0.0, 500.0);
        let mut cap = Capacitor::new(c_mf * 1e-3, v0);
        let before = cap.energy_j();
        let banked = cap.charge(power_mw * 1e-3, dt_ms * 1e-3, 3.3);
        assert!(cap.voltage_v() <= 3.3 + 1e-9);
        assert!(banked >= -1e-12, "lossless charge cannot drain: {banked}");
        assert!(
            (cap.energy_j() - before - banked).abs() < 1e-9,
            "energy accounting closes"
        );
        assert!(banked <= power_mw * 1e-3 * dt_ms * 1e-3 + 1e-12);
    });
}

/// Discharging is exact while energy is available and clamps at zero.
#[test]
fn discharge_is_exact_or_brownout() {
    for_cases(0xCAFE_0002, |rng| {
        let c_mf = rng.range_f64(0.01, 20.0);
        let v0 = rng.range_f64(0.0, 3.3);
        let draw_uj = rng.range_f64(0.0, 20_000.0);
        let mut cap = Capacitor::new(c_mf * 1e-3, v0);
        let before = cap.energy_j();
        let draw = draw_uj * 1e-6;
        let ok = cap.discharge_j(draw);
        if ok {
            assert!((before - cap.energy_j() - draw).abs() < 1e-9);
        } else {
            assert!(draw > before);
            assert_eq!(cap.voltage_v(), 0.0);
        }
    });
}

/// Charge/discharge round-trips return to the same voltage.
#[test]
fn charge_then_discharge_roundtrips() {
    for_cases(0xCAFE_0003, |rng| {
        let c_mf = rng.range_f64(0.1, 10.0);
        let v0 = rng.range_f64(0.5, 2.5);
        let add_uj = rng.range_f64(0.0, 500.0);
        let mut cap = Capacitor::new(c_mf * 1e-3, v0);
        // Inject energy as 1 s of the equivalent power, then remove it.
        let banked = cap.charge(add_uj * 1e-6, 1.0, 3.3);
        assert!(cap.discharge_j(banked));
        assert!((cap.voltage_v() - v0).abs() < 1e-6);
    });
}

/// Time-to-charge is consistent with actually charging for that long.
#[test]
fn time_to_charge_is_accurate() {
    for_cases(0xCAFE_0004, |rng| {
        let c_mf = rng.range_f64(0.1, 5.0);
        let v0 = rng.range_f64(0.0, 2.0);
        let power_mw = rng.range_f64(0.1, 10.0);
        let cap = Capacitor::new(c_mf * 1e-3, v0);
        let t = cap.time_to_charge_s(3.0, power_mw * 1e-3);
        assert!(t.is_finite());
        let mut cap2 = cap.clone();
        cap2.charge(power_mw * 1e-3, t, 3.3);
        assert!(
            (cap2.voltage_v() - 3.0).abs() < 1e-6,
            "{}",
            cap2.voltage_v()
        );
    });
}

/// Threshold rescaling preserves the buffered energy for any larger
/// capacitor.
#[test]
fn rescaling_preserves_buffered_energy() {
    for_cases(0xCAFE_0005, |rng| {
        let scale = rng.range_f64(1.0, 20.0);
        let t = VoltageThresholds::default();
        let c_ref = 1e-3;
        let c = c_ref * scale;
        let t2 = t.rescale_for_capacitor(c_ref, c);
        let e1 = 0.5 * c_ref * (t.v_on * t.v_on - t.v_off * t.v_off);
        let e2 = 0.5 * c * (t2.v_on * t2.v_on - t2.v_off * t2.v_off);
        assert!((e1 - e2).abs() < 1e-9);
        assert!(t2.v_on > t2.v_backup && t2.v_backup > t2.v_off);
    });
}

/// Pulsed sources are periodic and never negative.
#[test]
fn pulsed_sources_are_periodic() {
    for_cases(0xCAFE_0006, |rng| {
        let period_ms = rng.range_f64(1.0, 2_000.0);
        let duty = rng.range_f64(0.05, 1.0);
        let t_s = rng.range_f64(0.0, 100.0);
        let src = PulsedRf::new(period_ms * 1e-3, duty, 1e-3);
        let p1 = src.power_w(t_s);
        let p2 = src.power_w(t_s + period_ms * 1e-3);
        assert!(p1 >= 0.0);
        assert!((p1 - p2).abs() < 1e-12, "periodic");
    });
}
