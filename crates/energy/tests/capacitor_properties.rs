//! Property tests of the energy substrate: capacitor physics invariants
//! that every simulation run implicitly relies on.

use gecko_energy::{Capacitor, PowerSource, PulsedRf, VoltageThresholds};
use proptest::prelude::*;

proptest! {
    /// Charging never exceeds the ceiling and never loses banked energy.
    #[test]
    fn charge_is_bounded_and_conservative(
        c_mf in 0.01f64..20.0,
        v0 in 0.0f64..3.3,
        power_mw in 0.0f64..50.0,
        dt_ms in 0.0f64..500.0,
    ) {
        let mut cap = Capacitor::new(c_mf * 1e-3, v0);
        let before = cap.energy_j();
        let banked = cap.charge(power_mw * 1e-3, dt_ms * 1e-3, 3.3);
        prop_assert!(cap.voltage_v() <= 3.3 + 1e-9);
        prop_assert!(banked >= -1e-12, "lossless charge cannot drain: {banked}");
        prop_assert!(
            (cap.energy_j() - before - banked).abs() < 1e-9,
            "energy accounting closes"
        );
        prop_assert!(banked <= power_mw * 1e-3 * dt_ms * 1e-3 + 1e-12);
    }

    /// Discharging is exact while energy is available and clamps at zero.
    #[test]
    fn discharge_is_exact_or_brownout(
        c_mf in 0.01f64..20.0,
        v0 in 0.0f64..3.3,
        draw_uj in 0.0f64..20_000.0,
    ) {
        let mut cap = Capacitor::new(c_mf * 1e-3, v0);
        let before = cap.energy_j();
        let draw = draw_uj * 1e-6;
        let ok = cap.discharge_j(draw);
        if ok {
            prop_assert!((before - cap.energy_j() - draw).abs() < 1e-9);
        } else {
            prop_assert!(draw > before);
            prop_assert_eq!(cap.voltage_v(), 0.0);
        }
    }

    /// Charge/discharge round-trips return to the same voltage.
    #[test]
    fn charge_then_discharge_roundtrips(
        c_mf in 0.1f64..10.0,
        v0 in 0.5f64..2.5,
        add_uj in 0.0f64..500.0,
    ) {
        let mut cap = Capacitor::new(c_mf * 1e-3, v0);
        // Inject energy as 1 s of the equivalent power, then remove it.
        let banked = cap.charge(add_uj * 1e-6, 1.0, 3.3);
        prop_assert!(cap.discharge_j(banked));
        prop_assert!((cap.voltage_v() - v0).abs() < 1e-6);
    }

    /// Time-to-charge is consistent with actually charging for that long.
    #[test]
    fn time_to_charge_is_accurate(
        c_mf in 0.1f64..5.0,
        v0 in 0.0f64..2.0,
        power_mw in 0.1f64..10.0,
    ) {
        let cap = Capacitor::new(c_mf * 1e-3, v0);
        let t = cap.time_to_charge_s(3.0, power_mw * 1e-3);
        prop_assert!(t.is_finite());
        let mut cap2 = cap.clone();
        cap2.charge(power_mw * 1e-3, t, 3.3);
        prop_assert!((cap2.voltage_v() - 3.0).abs() < 1e-6, "{}", cap2.voltage_v());
    }

    /// Threshold rescaling preserves the buffered energy for any larger
    /// capacitor.
    #[test]
    fn rescaling_preserves_buffered_energy(scale in 1.0f64..20.0) {
        let t = VoltageThresholds::default();
        let c_ref = 1e-3;
        let c = c_ref * scale;
        let t2 = t.rescale_for_capacitor(c_ref, c);
        let e1 = 0.5 * c_ref * (t.v_on * t.v_on - t.v_off * t.v_off);
        let e2 = 0.5 * c * (t2.v_on * t2.v_on - t2.v_off * t2.v_off);
        prop_assert!((e1 - e2).abs() < 1e-9);
        prop_assert!(t2.v_on > t2.v_backup && t2.v_backup > t2.v_off);
    }

    /// Pulsed sources are periodic and never negative.
    #[test]
    fn pulsed_sources_are_periodic(
        period_ms in 1.0f64..2_000.0,
        duty in 0.05f64..1.0,
        t_s in 0.0f64..100.0,
    ) {
        let src = PulsedRf::new(period_ms * 1e-3, duty, 1e-3);
        let p1 = src.power_w(t_s);
        let p2 = src.power_w(t_s + period_ms * 1e-3);
        prop_assert!(p1 >= 0.0);
        prop_assert!((p1 - p2).abs() < 1e-12, "periodic");
    }
}
