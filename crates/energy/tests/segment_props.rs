//! Property tests for the closed-form segment solver.
//!
//! Two contracts (see `segment.rs` module docs):
//!
//! * **Exactness** — on dyadic-rational parameters whose partial sums stay
//!   below 2^52 quanta, every float operation of the per-step reference
//!   iteration is exact, so the closed-form crossing must equal the first
//!   per-step integration crossing — including the no-crossing and
//!   already-below cases.
//! * **Conservativeness** — `safe_steps` never overshoots: taking that
//!   many worst-case steps (as actually evaluated in f64) keeps the
//!   trajectory at or above the floor the whole way.

use gecko_energy::segment::{next_crossing, safe_steps, Crossing, StepProfile};

/// Minimal splitmix64 (same construction as `gecko_isa::rng`), kept local
/// so `gecko-energy`'s dev-dependencies stay at layer 0.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// One quantum: every drawn parameter is an integer multiple of 2^-20, so
/// sums bounded by 2^32 quanta (< 2^52 total scale) are exact in f64.
const Q: f64 = 1.0 / (1 << 20) as f64;

/// The per-cycle reference: integrate `E ← (E + gain) - draw` step by
/// step and report the first step strictly below the floor.
fn iterate_crossing(e0: f64, floor: f64, p: &StepProfile, cap: u64) -> Crossing {
    if e0 < floor {
        return Crossing::Already;
    }
    let mut e = e0;
    for k in 1..=cap {
        e = (e + p.gain_j) - p.draw_j;
        if e < floor {
            return Crossing::At(k);
        }
    }
    Crossing::Never
}

#[test]
fn closed_form_matches_per_step_integration_on_exact_inputs() {
    const CAP: u64 = 200_000;
    let mut rng = SplitMix64(0x5eed_0001);
    for case in 0..2_000u64 {
        // Integer quanta: e0, floor ≤ 2^31 quanta; gain, draw ≤ 2^10
        // quanta. Partial sums stay ≤ 2^31 + CAP·2^10 < 2^39 quanta,
        // far inside the exact-f64 window.
        let e0 = rng.below(1 << 31) as f64 * Q;
        let floor = rng.below(1 << 31) as f64 * Q;
        let gain = rng.below(1 << 10) as f64 * Q;
        let draw = rng.below(1 << 10) as f64 * Q;
        let p = StepProfile::new(gain, draw);

        let reference = iterate_crossing(e0, floor, &p, CAP);
        let closed = next_crossing(e0, floor, &p);
        match (closed, reference) {
            // The iteration is capped; a genuine crossing beyond the cap
            // must still be consistent with "no crossing within CAP".
            (Crossing::At(k), Crossing::Never) => {
                assert!(k > CAP, "case {case}: closed form At({k}) inside cap")
            }
            (c, r) => assert_eq!(c, r, "case {case}: e0={e0} floor={floor} p={p:?}"),
        }
    }
}

#[test]
fn closed_form_handles_no_crossing_and_already_below() {
    let mut rng = SplitMix64(0x5eed_0002);
    for _ in 0..500 {
        let e0 = rng.below(1 << 31) as f64 * Q;
        let floor = rng.below(1 << 31) as f64 * Q;
        let draw = rng.below(1 << 10) as f64 * Q;
        // Non-draining: gain ≥ draw never crosses (unless already below).
        let p = StepProfile::new(draw + rng.below(1 << 10) as f64 * Q, draw);
        let expected = if e0 < floor {
            Crossing::Already
        } else {
            Crossing::Never
        };
        assert_eq!(next_crossing(e0, floor, &p), expected);
    }
}

#[test]
fn safe_steps_never_overshoots() {
    const CAP: u64 = 200_000;
    let mut rng = SplitMix64(0x5eed_0003);
    for case in 0..2_000u64 {
        // Arbitrary (non-dyadic) magnitudes across the simulator's real
        // regimes: millijoule storage, nanojoule-to-millijoule losses.
        let e0 = 1e-6 * 10f64.powf(4.0 * rng.unit_f64());
        let floor = e0 * rng.unit_f64();
        // Keep the loss ≥ 1e-9·e0 so CAP steps of f64 rounding noise
        // (≈ CAP·2⁻⁵²·e0) stay far below one step's haircut.
        let loss = e0 * (1e-9 + rng.unit_f64());
        let n = safe_steps(e0, floor, loss);
        let mut e = e0;
        for k in 0..n.min(CAP) {
            e -= loss;
            assert!(
                e >= floor,
                "case {case}: below floor after step {} of {n} (e0={e0} floor={floor} loss={loss})",
                k + 1
            );
        }
    }
}
