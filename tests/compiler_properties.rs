//! Property-based tests over *randomly generated programs*: the GECKO
//! pipeline must compile anything the generator produces, the result must
//! satisfy the slot-coloring invariant, the assembler must round-trip it,
//! and — the crown jewel — execution under injected power failures must
//! produce exactly the failure-free result.
//!
//! Programs are generated deterministically with the in-tree
//! [`SplitMix64`] generator (one seeded stream per case), so failures
//! reproduce exactly and the suite needs no external property-testing
//! dependency.

use gecko_suite::apps::App;
use gecko_suite::compiler::{coloring, compile, CompileOptions, RegionTable};
use gecko_suite::isa::{asm, BinOp, Cond, Inst, Program, ProgramBuilder, Reg, SplitMix64};
use gecko_suite::mcu::{run_to_completion, Nvm, Peripherals};
use gecko_suite::sim::{SchemeKind, SimConfig, Simulator};

const RO_WORDS: u32 = 8;
const RW_WORDS: u32 = 8;
const CASES: u64 = 24;

/// One generated operation over data registers r1..r5, using r6/r7 as
/// scratch. Memory is accessed through hoisted segment bases with masked
/// indices, so every access stays in bounds.
#[derive(Debug, Clone)]
enum Op {
    Bin(BinOp, u8, u8, i32),
    BinReg(BinOp, u8, u8, u8),
    LoadRo(u8, u8),
    LoadRw(u8, u8),
    StoreRw(u8, u8),
    Blink,
}

#[derive(Debug, Clone)]
enum Phase {
    Straight(Vec<Op>),
    Loop { bound: u8, body: Vec<Op> },
}

fn data_reg(rng: &mut SplitMix64) -> u8 {
    rng.range_u64(1, 6) as u8
}

fn safe_binop(rng: &mut SplitMix64) -> BinOp {
    const OPS: [BinOp; 10] = [
        BinOp::Add,
        BinOp::Sub,
        BinOp::Mul,
        BinOp::And,
        BinOp::Or,
        BinOp::Xor,
        BinOp::Min,
        BinOp::Max,
        BinOp::Div,
        BinOp::Rem,
    ];
    OPS[rng.range_u64(0, OPS.len() as u64) as usize]
}

fn gen_op(rng: &mut SplitMix64) -> Op {
    match rng.pick_weighted(&[4, 3, 2, 2, 2, 1]) {
        0 => Op::Bin(
            safe_binop(rng),
            data_reg(rng),
            data_reg(rng),
            rng.range_i64(-40, 40) as i32,
        ),
        1 => Op::BinReg(safe_binop(rng), data_reg(rng), data_reg(rng), data_reg(rng)),
        2 => Op::LoadRo(data_reg(rng), data_reg(rng)),
        3 => Op::LoadRw(data_reg(rng), data_reg(rng)),
        4 => Op::StoreRw(data_reg(rng), data_reg(rng)),
        _ => Op::Blink,
    }
}

fn gen_ops(rng: &mut SplitMix64, lo: u64, hi: u64) -> Vec<Op> {
    (0..rng.range_u64(lo, hi)).map(|_| gen_op(rng)).collect()
}

fn gen_phase(rng: &mut SplitMix64) -> Phase {
    if rng.next_u64().is_multiple_of(2) {
        Phase::Straight(gen_ops(rng, 3, 10))
    } else {
        Phase::Loop {
            bound: rng.range_u64(2, 6) as u8,
            body: gen_ops(rng, 3, 8),
        }
    }
}

/// Generates one program spec: 1–3 phases plus an 8-word RO data image.
fn program_spec(rng: &mut SplitMix64) -> (Vec<Phase>, Vec<i32>) {
    let phases = (0..rng.range_u64(1, 4)).map(|_| gen_phase(rng)).collect();
    let ro = (0..RO_WORDS)
        .map(|_| rng.range_i64(-500, 500) as i32)
        .collect();
    (phases, ro)
}

/// Runs `body` on `CASES` independently seeded program specs.
fn for_generated_programs(seed: u64, mut body: impl FnMut(Vec<Phase>, Vec<i32>)) {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(seed ^ case.wrapping_mul(0x9E37_79B9));
        let (phases, ro) = program_spec(&mut rng);
        body(phases, ro);
    }
}

fn reg(i: u8) -> Reg {
    Reg::new(i as usize)
}

fn emit_ops(b: &mut ProgramBuilder, ops: &[Op], ro_base: Reg, rw_base: Reg) {
    let scratch = Reg::R6;
    for o in ops {
        match *o {
            Op::Bin(op, d, l, k) => b.bin(op, reg(d), reg(l), k),
            Op::BinReg(op, d, l, r) => b.bin(op, reg(d), reg(l), reg(r)),
            Op::LoadRo(d, s) => {
                b.bin(BinOp::And, scratch, reg(s), RO_WORDS as i32 - 1);
                b.bin(BinOp::Add, scratch, ro_base, scratch);
                b.load(reg(d), scratch, 0);
            }
            Op::LoadRw(d, s) => {
                b.bin(BinOp::And, scratch, reg(s), RW_WORDS as i32 - 1);
                b.bin(BinOp::Add, scratch, rw_base, scratch);
                b.load(reg(d), scratch, 0);
            }
            Op::StoreRw(s, i) => {
                b.bin(BinOp::And, scratch, reg(i), RW_WORDS as i32 - 1);
                b.bin(BinOp::Add, scratch, rw_base, scratch);
                b.store(reg(s), scratch, 0);
            }
            Op::Blink => b.blink(),
        }
    }
}

/// Builds a runnable program from a spec. The epilogue folds the whole RW
/// segment and the data registers into one checksum word, so any silent
/// state corruption shows up in the output.
fn build_program(phases: &[Phase]) -> (Program, u32, u32) {
    let mut b = ProgramBuilder::new("generated");
    let ro = b.segment("ro", RO_WORDS, false);
    let rw = b.segment("rw", RW_WORDS, true);
    let out = b.segment("out", 1, true);
    let (ro_base, rw_base) = (Reg::R10, Reg::R11);
    let counter = Reg::R7;
    b.mov(ro_base, ro as i32);
    b.mov(rw_base, rw as i32);
    // Seed the data registers deterministically.
    for d in 1..=5u8 {
        b.mov(reg(d), d as i32 * 17 - 30);
    }

    for (pi, ph) in phases.iter().enumerate() {
        match ph {
            Phase::Straight(ops) => emit_ops(&mut b, ops, ro_base, rw_base),
            Phase::Loop { bound, body } => {
                let head = b.new_label(format!("head{pi}"));
                let lbody = b.new_label(format!("body{pi}"));
                let lexit = b.new_label(format!("exit{pi}"));
                b.mov(counter, 0);
                b.bind(head);
                b.set_loop_bound(*bound as u32);
                b.branch(Cond::Lt, counter, *bound as i32, lbody, lexit);
                b.bind(lbody);
                emit_ops(&mut b, body, ro_base, rw_base);
                b.bin(BinOp::Add, counter, counter, 1);
                b.jump(head);
                b.bind(lexit);
            }
        }
    }

    // Checksum epilogue: fold RW memory and data registers.
    let (acc, p) = (Reg::R8, Reg::R9);
    let fh = b.new_label("fold_head");
    let fb = b.new_label("fold_body");
    let fx = b.new_label("fold_exit");
    b.mov(acc, 0);
    b.mov(counter, 0);
    b.bind(fh);
    b.set_loop_bound(RW_WORDS);
    b.branch(Cond::Lt, counter, RW_WORDS as i32, fb, fx);
    b.bind(fb);
    b.bin(BinOp::Add, p, rw_base, counter);
    b.load(Reg::R6, p, 0);
    b.bin(BinOp::Add, Reg::R6, Reg::R6, counter);
    b.bin(BinOp::Mul, Reg::R6, Reg::R6, 31);
    b.bin(BinOp::Xor, acc, acc, Reg::R6);
    b.bin(BinOp::Add, counter, counter, 1);
    b.jump(fh);
    b.bind(fx);
    for d in 1..=5u8 {
        b.bin(BinOp::Xor, acc, acc, reg(d));
    }
    b.mov(p, out as i32);
    b.store(acc, p, 0);
    b.halt();
    (b.finish().expect("generated program is valid"), ro, out)
}

fn build_app(phases: &[Phase], ro_data: &[i32]) -> App {
    let (program, ro, out) = build_program(phases);
    // Golden run for the expected checksum.
    let mut nvm = Nvm::new(1 << 16);
    nvm.write_image(ro, ro_data);
    let mut periph = Peripherals::new(1);
    run_to_completion(&program, &mut nvm, &mut periph, 10_000_000).expect("golden run halts");
    let expected = nvm.read(out);
    App {
        name: "generated",
        program,
        image: vec![
            (ro, ro_data.to_vec()),
            (ro + RO_WORDS, vec![0; RW_WORDS as usize]), // rw zeroed each run
        ],
        checksum_addr: out,
        expected_checksum: expected,
    }
}

/// Validates the slot-coloring invariant: adjacent clusters never share a
/// (register, slot) pair.
fn assert_coloring_valid(program: &Program, regions: &RegionTable) {
    let adj = coloring::region_adjacency(program, regions);
    let cluster = |id| {
        let info = regions.get(id).expect("region");
        let insts = &program.block(info.block).insts;
        let mut start = info.boundary_index;
        while start > 0 && matches!(insts[start - 1], Inst::Checkpoint { .. }) {
            start -= 1;
        }
        insts[start..info.boundary_index]
            .iter()
            .map(|i| match i {
                Inst::Checkpoint { reg, slot } => (*reg, *slot),
                _ => unreachable!(),
            })
            .collect::<std::collections::BTreeMap<_, _>>()
    };
    for (&a, succs) in &adj {
        let ca = cluster(a);
        for &b in succs {
            let cb = cluster(b);
            for (r, sa) in &ca {
                if let Some(sb) = cb.get(r) {
                    assert_ne!(sa, sb, "regions {a}->{b} share slot {sa} for {r}");
                }
            }
        }
    }
}

#[test]
fn generated_programs_compile_and_color_validly() {
    for_generated_programs(0xC0DE_0001, |phases, _ro| {
        let (program, _, _) = build_program(&phases);
        let out = compile(&program, &CompileOptions::default()).expect("pipeline succeeds");
        gecko_suite::isa::verify(&out.program).expect("instrumented program verifies");
        assert_coloring_valid(&out.program, &out.regions);
        // Every region has recovery actions covering its cluster.
        for info in out.regions.iter() {
            let _ = out.recovery.actions(info.id);
        }
    });
}

#[test]
fn assembler_roundtrips_generated_programs() {
    for_generated_programs(0xC0DE_0002, |phases, _ro| {
        let (program, _, _) = build_program(&phases);
        let text = asm::disassemble(&program);
        let again = asm::assemble("generated", &text).expect("reassembles");
        assert_eq!(
            asm::disassemble(&again),
            text,
            "disassembly is a fixed point"
        );
        assert_eq!(program.inst_count(), again.inst_count());
    });
}

#[test]
fn generated_programs_survive_injected_failures() {
    for_generated_programs(0xC0DE_0003, |phases, ro_data| {
        let app = build_app(&phases, &ro_data);
        for stride in [311u64, 1013, 2719] {
            let cfg = SimConfig::bench_supply(SchemeKind::Gecko);
            let mut sim = Simulator::new(&app, cfg).expect("simulator");
            for _ in 0..6 {
                sim.run_steps(stride);
                sim.inject_power_failure();
            }
            let m = sim.run_until_completions(3, 20.0);
            assert!(m.completions >= 3, "stride {stride}: {m:?}");
            assert_eq!(m.checksum_errors, 0, "stride {stride}: {m:?}");
        }
    });
}

#[test]
fn generated_programs_survive_failures_under_ratchet() {
    for_generated_programs(0xC0DE_0004, |phases, ro_data| {
        let app = build_app(&phases, &ro_data);
        let cfg = SimConfig::bench_supply(SchemeKind::Ratchet);
        let mut sim = Simulator::new(&app, cfg).expect("simulator");
        for k in 0..6u64 {
            sim.run_steps(701 + 97 * k);
            sim.inject_power_failure();
        }
        let m = sim.run_until_completions(3, 20.0);
        assert!(m.completions >= 3, "{m:?}");
        assert_eq!(m.checksum_errors, 0, "{m:?}");
    });
}
