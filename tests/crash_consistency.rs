//! The flagship correctness property of the whole suite: **crash-anywhere
//! consistency**. Whatever the power does — natural brown-outs from a weak
//! harvester, or total failures injected at arbitrary instruction
//! positions — every completed application run must produce exactly the
//! checksum of a failure-free golden run.
//!
//! NVP holds this property only while its voltage monitor is trustworthy
//! (that *is* the paper's vulnerability); the rollback schemes (Ratchet,
//! GECKO with and without pruning) must hold it unconditionally, including
//! under EMI attack.

use gecko_check::{
    check_app, war_counter_app, CheckCampaign, CheckSpec, ExploreConfig, InjectionKind,
};
use gecko_compiler::CompileOptions;
use gecko_emi::{AttackSchedule, EmiSignal, Injection};
use gecko_energy::ConstantPower;
use gecko_sim::{SchemeKind, SimConfig, Simulator};

/// Natural-outage torture: a tiny capacitor and weak harvester force
/// frequent deaths at energy-determined (effectively arbitrary) points.
fn torture_config(scheme: SchemeKind, cap_f: f64, power_w: f64) -> SimConfig {
    let mut cfg = SimConfig::harvesting(scheme);
    cfg.capacitance_f = cap_f;
    cfg.harvester = Box::new(ConstantPower::new(power_w));
    cfg
}

#[test]
fn rollback_schemes_survive_natural_outage_torture() {
    for scheme in [
        SchemeKind::Ratchet,
        SchemeKind::Gecko,
        SchemeKind::GeckoNoPrune,
    ] {
        for app in gecko_apps::all_apps() {
            let cfg = torture_config(scheme, 47e-6, 0.45e-3);
            let mut sim = Simulator::new(&app, cfg)
                .unwrap_or_else(|e| panic!("{} ({scheme}): {e}", app.name));
            let m = sim.run_for(4.0);
            assert!(
                m.completions > 0,
                "{} ({scheme}): no forward progress: {m:?}",
                app.name
            );
            assert_eq!(
                m.checksum_errors, 0,
                "{} ({scheme}): corrupted output: {m:?}",
                app.name
            );
            assert!(
                m.reboots > 0,
                "{} ({scheme}): torture must actually cause outages: {m:?}",
                app.name
            );
        }
    }
}

#[test]
fn nvp_is_correct_without_attack() {
    for app in gecko_apps::all_apps() {
        let cfg = torture_config(SchemeKind::Nvp, 47e-6, 0.45e-3);
        let mut sim = Simulator::new(&app, cfg).unwrap();
        let m = sim.run_for(4.0);
        assert!(m.completions > 0, "{}: {m:?}", app.name);
        assert_eq!(m.checksum_errors, 0, "{}: {m:?}", app.name);
    }
}

/// Injected total failures at systematically varied step offsets. Each
/// offset lands the failure somewhere different: mid-region, mid-cluster,
/// mid-boundary, mid-restore, mid-reload. GECKO must deliver a correct
/// first completion afterwards, every time.
#[test]
fn gecko_survives_injected_failures_at_arbitrary_points() {
    let app = gecko_apps::app_by_name("crc16").unwrap();
    // A modest prime stride walks through many distinct positions across
    // the app's ~100k-step run.
    let mut offset = 37u64;
    for trial in 0..60 {
        let cfg = SimConfig::bench_supply(SchemeKind::Gecko);
        let mut sim = Simulator::new(&app, cfg).unwrap();
        sim.run_steps(offset);
        sim.inject_power_failure();
        let m = sim.run_until_completions(1, 30.0);
        assert!(
            m.completions >= 1,
            "trial {trial} (offset {offset}): never completed: {m:?}"
        );
        assert_eq!(
            m.checksum_errors, 0,
            "trial {trial} (offset {offset}): corrupted: {m:?}"
        );
        offset += 1009; // prime stride: varied failure positions
    }
}

#[test]
fn gecko_survives_repeated_injected_failures_in_one_run() {
    let app = gecko_apps::app_by_name("qsort").unwrap();
    let cfg = SimConfig::bench_supply(SchemeKind::Gecko);
    let mut sim = Simulator::new(&app, cfg).unwrap();
    // Hammer it: a failure every few thousand steps, long enough for the
    // recovery path itself to be interrupted repeatedly.
    for k in 0..40u64 {
        sim.run_steps(3_000 + 577 * k);
        sim.inject_power_failure();
    }
    let m = sim.run_for(0.5);
    assert!(m.completions > 0, "{m:?}");
    assert_eq!(m.checksum_errors, 0, "{m:?}");
    assert!(
        m.rollbacks > 0,
        "failures exercised the rollback path: {m:?}"
    );
}

#[test]
fn ratchet_survives_injected_failures() {
    let app = gecko_apps::app_by_name("fir").unwrap();
    let cfg = SimConfig::bench_supply(SchemeKind::Ratchet);
    let mut sim = Simulator::new(&app, cfg).unwrap();
    for k in 0..30u64 {
        sim.run_steps(2_500 + 991 * k);
        sim.inject_power_failure();
    }
    let m = sim.run_for(0.5);
    assert!(m.completions > 0, "{m:?}");
    assert_eq!(m.checksum_errors, 0, "{m:?}");
}

/// GECKO stays correct when failures and the EMI attack overlap — the
/// end-to-end security claim.
#[test]
fn gecko_is_correct_under_attack_plus_outages() {
    let attack = AttackSchedule::continuous(
        EmiSignal::new(27e6, 35.0),
        Injection::Remote { distance_m: 3.0 },
    );
    for app_name in ["crc16", "bitcnt", "dijkstra"] {
        let app = gecko_apps::app_by_name(app_name).unwrap();
        let cfg = torture_config(SchemeKind::Gecko, 47e-6, 0.45e-3).with_attack(attack.clone());
        let mut sim = Simulator::new(&app, cfg).unwrap();
        let m = sim.run_for(6.0);
        assert!(m.completions > 0, "{app_name}: {m:?}");
        assert_eq!(m.checksum_errors, 0, "{app_name}: {m:?}");
        assert!(m.attack_detections > 0, "{app_name}: {m:?}");
    }
}

// ---------------------------------------------------------------------------
// Exhaustive passes (gecko-check): where the torture tests above *sample*
// the failure space, the model checker *enumerates* it — every instruction
// boundary is a failure window, every window gets a plain power failure and
// a spoofed-checkpoint signal, and the post-recovery checksum must match
// the golden run.
// ---------------------------------------------------------------------------

/// Window cap for the larger apps so the debug-mode suite stays fast; the
/// release-mode CI smoke (`examples/check.rs`) runs them uncapped.
fn window_cap() -> u64 {
    if std::env::var_os("GECKO_QUICK").is_some() {
        150
    } else {
        400
    }
}

#[test]
fn exhaustive_rollback_schemes_have_no_violating_window() {
    for scheme in [
        SchemeKind::Ratchet,
        SchemeKind::Gecko,
        SchemeKind::GeckoNoPrune,
    ] {
        for (name, cap) in [
            ("blink", None),
            ("crc16", Some(window_cap())),
            ("bitcnt", Some(window_cap())),
        ] {
            let app = gecko_apps::app_by_name(name).unwrap();
            let cfg = ExploreConfig {
                max_windows: cap,
                ..ExploreConfig::default()
            };
            let report = check_app(&app, scheme, &CompileOptions::default(), &cfg)
                .unwrap_or_else(|e| panic!("{name} ({scheme}): {e}"));
            assert!(
                report.is_clean(),
                "{name} ({scheme}): first violation: {:?}",
                report.violations.first()
            );
            assert!(report.stats.windows > 0);
        }
    }
}

#[test]
fn exhaustive_nvp_is_clean_on_idempotent_apps() {
    // The bundled benchmarks keep working state in registers and write
    // outputs once, so even NVP's never-invalidated JIT checkpoint cannot
    // corrupt them: re-execution is harmless. The checker proves that.
    for name in ["blink", "crc16"] {
        let app = gecko_apps::app_by_name(name).unwrap();
        let cfg = ExploreConfig {
            max_windows: Some(window_cap()),
            ..ExploreConfig::default()
        };
        let report = check_app(&app, SchemeKind::Nvp, &CompileOptions::default(), &cfg).unwrap();
        assert!(
            report.is_clean(),
            "{name} (nvp): {:?}",
            report.violations.first()
        );
    }
}

#[test]
fn exhaustive_check_catches_nvp_double_execution() {
    // The expected-violation case: a WAR-dependent counter under NVP.
    // A spoofed checkpoint inside the loop plus a re-failure replays
    // increments that already landed in NVM — the checker must find it,
    // shrink it, and blame the checkpoint.
    let app = war_counter_app(6);
    let cfg = ExploreConfig {
        depth: 2,
        power_failure_windows: false, // EMI windows only: isolate the attack
        refail_horizon: 12,
        ..ExploreConfig::default()
    };
    let report = check_app(&app, SchemeKind::Nvp, &CompileOptions::default(), &cfg).unwrap();
    assert!(!report.is_clean(), "NVP WAR hazard must be caught");
    let cex = report
        .counterexample
        .as_ref()
        .expect("violation comes with a shrunk counterexample");
    assert!(cex.outcome.is_violation());
    assert_eq!(
        cex.schedule.first().map(|i| i.kind),
        Some(InjectionKind::SpoofedCheckpoint),
        "the attack starts with the spoofed checkpoint: {cex:?}"
    );
    assert!(
        cex.blame.checkpoint_pc.is_some(),
        "blame names the JIT checkpoint the double-execution resumed from"
    );

    // The same schedule space is clean under GECKO: the defense works.
    let gecko = check_app(&app, SchemeKind::Gecko, &CompileOptions::default(), &cfg).unwrap();
    assert!(gecko.is_clean(), "{:?}", gecko.violations.first());
}

#[test]
fn check_campaign_is_worker_count_invariant() {
    let spec = || {
        CheckSpec::new("invariance")
            .apps([
                gecko_apps::app_by_name("blink").unwrap(),
                war_counter_app(5),
            ])
            .schemes([SchemeKind::Gecko, SchemeKind::Nvp])
            .explore(ExploreConfig {
                depth: 2,
                refail_horizon: 8,
                max_windows: Some(60),
                ..ExploreConfig::default()
            })
            .chunk_windows(16) // several chunks per pair: real interleaving
    };
    let serial = CheckCampaign::new(spec()).workers(1).run().unwrap();
    let pooled = CheckCampaign::new(spec()).workers(4).run().unwrap();
    assert_eq!(serial.deterministic_digest(), pooled.deterministic_digest());
    assert_eq!(serial.results, pooled.results);
    assert_eq!(serial.totals, pooled.totals);
}
