//! An EM instruction-fault lab: fire skip-fault pulses at a running
//! device, watch the coupling physics decide which pulses arm, then turn
//! the crash-consistency checker loose on the fault-tolerance question —
//! does a skipped instruction plus a power failure break recovery?
//!
//! Output: a pulse table (effective power, armed?, skips, forward
//! progress), then the checker's verdict per scheme with the shrunk
//! counterexample and its blame for the scheme that breaks.
//!
//! ```sh
//! cargo run --release --example fault_lab
//! ```

use gecko_suite::check::{
    check_compiled, golden_steps, schedule_to_string, shrink_schedule, war_counter_app,
    ExploreConfig,
};
use gecko_suite::compiler::CompileOptions;
use gecko_suite::emi::attack::DpiPoint;
use gecko_suite::emi::{
    EmiSignal, FaultModel, FaultSchedule, Injection, TimedFault, FAULT_POWER_THRESHOLD_W,
};
use gecko_suite::sim::device::CompiledApp;
use gecko_suite::sim::{SchemeKind, SimConfig, Simulator};

/// One pulse configuration to try against the device.
struct Pulse {
    label: &'static str,
    injection: Injection,
    power_dbm: f64,
}

fn main() {
    // ----- part 1: the gating physics --------------------------------
    // The same 27 MHz skip pulse through three coupling paths. Only
    // paths that land ≥ 0.5 W on the core arm anything; the rest are
    // physically present but architecturally silent.
    let app = gecko_suite::apps::app_by_name("bitcnt").expect("bundled app");
    let pulses = [
        Pulse {
            label: "DPI probe @ P2",
            injection: Injection::Dpi(DpiPoint::P2),
            power_dbm: 35.0,
        },
        Pulse {
            label: "remote, 1 m",
            injection: Injection::Remote { distance_m: 1.0 },
            power_dbm: 35.0,
        },
        Pulse {
            label: "remote, 10 m",
            injection: Injection::Remote { distance_m: 10.0 },
            power_dbm: 35.0,
        },
    ];

    let run = |fault: FaultSchedule| {
        let cfg = SimConfig::bench_supply(SchemeKind::Gecko).with_fault(fault);
        let mut sim = Simulator::new(&app, cfg).expect("simulator");
        let metrics = sim.run_for(0.05);
        (metrics, sim.state_hash())
    };
    let (clean, clean_hash) = run(FaultSchedule::none());

    println!("victim: bitcnt under GECKO   (skip pulses, 27 MHz, 35 dBm, 2–5 ms bursts)");
    println!("arming threshold: {FAULT_POWER_THRESHOLD_W} W effective at the core\n");
    println!("pulse            eff. power  armed  skips  forward cycles");
    println!(
        "  (none)                  -      -      0  {:>14}",
        clean.forward_cycles
    );
    for pulse in &pulses {
        let signal = EmiSignal::new(27e6, pulse.power_dbm);
        let window = TimedFault {
            start_s: 0.0,
            end_s: 1.0,
            signal,
            injection: pulse.injection,
            model: FaultModel::Skip,
        };
        let schedule = FaultSchedule::bursts(
            signal,
            pulse.injection,
            FaultModel::Skip,
            &[0.002, 0.021, 0.040],
            0.003,
        );
        let (metrics, hash) = run(schedule);
        println!(
            "{:<16} {:>8.3} W  {:>5} {:>6}  {:>14}",
            pulse.label,
            window.effective_power_w(),
            if window.is_armed() { "yes" } else { "no" },
            metrics.fault_skips,
            metrics.forward_cycles,
        );
        if !window.is_armed() {
            // A disarmed pulse must be behaviorally invisible.
            assert_eq!(metrics, clean, "disarmed pulse perturbed the run");
            assert_eq!(hash, clean_hash, "disarmed pulse perturbed device state");
        } else {
            assert!(metrics.fault_skips > 0, "armed pulse never fired");
        }
    }

    // ----- part 2: fault + crash vs the recovery protocols -----------
    // Depth-2 exploration: inject a skip fault at a golden window, then a
    // power failure, and judge recovery against the faulted-continuous
    // reference (DESIGN.md §17).
    let cfg = ExploreConfig {
        depth: 2,
        refail_horizon: 10,
        ..ExploreConfig::default()
    }
    .with_fault_windows(true)
    .with_max_windows(120);
    let app = war_counter_app(6);

    println!("\nchecker: skip fault + power failure on war_counter(6), depth 2");
    for scheme in [SchemeKind::Ratchet, SchemeKind::Gecko] {
        let compiled =
            CompiledApp::build(&app, scheme, &CompileOptions::default()).expect("compiles");
        let report = check_compiled(&compiled, &cfg).expect("explores");
        let fault_violation = report
            .violations
            .iter()
            .find(|v| v.schedule.iter().any(|p| p.kind.is_em_fault()));
        match fault_violation {
            None => {
                assert!(
                    report.is_clean(),
                    "non-fault violation on {}",
                    scheme.name()
                );
                println!(
                    "  {:<8} clean — recovery faithful to the faulted reference",
                    scheme.name()
                );
            }
            Some(violation) => {
                let golden = golden_steps(&compiled, cfg.seed).expect("golden run");
                let shrunk = shrink_schedule(&compiled, &cfg, &violation.schedule, golden, 400);
                println!(
                    "  {:<8} BROKEN by {}",
                    scheme.name(),
                    schedule_to_string(&shrunk.schedule)
                );
                println!("           blame: {}", shrunk.blame.detail);
                assert_eq!(scheme, SchemeKind::Ratchet, "only Ratchet should break");
            }
        }
    }
    println!("\nGECKO invalidates before committing, so a skipped store can only");
    println!("lose the tail of a region — the rollback replays it. Ratchet's");
    println!("in-place commit trusts every store already retired: one skipped");
    println!("instruction leaves a committed region the faulted run never made.");
}
