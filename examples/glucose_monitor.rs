//! The paper's motivating application (Section III): a battery-free
//! continuous glucose monitor. The device harvests ambient energy, senses
//! a glucose proxy, smooths it, stores it to NVM and raises a radio alarm
//! when the reading crosses a threshold — forever.
//!
//! We build the firmware with the `gecko-isa` program builder, run it under
//! both NVP and GECKO in the energy-harvesting environment, and launch an
//! EMI attack mid-run. The attack denies service on NVP; GECKO detects it
//! and keeps monitoring.
//!
//! Output: per-scheme run reports (sensing rounds, alarms, checkpoint and
//! reboot counters) for the attacked window — NVP stalls, GECKO completes.
//!
//! ```sh
//! cargo run --release --example glucose_monitor
//! ```

use gecko_suite::emi::{AttackSchedule, EmiSignal, Injection, TimedAttack};
use gecko_suite::isa::{BinOp, Cond, ProgramBuilder, Reg};
use gecko_suite::sim::{SchemeKind, SimConfig, Simulator};

/// Builds the monitor firmware: N sensing rounds, exponential smoothing,
/// history ring in NVM, alarm transmission on threshold crossings.
fn build_firmware() -> gecko_suite::apps::App {
    const ROUNDS: u32 = 16;
    const HISTORY: u32 = 16;
    const THRESHOLD: i32 = 3000;

    let mut b = ProgramBuilder::new("glucose_monitor");
    let history = b.segment("history", HISTORY, true);
    let out = b.segment("out", 2, true);

    let (i, raw, smooth, t1, p, alarms) = (Reg::R1, Reg::R2, Reg::R3, Reg::R4, Reg::R5, Reg::R6);
    let hbase = Reg::R10;
    b.mov(i, 0);
    b.mov(smooth, 0);
    b.mov(alarms, 0);
    b.mov(hbase, history as i32);

    let head = b.new_label("head");
    let body = b.new_label("body");
    let alarm = b.new_label("alarm");
    let cont = b.new_label("cont");
    let exit = b.new_label("exit");

    b.bind(head);
    b.set_loop_bound(ROUNDS);
    b.branch(Cond::Lt, i, ROUNDS as i32, body, exit);

    b.bind(body);
    b.sense(raw);
    // smooth = (3*smooth + raw) / 4
    b.bin(BinOp::Mul, t1, smooth, 3);
    b.bin(BinOp::Add, t1, t1, raw);
    b.bin(BinOp::Div, smooth, t1, 4);
    // history[i % HISTORY] = smooth
    b.bin(BinOp::Rem, t1, i, HISTORY as i32);
    b.bin(BinOp::Add, p, hbase, t1);
    b.store(smooth, p, 0);
    b.branch(Cond::Gt, raw, THRESHOLD, alarm, cont);
    b.bind(alarm);
    b.send(raw); // radio alarm
    b.bin(BinOp::Add, alarms, alarms, 1);
    b.jump(cont);
    b.bind(cont);
    b.bin(BinOp::Add, i, i, 1);
    b.jump(head);

    b.bind(exit);
    b.mov(p, out as i32);
    b.store(i, p, 0); // rounds completed — the liveness signal
    b.store(alarms, p, 1);
    b.halt();

    gecko_suite::apps::App {
        name: "glucose_monitor",
        program: b.finish().expect("firmware builds"),
        image: vec![(history, vec![0; HISTORY as usize])],
        checksum_addr: out,
        // The liveness invariant: a completed pass always performed all
        // rounds (sensor values vary, so only this word is checked).
        expected_checksum: ROUNDS as i32,
    }
}

fn main() {
    let app = build_firmware();
    // Attack window: 27 MHz resonant tone between t = 3 s and t = 7 s.
    let attack = AttackSchedule::from_windows(vec![TimedAttack {
        start_s: 3.0,
        end_s: 7.0,
        signal: EmiSignal::new(27e6, 35.0),
        injection: Injection::Remote { distance_m: 4.0 },
    }]);

    println!("battery-free glucose monitor, 10 s of harvested operation;");
    println!("EMI attack active from t=3 s to t=7 s\n");
    for scheme in [SchemeKind::Nvp, SchemeKind::Gecko] {
        let cfg = SimConfig::harvesting(scheme).with_attack(attack.clone());
        let mut sim = Simulator::new(&app, cfg).expect("simulator");
        println!("-- {} --", scheme.name());
        let mut prev = 0;
        for second in 1..=10 {
            let m = sim.run_for(1.0);
            let done = m.completions - prev;
            prev = m.completions;
            let phase = if (3..7).contains(&(second - 1)) {
                "ATTACK"
            } else {
                "      "
            };
            println!(
                "  t={second:2}s {phase} monitoring passes this second: {done:3}  \
                 (corrupted so far: {})",
                m.checksum_errors
            );
        }
        let m = sim.run_for(0.0001);
        println!(
            "  total passes: {}  corrupted: {}  detections: {}  JIT re-enables: {}\n",
            m.completions, m.checksum_errors, m.attack_detections, m.jit_reenables
        );
    }
}
