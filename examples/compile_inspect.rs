//! Compiler inspection tool: disassemble any bundled benchmark before and
//! after the GECKO pipeline, with the recovery lookup table — the fastest
//! way to see what region formation, WCET splitting, pruning and coloring
//! actually did to a program.
//!
//! Output: pass statistics, the disassembly after instrumentation, and
//! the region table (boundaries, checkpoint slots, recovery actions).
//!
//! ```sh
//! cargo run --release --example compile_inspect -- crc16
//! cargo run --release --example compile_inspect -- qsort ratchet
//! ```

use gecko_suite::compiler::{compile, compile_ratchet, CompileOptions, RestoreAction};
use gecko_suite::isa::asm::disassemble;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "crc16".into());
    let ratchet = std::env::args().nth(2).is_some_and(|m| m == "ratchet");
    let Some(app) = gecko_suite::apps::app_by_name(&name) else {
        eprintln!("unknown app `{name}`; available:");
        for a in gecko_suite::apps::all_apps() {
            eprintln!("  {}", a.name);
        }
        std::process::exit(1);
    };

    println!(
        ";; ================= source ({}) =================",
        app.name
    );
    print!("{}", disassemble(&app.program));

    let out = if ratchet {
        compile_ratchet(&app.program).expect("compiles")
    } else {
        compile(&app.program, &CompileOptions::default()).expect("compiles")
    };
    let label = if ratchet { "Ratchet" } else { "GECKO" };
    println!(";; ================= after {label} =================");
    print!("{}", disassemble(&out.program));

    println!(";; ================= regions =================");
    for info in out.regions.iter() {
        println!(
            ";; region {:>4}  at block {} index {}",
            info.id.to_string(),
            info.block,
            info.boundary_index
        );
        for action in out.recovery.actions(info.id) {
            match action {
                RestoreAction::FromSlot { reg, slot } => {
                    println!(";;    restore {reg} from slot {slot}")
                }
                RestoreAction::Recompute { reg, slice } => {
                    let text: Vec<String> = slice.iter().map(|i| i.to_string()).collect();
                    println!(";;    recompute {reg}: {}", text.join("; "));
                }
            }
        }
    }
    println!(";; ================= stats =================");
    let s = &out.stats;
    println!(";; regions={} (split {})", s.regions, s.regions_split);
    println!(
        ";; checkpoints: {} inserted, {} pruned, {} final",
        s.checkpoints_before, s.checkpoints_pruned, s.checkpoints_after
    );
    println!(
        ";; recovery blocks: {} ({} instructions), coloring fix-ups: {}",
        s.recovery_blocks, s.recovery_insts, s.coloring_fixups
    );
}
