//! Quickstart: compile a benchmark under GECKO, inspect what the compiler
//! did, then watch the device survive an EMI attack that floors the
//! commodity JIT-checkpointing baseline.
//!
//! Output: the compiler's pass statistics for `crc32`, then metrics for a
//! clean bench-supply run and for the same run under attack, NVP vs GECKO.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use gecko_suite::compiler::{compile, CompileOptions};
use gecko_suite::emi::{AttackSchedule, EmiSignal, Injection};
use gecko_suite::sim::{SchemeKind, SimConfig, Simulator};

fn main() {
    // 1. Pick a benchmark and run it through the GECKO pipeline.
    let app = gecko_suite::apps::app_by_name("crc32").expect("bundled app");
    let out = compile(&app.program, &CompileOptions::default()).expect("compiles");
    println!("== GECKO compilation of `{}` ==", app.name);
    println!("  idempotent regions        : {}", out.stats.regions);
    println!(
        "  checkpoint stores (before): {}",
        out.stats.checkpoints_before
    );
    println!(
        "  checkpoint stores (after) : {}",
        out.stats.checkpoints_after
    );
    println!(
        "  pruned by recovery blocks : {} ({:.0}%)",
        out.stats.checkpoints_pruned,
        out.stats.prune_ratio() * 100.0
    );
    println!(
        "  recovery blocks           : {}",
        out.stats.recovery_blocks
    );
    println!(
        "  coloring fix-up regions   : {}",
        out.stats.coloring_fixups
    );

    // 2. A quiet quarter second on the bench supply: everything completes.
    let mut quiet =
        Simulator::new(&app, SimConfig::bench_supply(SchemeKind::Gecko)).expect("simulator");
    let m = quiet.run_for(0.25);
    println!("\n== 0.25 s on the bench supply (no attack) ==");
    println!(
        "  completions: {}  corrupted: {}",
        m.completions, m.checksum_errors
    );

    // 3. Now the paper's attack: a 27 MHz, 35 dBm tone from five meters.
    let attack = AttackSchedule::continuous(
        EmiSignal::new(27e6, 35.0),
        Injection::Remote { distance_m: 5.0 },
    );
    println!("\n== same attack, NVP vs GECKO (0.5 s) ==");
    for scheme in [SchemeKind::Nvp, SchemeKind::Gecko] {
        let cfg = SimConfig::bench_supply(scheme).with_attack(attack.clone());
        let mut sim = Simulator::new(&app, cfg).expect("simulator");
        let m = sim.run_for(0.5);
        println!(
            "  {:22} completions={:5}  detections={}  corrupted={}",
            scheme.name(),
            m.completions,
            m.attack_detections,
            m.checksum_errors
        );
    }
    println!("\nGECKO detects the spoofed checkpoints, closes the attack");
    println!("surface, and keeps serving correct results via rollback.");
}
