//! An environmental sensor node compared across all four recovery schemes
//! in the energy-harvesting environment — first in peace, then under a
//! sustained EMI attack. Reproduces the story of Figures 11/13 on a single
//! screen.
//!
//! Output: an 80-column table of per-scheme metrics (completions,
//! checkpoints, reboots, forward progress) with and without the attack,
//! plus a closing interpretation of the numbers.
//!
//! ```sh
//! cargo run --release --example sensor_node
//! ```

use gecko_suite::emi::{AttackSchedule, EmiSignal, Injection};
use gecko_suite::sim::{Metrics, SchemeKind, SimConfig, Simulator};

fn run(scheme: SchemeKind, attack: Option<AttackSchedule>, seconds: f64) -> Metrics {
    let app = gecko_suite::apps::app_by_name("bitcnt").expect("bundled app");
    let mut cfg = SimConfig::harvesting(scheme);
    if let Some(a) = attack {
        cfg = cfg.with_attack(a);
    }
    let mut sim = Simulator::new(&app, cfg).expect("simulator");
    sim.run_for(seconds)
}

fn main() {
    let attack = AttackSchedule::continuous(
        EmiSignal::new(27e6, 35.0),
        Injection::Remote { distance_m: 5.0 },
    );
    let horizon = 8.0;

    println!("sensor node on harvested power, {horizon} s per configuration\n");
    println!(
        "{:22} {:>12} {:>10} {:>10} {:>11} {:>9}",
        "scheme", "completions", "corrupted", "reboots", "detections", "rollback"
    );
    println!("{}", "-".repeat(80));

    for attacked in [false, true] {
        println!(
            "{}",
            if attacked {
                "\nUNDER EMI ATTACK (27 MHz, 35 dBm, 5 m):"
            } else {
                "NO ATTACK:"
            }
        );
        for scheme in SchemeKind::all() {
            let m = run(scheme, attacked.then(|| attack.clone()), horizon);
            println!(
                "{:22} {:>12} {:>10} {:>10} {:>11} {:>9}",
                scheme.name(),
                m.completions,
                m.checksum_errors,
                m.reboots,
                m.attack_detections,
                m.rollbacks
            );
        }
    }
    println!("\nReading the table: without the attack every scheme works (Ratchet");
    println!("pays its centralized-checkpoint tax). Under attack, the JIT protocol");
    println!("of NVP is spoofed into a sleep/wake storm and Ratchet's monitor-driven");
    println!("sleeps starve it, while GECKO detects the attack, closes the monitor");
    println!("attack surface, and keeps completing runs — all of them correct.");
}
