//! `gecko-serve` quickstart: boot the campaign-service daemon in-process
//! and drive a sweep over HTTP — the curl transcript from the README,
//! self-contained.
//!
//! Default mode boots on an ephemeral port, submits a small Figure-4
//! DPI-attack sweep, streams telemetry events while polling status, then
//! fetches the merged result and proves it is *byte-identical* to the
//! same spec run in-process through the library — the daemon adds
//! transport, not semantics.
//!
//! `--smoke` runs the same flow quietly and exits non-zero on any
//! mismatch; `scripts/check.sh` uses it as the serve smoke gate.
//!
//! ```sh
//! cargo run --release --example serve
//! cargo run --release --example serve -- --smoke
//! ```

use gecko_suite::fleet::{report_deterministic_json, spec_to_json, Campaign};
use gecko_suite::serve::{http_call, ServeConfig, Server};

fn spec() -> gecko_suite::fleet::CampaignSpec {
    use gecko_suite::emi::attack::DpiPoint;
    use gecko_suite::emi::{AttackSchedule, EmiSignal, Injection, MonitorKind};
    use gecko_suite::fleet::{AttackCase, CampaignSpec, DeviceCase, SchemeKind, Workload};

    let mut attacks = vec![AttackCase::none()];
    for (label, point) in [("P1", DpiPoint::P1), ("P2", DpiPoint::P2)] {
        attacks.push(AttackCase::new(
            format!("{label}@27MHz"),
            AttackSchedule::continuous(EmiSignal::new(27e6, 20.0), Injection::Dpi(point)),
        ));
    }
    CampaignSpec::new("fig4-smoke")
        .apps([gecko_suite::sim::experiments::VICTIM_APP])
        .schemes([SchemeKind::Nvp])
        .devices(
            gecko_suite::emi::devices::all_devices()
                .into_iter()
                .take(2)
                .map(|d| DeviceCase::new(d, MonitorKind::Adc)),
        )
        .attacks(attacks)
        .workload(Workload::RunFor { seconds: 0.004 })
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let chat = |line: &str| {
        if !smoke {
            println!("{line}");
        }
    };

    // Reference: the library path, no daemon involved.
    let spec = spec();
    let reference = Campaign::new(spec.clone())
        .workers(2)
        .run()
        .expect("in-process campaign");
    let reference_doc = report_deterministic_json(&reference);

    // Boot the daemon on an ephemeral port with a throwaway data dir.
    let data = std::env::temp_dir().join(format!("gecko-serve-example-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&data);
    let cfg = ServeConfig {
        bind: "127.0.0.1:0".to_string(),
        journal_root: data.clone(),
        ..ServeConfig::default()
    };
    let server = Server::start(cfg).expect("daemon boots");
    let addr = server.addr().to_string();
    chat(&format!("gecko-serve listening on {addr}\n"));

    // POST /v1/campaigns — submit the sweep.
    let body = spec_to_json(&spec);
    chat(&format!(
        "$ curl -X POST http://{addr}/v1/campaigns -d @fig4.json"
    ));
    let resp = http_call(&addr, "POST", "/v1/campaigns", &body).expect("submit");
    assert_eq!(resp.status, 201, "submit failed: {}", resp.body);
    chat(&format!("{}\n", resp.body));
    let id = field_u64(&resp.body, "\"id\":").expect("job id in status doc");

    // GET /v1/jobs/<id>/events — stream telemetry while the job runs.
    let mut from = 0u64;
    let mut events_seen = 0u64;
    loop {
        let resp = http_call(
            &addr,
            "GET",
            &format!("/v1/jobs/{id}/events?from={from}&wait_ms=2000"),
            "",
        )
        .expect("events");
        assert_eq!(resp.status, 200, "{}", resp.body);
        let closed = resp.body.contains("\"closed\":true");
        let next = field_u64(&resp.body, "\"next\":").unwrap_or(from);
        events_seen += next - from;
        from = next;
        if closed {
            break;
        }
    }
    chat(&format!(
        "$ curl http://{addr}/v1/jobs/{id}/events?from=0   # long-poll\n\
         ... streamed {events_seen} telemetry events to end-of-job\n"
    ));

    // GET /v1/jobs/<id> — the job must now be done.
    let resp = http_call(&addr, "GET", &format!("/v1/jobs/{id}?wait_ms=2000"), "").expect("status");
    chat(&format!("$ curl http://{addr}/v1/jobs/{id}"));
    chat(&format!("{}\n", resp.body));
    assert!(
        resp.body.contains("\"state\":\"done\""),
        "job did not finish: {}",
        resp.body
    );

    // GET /v1/jobs/<id>/result?view=deterministic — byte-compare against
    // the library run.
    let resp = http_call(
        &addr,
        "GET",
        &format!("/v1/jobs/{id}/result?view=deterministic"),
        "",
    )
    .expect("result");
    assert_eq!(resp.status, 200);
    chat(&format!(
        "$ curl http://{addr}/v1/jobs/{id}/result?view=deterministic\n\
         ... {} bytes\n",
        resp.body.len()
    ));
    assert_eq!(
        resp.body, reference_doc,
        "served result differs from the in-process run"
    );

    server.shutdown();
    let _ = std::fs::remove_dir_all(&data);
    println!(
        "serve {}: served result is byte-identical to the in-process run \
         ({} bytes, digest {:016x})",
        if smoke { "smoke" } else { "quickstart" },
        reference_doc.len(),
        reference.deterministic_digest()
    );
}

/// Pulls the first `"key":123` integer out of a JSON document — enough
/// for a transcript-style client (real clients use `fleet::Json`).
fn field_u64(doc: &str, marker: &str) -> Option<u64> {
    let at = doc.find(marker)? + marker.len();
    let digits: String = doc[at..].chars().take_while(char::is_ascii_digit).collect();
    digits.parse().ok()
}
