//! An interactive-style "attack lab": sweep the EMI carrier across the
//! band and render each board's vulnerability curve as an ASCII chart —
//! the Figure 5 experiment at your fingertips.
//!
//! Output: one `freq |bar| rate%` line per sweep point — the resonance
//! notch shows as the bar collapsing — plus a closing hint.
//!
//! ```sh
//! cargo run --release --example attack_lab                 # MSP430FR5994
//! cargo run --release --example attack_lab -- STM32        # substring match
//! ```

use gecko_suite::emi::devices;
use gecko_suite::emi::{AttackSchedule, EmiSignal, Injection, MonitorKind};
use gecko_suite::sim::{SchemeKind, SimConfig, Simulator};

fn forward_cycles(device: &gecko_suite::emi::DeviceModel, attack: Option<EmiSignal>) -> u64 {
    let app = gecko_suite::apps::app_by_name("bitcnt").expect("bundled app");
    let mut cfg =
        SimConfig::bench_supply(SchemeKind::Nvp).with_device(device.clone(), MonitorKind::Adc);
    if let Some(signal) = attack {
        cfg = cfg.with_attack(AttackSchedule::continuous(
            signal,
            Injection::Remote { distance_m: 5.0 },
        ));
    }
    let mut sim = Simulator::new(&app, cfg).expect("simulator");
    sim.run_for(0.06).forward_cycles
}

fn main() {
    let wanted = std::env::args().nth(1).unwrap_or_else(|| "FR5994".into());
    let device = devices::all_devices()
        .into_iter()
        .find(|d| d.name().to_lowercase().contains(&wanted.to_lowercase()))
        .unwrap_or_else(|| {
            eprintln!("no board matches `{wanted}`; using MSP430FR5994");
            devices::msp430fr5994()
        });

    println!("victim: {}   (remote attack, 35 dBm, 5 m)\n", device.name());
    let clean = forward_cycles(&device, None);

    println!("freq      forward-progress rate");
    let mut f = 5e6;
    while f <= 60e6 {
        let fwd = forward_cycles(&device, Some(EmiSignal::new(f, 35.0)));
        let rate = fwd as f64 / clean.max(1) as f64;
        let bar = "#".repeat((rate.min(1.0) * 50.0).round() as usize);
        println!("{:5.1} MHz |{bar:<50}| {:5.1}%", f / 1e6, rate * 100.0);
        f += 2.5e6;
    }
    println!("\nThe notch is the board's resonance — the frequency an attacker");
    println!("sweeps for (Section IV). Try other boards by name substring.");
}
