//! Voltage-trace viewer: watch the capacitor breathe through harvest /
//! drain cycles, then watch an EMI attack arrive — the spoofed
//! checkpoint storms, GECKO's detection, and the switch to rollback mode
//! (marked `R` in the state column; `J` = JIT mode, `z` = hibernating).
//!
//! Output: an ASCII strip chart (one row per 50 ms sample: time, voltage
//! bar, state letter) followed by duty cycle, voltage range and completion
//! totals.
//!
//! ```sh
//! cargo run --release --example voltage_trace
//! ```

use gecko_suite::emi::{AttackSchedule, EmiSignal, Injection, TimedAttack};
use gecko_suite::sim::{SchemeKind, SimConfig, Simulator, Trace};

fn main() {
    let app = gecko_suite::apps::app_by_name("bitcnt").expect("bundled app");
    // Attack window from t = 2 s to t = 4 s.
    let attack = AttackSchedule::from_windows(vec![TimedAttack {
        start_s: 2.0,
        end_s: 4.0,
        signal: EmiSignal::new(27e6, 35.0),
        injection: Injection::Remote { distance_m: 5.0 },
    }]);
    let cfg = SimConfig::harvesting(SchemeKind::Gecko)
        .with_capacitor(100e-6, 3.3)
        .with_attack(attack);
    let mut sim = Simulator::new(&app, cfg).expect("simulator");

    println!("GECKO on harvested power; EMI attack from t=2 s to t=4 s");
    println!("state: J = JIT mode, R = rollback mode, z = hibernating\n");
    let trace = Trace::record(&mut sim, 6.0, 0.05);
    print!("{}", trace.ascii_chart(48, 3.3));
    println!(
        "\nduty cycle: {:.0}%   voltage range: {:.2}–{:.2} V   completions: {}",
        trace.duty() * 100.0,
        trace.voltage_range().0,
        trace.voltage_range().1,
        trace.samples().last().map(|s| s.completions).unwrap_or(0)
    );
}
