//! Campaign quickstart: the Figure-11-style grid (apps × schemes) run
//! through the `gecko-fleet` engine, once on a single worker and once on a
//! pool, demonstrating that parallelism changes wall-clock but not one bit
//! of the results.
//!
//! Output: the fleet summary table (per-item metrics rolled up), the two
//! wall-clock times, and two deterministic digests that must be equal.
//!
//! ```sh
//! cargo run --release --example campaign
//! GECKO_WORKERS=8 cargo run --release --example campaign
//! ```

use gecko_suite::fleet::{fleet_summary, Campaign, CampaignSpec, SchemeKind, Workload};

fn main() {
    let workers = std::env::var("GECKO_WORKERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
        });

    let spec = CampaignSpec::new("fig11-style")
        .apps(
            gecko_suite::apps::all_apps()
                .iter()
                .map(|a| a.name.to_string()),
        )
        .schemes(SchemeKind::all())
        .workload(Workload::UntilCompletions {
            n: 3,
            max_seconds: 30.0,
        });

    println!("running {} on 1 worker...", spec.name);
    let solo = Campaign::new(spec.clone())
        .workers(1)
        .run()
        .expect("campaign");
    println!("running {} on {} workers...", spec.name, workers);
    let fleet = Campaign::new(spec)
        .workers(workers)
        .run()
        .expect("campaign");

    println!("\n{}", fleet_summary(&fleet));
    println!(
        "1 worker: {:.2}s wall | {} workers: {:.2}s wall ({:.2}x)",
        solo.wall_s,
        fleet.workers,
        fleet.wall_s,
        solo.wall_s / fleet.wall_s.max(1e-9),
    );
    assert_eq!(
        solo.deterministic_digest(),
        fleet.deterministic_digest(),
        "parallelism must not change results"
    );
    println!(
        "digests agree: {:016x} — results are bit-identical across worker counts",
        solo.deterministic_digest()
    );
}
