//! Campaign quickstart: the Figure-11-style grid (apps × schemes) run
//! through the `gecko-fleet` engine, once on a single worker and once on a
//! pool, demonstrating that parallelism changes wall-clock but not one bit
//! of the results.
//!
//! Output: the fleet summary table (per-item metrics rolled up), the two
//! wall-clock times, and two deterministic digests that must be equal.
//!
//! Two flags exercise the supervision layer:
//!
//! * `--chaos` — rerun the grid with seeded fault injection (panics +
//!   transients). Injected panics are quarantined into structured
//!   failures, retries are bounded, and the failure set is bit-identical
//!   on 1 worker and on the pool.
//! * `--resume` — journal the campaign, kill it partway with the
//!   deterministic halt switch, then resume from the journal and show the
//!   merged report is bit-exact against the uninterrupted run.
//! * `--drain` — graceful shutdown: flip the kill switch from another
//!   thread mid-campaign (the signal a daemon sends its workers). Workers
//!   finish the run they are on and journal it — a clean checkpoint, not
//!   an abandoned pool — and a resume completes to the same digest.
//! * `--prune` — journal to a segmented on-disk store, kill partway,
//!   compact the journal under a work budget with `gecko-store`'s pruner
//!   (rebuilt from its persisted checkpoint between ticks, as if killed
//!   mid-prune too), then resume and show pruning was invisible.
//! * `--batch` — rerun the grid with lock-step batching (`batch_size`):
//!   workers claim groups of devices and step them through a shared
//!   `DeviceBatch` plan. Prints the batch counters (spans, occupancy) and
//!   shows the digest is bit-identical to the per-item runs above.
//!
//! ```sh
//! cargo run --release --example campaign
//! GECKO_WORKERS=8 cargo run --release --example campaign
//! cargo run --release --example campaign -- --chaos --resume --drain --prune --batch
//! ```

use std::sync::Arc;

use gecko_suite::fleet::{
    fleet_summary, Campaign, CampaignSpec, ChaosSpec, Journal, SchemeKind, Workload,
};

fn spec() -> CampaignSpec {
    CampaignSpec::new("fig11-style")
        .apps(
            gecko_suite::apps::all_apps()
                .iter()
                .map(|a| a.name.to_string()),
        )
        .schemes(SchemeKind::all())
        .workload(Workload::UntilCompletions {
            n: 3,
            max_seconds: 30.0,
        })
}

/// `--chaos`: seeded fault injection, quarantined deterministically.
fn chaos_demo(workers: usize) {
    let chaos = ChaosSpec {
        seed: 0xC4A05,
        panic_per_mille: 150,
        transient_per_mille: 200,
        ..ChaosSpec::off()
    };
    println!("\n--chaos: injecting seeded panics (15%) and transients (20%)...");
    let solo = Campaign::new(spec())
        .workers(1)
        .chaos(chaos)
        .run()
        .expect("campaign");
    let fleet = Campaign::new(spec())
        .workers(workers)
        .chaos(chaos)
        .run()
        .expect("campaign");
    println!(
        "quarantined {} failure(s), {} retried attempt(s); workers kept draining the queue",
        fleet.counters.failures, fleet.counters.retries
    );
    for f in &fleet.failures {
        println!("  {} {}", f.kind().name(), f.describe());
    }
    assert_eq!(
        solo.failures, fleet.failures,
        "chaos is keyed on (seed, run key, attempt), not on scheduling"
    );
    assert_eq!(solo.deterministic_digest(), fleet.deterministic_digest());
    println!("failure sets and digests agree on 1 worker and {workers} workers");
}

/// `--resume`: journal, kill partway, resume, compare bit-exactly.
fn resume_demo(workers: usize, reference: &gecko_suite::fleet::CampaignReport) {
    let items = spec().expand().len() as u64;
    let kill_at = items / 2;
    let journal = Arc::new(Journal::memory());
    println!("\n--resume: journaling the campaign and killing it after {kill_at}/{items} runs...");
    let partial = Campaign::new(spec())
        .workers(workers)
        .journal(Arc::clone(&journal))
        .halt_after(kill_at)
        .run()
        .expect("campaign");
    assert!(partial.halted);
    let resumed = Campaign::new(spec())
        .workers(workers)
        .resume(Arc::clone(&journal))
        .run()
        .expect("campaign");
    println!(
        "resumed {} journaled run(s), re-executed {}, wall {:.2}s",
        resumed.counters.resumed,
        items - resumed.counters.resumed,
        resumed.wall_s,
    );
    assert_eq!(
        resumed.deterministic_digest(),
        reference.deterministic_digest(),
        "a killed-and-resumed campaign must merge bit-exactly"
    );
    println!(
        "digest {:016x} matches the uninterrupted run bit-for-bit",
        resumed.deterministic_digest()
    );
}

/// `--drain`: graceful shutdown via the kill switch, then resume.
fn drain_demo(workers: usize, reference: &gecko_suite::fleet::CampaignReport) {
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

    /// Flips the campaign's kill switch after `after` finished items —
    /// the same signal `gecko-serve` sends its running jobs on shutdown.
    struct DrainAfter {
        after: u64,
        seen: AtomicU64,
        stop: Arc<AtomicBool>,
    }
    impl gecko_suite::fleet::TelemetrySink for DrainAfter {
        fn emit(&self, event: gecko_suite::fleet::Event) {
            if event.kind == "item_finished"
                && self.seen.fetch_add(1, Ordering::SeqCst) + 1 >= self.after
            {
                self.stop.store(true, Ordering::SeqCst);
            }
        }
    }

    let items = spec().expand().len() as u64;
    let stop = Arc::new(AtomicBool::new(false));
    let journal = Arc::new(Journal::memory());
    println!(
        "\n--drain: requesting shutdown after ~{}/{items} runs...",
        items / 2
    );
    let drained = Campaign::new(spec())
        .workers(workers)
        .sink(Arc::new(DrainAfter {
            after: items / 2,
            seen: AtomicU64::new(0),
            stop: Arc::clone(&stop),
        }))
        .journal(Arc::clone(&journal))
        .kill_switch(stop)
        .run()
        .expect("campaign");
    let journaled = drained.results.len() as u64;
    println!(
        "workers drained: {journaled}/{items} runs journaled as a clean checkpoint \
         (none abandoned mid-run)"
    );
    let resumed = Campaign::new(spec())
        .workers(workers)
        .resume(journal)
        .run()
        .expect("campaign");
    assert_eq!(resumed.counters.resumed, journaled);
    assert_eq!(
        resumed.deterministic_digest(),
        reference.deterministic_digest(),
        "drain + resume must merge bit-exactly"
    );
    println!(
        "resumed past the checkpoint to digest {:016x} — equal to the uninterrupted run",
        resumed.deterministic_digest()
    );
}

/// `--prune`: segmented on-disk journal, budgeted compaction, resume.
fn prune_demo(workers: usize, reference: &gecko_suite::fleet::CampaignReport) {
    use gecko_suite::fleet::classify_campaign_lines;
    use gecko_suite::store::{LogCompactor, LogConfig, Pruner, SegmentedLog};

    let dir = std::env::temp_dir().join(format!("gecko-campaign-prune-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cfg = LogConfig {
        max_segment_bytes: 4096,
    };

    let items = spec().expand().len() as u64;
    let kill_at = items / 2;
    println!(
        "\n--prune: segmented journal in {}, killing after {kill_at}/{items} runs...",
        dir.display()
    );
    let journal = Arc::new(Journal::open_segmented(&dir.join("journal"), cfg).expect("journal"));
    let partial = Campaign::new(spec())
        .workers(workers)
        .resume(Arc::clone(&journal))
        .halt_after(kill_at)
        .run()
        .expect("campaign");
    assert!(partial.halted);
    drop(journal);

    // Budgeted prune ticks; the pruner is reopened from its persisted
    // checkpoint each time, so a kill between ticks loses nothing.
    let mut ticks = 0u32;
    loop {
        let log = Arc::new(SegmentedLog::open(&dir.join("journal"), cfg).expect("log"));
        let mut pruner = Pruner::open(&dir.join("prune.json"), 8).expect("pruner");
        pruner.add(LogCompactor::new("campaign", log, classify_campaign_lines));
        ticks += 1;
        if pruner.tick().expect("tick").done {
            break;
        }
    }
    println!("backlog clear after {ticks} budgeted prune tick(s) (delete_limit=8)");

    let journal = Arc::new(Journal::open_segmented(&dir.join("journal"), cfg).expect("journal"));
    let resumed = Campaign::new(spec())
        .workers(workers)
        .resume(journal)
        .run()
        .expect("campaign");
    println!(
        "resumed {} run(s) from the pruned journal, re-executed {}",
        resumed.counters.resumed,
        items - resumed.counters.resumed,
    );
    assert_eq!(
        resumed.deterministic_digest(),
        reference.deterministic_digest(),
        "pruning must be invisible to resume"
    );
    println!(
        "digest {:016x} matches the uninterrupted run bit-for-bit",
        resumed.deterministic_digest()
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// `--batch`: lock-step batching, identical results, amortized planning.
fn batch_demo(workers: usize, reference: &gecko_suite::fleet::CampaignReport) {
    let items = spec().expand().len() as u64;
    let batch = 16;
    println!("\n--batch: rerunning the grid with batch_size({batch}) on {workers} workers...");
    let batched = Campaign::new(spec())
        .workers(workers)
        .batch_size(batch)
        .run()
        .expect("campaign");
    let c = &batched.counters;
    println!(
        "{}/{items} runs batched: {} lock-step spans, {} scalar fallback round(s), \
         planner occupancy {}‰, wall {:.2}s",
        c.batched_runs,
        c.batch_spans,
        c.batch_fallbacks,
        c.batch_occupancy_permille,
        batched.wall_s,
    );
    assert_eq!(
        batched.deterministic_digest(),
        reference.deterministic_digest(),
        "batching must not change results"
    );
    println!(
        "digest {:016x} matches the per-item runs bit-for-bit — batch size is \
         a wall-clock knob, never a results knob",
        batched.deterministic_digest()
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let chaos = args.iter().any(|a| a == "--chaos");
    let resume = args.iter().any(|a| a == "--resume");
    let drain = args.iter().any(|a| a == "--drain");
    let prune = args.iter().any(|a| a == "--prune");
    let batch = args.iter().any(|a| a == "--batch");
    let workers = std::env::var("GECKO_WORKERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
        });

    let spec = spec();
    println!("running {} on 1 worker...", spec.name);
    let solo = Campaign::new(spec.clone())
        .workers(1)
        .run()
        .expect("campaign");
    println!("running {} on {} workers...", spec.name, workers);
    let fleet = Campaign::new(spec)
        .workers(workers)
        .run()
        .expect("campaign");

    println!("\n{}", fleet_summary(&fleet));
    println!(
        "1 worker: {:.2}s wall | {} workers: {:.2}s wall ({:.2}x)",
        solo.wall_s,
        fleet.workers,
        fleet.wall_s,
        solo.wall_s / fleet.wall_s.max(1e-9),
    );
    assert_eq!(
        solo.deterministic_digest(),
        fleet.deterministic_digest(),
        "parallelism must not change results"
    );
    println!(
        "digests agree: {:016x} — results are bit-identical across worker counts",
        solo.deterministic_digest()
    );

    if chaos {
        chaos_demo(workers);
    }
    if resume {
        resume_demo(workers, &fleet);
    }
    if drain {
        drain_demo(workers, &fleet);
    }
    if prune {
        prune_demo(workers, &fleet);
    }
    if batch {
        batch_demo(workers, &fleet);
    }
}
