//! Model-checker quickstart: exhaustively verify crash-anywhere
//! consistency with `gecko-check`, then demonstrate what a caught bug
//! looks like — a deliberately miscompiled program whose violation is
//! shrunk to a minimal injection schedule and blamed in compiler terms.
//!
//! Output: the clean grid's per-pair verdict summary and report digest,
//! then the caught violation — its shrunk two-injection schedule, the
//! compiler-level blame line, and a graphviz fragment of the blamed block.
//!
//! ```sh
//! cargo run --release --example check
//! GECKO_WORKERS=8 cargo run --release --example check
//! ```
//!
//! `GECKO_QUICK=1` caps the window count so the CI smoke finishes inside
//! its time budget; without it the small apps are checked exhaustively.

use gecko_suite::check::{
    check_compiled, check_summary, schedule_to_string, CheckCampaign, CheckSpec, ExploreConfig,
};
use gecko_suite::compiler::{CompileOptions, RecoveryTable};
use gecko_suite::sim::device::CompiledApp;
use gecko_suite::sim::SchemeKind;

fn main() {
    let quick = std::env::var_os("GECKO_QUICK").is_some();
    let workers = std::env::var("GECKO_WORKERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
        });

    // ---- Part 1: the clean grid -----------------------------------------
    // Every instruction boundary of blink and crc16, under both rollback
    // schemes, with a power failure and a spoofed checkpoint at each one.
    let explore = ExploreConfig {
        max_windows: if quick { Some(300) } else { None },
        ..ExploreConfig::default()
    };
    let spec = CheckSpec::new("quickstart")
        .app_names(&["blink", "crc16"])
        .expect("bundled apps")
        .schemes([SchemeKind::Gecko, SchemeKind::Ratchet])
        .explore(explore);
    let report = CheckCampaign::new(spec)
        .workers(workers)
        .run()
        .expect("check campaign");
    print!("{}", check_summary(&report));
    println!("digest: {:016x}", report.deterministic_digest());
    assert!(report.is_clean(), "rollback schemes must verify clean");

    // ---- Part 2: a caught bug -------------------------------------------
    // Strip the recovery table out of a GECKO compile: rollback now
    // restores nothing, so an interrupted region re-runs on stale state.
    // The checker finds the corruption, shrinks the schedule, and names
    // the region whose recovery actions went missing.
    println!("\n--- deliberately miscompiled: gecko without its recovery table ---");
    let app = gecko_suite::apps::app_by_name("crc16").unwrap();
    let mut broken =
        CompiledApp::build(&app, SchemeKind::Gecko, &CompileOptions::default()).expect("compiles");
    broken.recovery = RecoveryTable::new();
    let verdict = check_compiled(
        &broken,
        &ExploreConfig {
            max_windows: Some(if quick { 150 } else { 400 }),
            ..ExploreConfig::default()
        },
    )
    .expect("golden run is unaffected by the stripped table");
    assert!(!verdict.is_clean(), "stripped recovery must be caught");
    println!(
        "violations: {} across {} windows ({} states explored)",
        verdict.stats.violations, verdict.stats.windows, verdict.stats.explored
    );
    let cex = verdict.counterexample.as_ref().expect("shrunk schedule");
    println!(
        "shrunk counterexample ({} replays): {} -> {:?}",
        cex.replays,
        schedule_to_string(&cex.schedule),
        cex.outcome
    );
    println!("blame: {}", cex.blame.detail);
    if let Some(dot) = gecko_suite::check::blame_dot(&broken.program, &cex.blame) {
        let preview: String = dot.lines().take(4).collect::<Vec<_>>().join("\n");
        println!("blame dot (first lines):\n{preview}\n...");
    }
}
