//! # gecko-suite
//!
//! Facade crate for the GECKO reproduction workspace. It re-exports every
//! sub-crate under a stable prefix so examples and integration tests can
//! `use gecko_suite::...` without tracking individual crate names.
//!
//! See the repository `README.md` for a tour, `DESIGN.md` for the system
//! inventory, and `EXPERIMENTS.md` for paper-vs-measured results.

pub use gecko_apps as apps;
pub use gecko_check as check;
pub use gecko_compiler as compiler;
pub use gecko_ctpl as ctpl;
pub use gecko_emi as emi;
pub use gecko_energy as energy;
pub use gecko_fleet as fleet;
pub use gecko_isa as isa;
pub use gecko_mcu as mcu;
pub use gecko_serve as serve;
pub use gecko_sim as sim;
pub use gecko_store as store;
